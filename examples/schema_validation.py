"""Schema registration and validated inserts (Fig. 4).

Registers an XML schema (compiled to a binary parse-table format and stored
in the catalog), then inserts documents through the validation VM: valid
documents land as typed token streams; invalid ones are rejected with
precise diagnostics.

Run:  python examples/schema_validation.py
"""

from repro import Database
from repro.errors import XmlValidationError

ORDER_XSD = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="order" type="OrderType"/>
  <xs:complexType name="OrderType">
    <xs:sequence>
      <xs:element name="customer" type="xs:string"/>
      <xs:element name="item" type="ItemType" maxOccurs="unbounded"/>
    </xs:sequence>
    <xs:attribute name="id" type="xs:integer" use="required"/>
  </xs:complexType>
  <xs:complexType name="ItemType">
    <xs:sequence>
      <xs:element name="sku" type="xs:string"/>
      <xs:element name="qty" type="xs:integer"/>
    </xs:sequence>
  </xs:complexType>
  <xs:element name="customer" type="xs:string"/>
  <xs:element name="item" type="ItemType"/>
  <xs:element name="sku" type="xs:string"/>
  <xs:element name="qty" type="xs:integer"/>
</xs:schema>
"""

db = Database()
db.create_table("orders", [("doc", "xml")])
db.register_schema("order.xsd", ORDER_XSD)
blob = db.catalog.schema("order.xsd")
print(f"schema compiled to {len(blob)} bytes of parse tables "
      f"and stored in the catalog (Fig. 4)")

good = ("<order id='7'><customer>ACME</customer>"
        "<item><sku>A</sku><qty>2</qty></item>"
        "<item><sku>B</sku><qty>1</qty></item></order>")
db.insert("orders", (good,), validate_against="order.xsd")
print("valid order accepted:", db.get_document("orders", "doc", 1)[:40], "...")

bad_documents = [
    ("<order><customer>X</customer>"
     "<item><sku>A</sku><qty>1</qty></item></order>",
     "missing required attribute"),
    ("<order id='7'><item><sku>A</sku><qty>1</qty></item></order>",
     "content model violation"),
    ("<order id='7'><customer>X</customer>"
     "<item><sku>A</sku><qty>two</qty></item></order>",
     "lexical type violation"),
]
print("\nrejections by the validation VM:")
for text, label in bad_documents:
    try:
        db.insert("orders", (text,), validate_against="order.xsd")
    except XmlValidationError as err:
        print(f"  [{label}] {err}")

# Type annotations ride on the token stream the storage layer consumes.
from repro.xschema.validator import validate_text
typed = validate_text(blob, good)
annotations = [(event.local, annotation)
               for event, annotation in typed.annotated_events()
               if annotation]
print("\ntype annotations on the validated token stream:")
for local, annotation in annotations[:6]:
    print(f"  <{local}> : {annotation}")
