"""Product catalog through SQL/XML: the paper's Table 2 and Fig. 5 workload.

Everything here goes through the SQL/XML surface (§2: "all the manipulation
and querying of XML data are through SQL and SQL/XML with embedded XPath"):
DDL, XPath value index DDL (DB2-style XMLPATTERN), XMLEXISTS/XMLQUERY, and
the Fig. 5 constructor statement with XMLAGG.

Run:  python examples/product_catalog.py
"""

from repro import Database, SqlSession
from repro.workload.generator import catalog_document

session = SqlSession(Database())

session.execute("CREATE TABLE catalog (region VARCHAR(10), doc XML)")
for i, region in enumerate(["east", "west", "north", "south"]):
    doc = catalog_document(n_products=5, seed=i)
    session.execute(f"INSERT INTO catalog VALUES ('{region}', '{doc}')")

# Table 2's indexes, in the paper's own DDL style.
session.execute(
    "CREATE INDEX ix_regprice ON catalog(doc) GENERATE KEY USING "
    "XMLPATTERN '/Catalog/Categories/Product/RegPrice' AS SQL DOUBLE")
session.execute(
    "CREATE INDEX ix_discount ON catalog(doc) GENERATE KEY USING "
    "XMLPATTERN '//Discount' AS SQL DOUBLE")

# Table 2 case 3: two predicates -> DocID/NodeID ANDing.
query = ("/Catalog/Categories/Product[RegPrice > 100 and Discount > 0.1]")
print("access plan for the ANDing query:")
print(session.db.plan_xpath("catalog", "doc", query).explain())

rows = session.execute(
    "SELECT region FROM catalog WHERE XMLEXISTS("
    f"'{query}' PASSING doc)")
print("\nregions with discounted premium products:",
      sorted(r["region"] for r in rows))

rows = session.execute(
    "SELECT region, XMLQUERY('/Catalog/Categories/Product[RegPrice > 400]"
    "/ProductName' PASSING doc) AS premium FROM catalog")
print("\npremium product names by region:")
for row in rows:
    print(f"  {row['region']:6} {row['premium'] or '(none)'}")

# The Fig. 5 constructor + XMLAGG, with the tagging-template optimization
# underneath (one template, one args record per row).
session.execute(
    "CREATE TABLE emp (id BIGINT, fname VARCHAR(20), lname VARCHAR(20), "
    "hire DATE, dept VARCHAR(10))")
for values in [(1234, "John", "Doe", "1998-02-01", "Accting"),
               (1235, "Jane", "Roe", "2001-05-05", "Eng"),
               (1236, "Jim", "Poe", "1999-09-09", "Eng")]:
    rendered = ", ".join(f"'{v}'" if isinstance(v, str) else str(v)
                         for v in values)
    session.execute(f"INSERT INTO emp VALUES ({rendered})")

rows = session.execute(
    'SELECT XMLELEMENT(NAME "Emp", '
    'XMLATTRIBUTES(id AS "id", fname || \' \' || lname AS "name"), '
    'XMLFOREST(hire AS HIRE, dept AS department)) AS emp_xml '
    "FROM emp WHERE id = 1234")
print("\nFig. 5 constructor output:")
print(" ", rows[0]["emp_xml"])

rows = session.execute(
    'SELECT dept, XMLAGG(XMLELEMENT(NAME "e", fname) ORDER BY fname) '
    "AS roster FROM emp GROUP BY dept")
print("\nXMLAGG rosters by department:")
for row in rows:
    print(f"  {row['dept']:8} {row['roster']}")
