"""Quickstart: a native XML database in a dozen calls.

Creates a table with an XML column, stores documents, builds an XPath value
index, and runs index-accelerated XPath queries — the System R/X pipeline of
Fig. 2 end to end.

Run:  python examples/quickstart.py
"""

from repro import Database

db = Database()

# A base table with a relational column and an XML column.  Every row gets
# an implicit DocID; the XML data lives in an internal XML table packed into
# records with Dewey node IDs (§3.1).
db.create_table("bookstore", [("store_id", "bigint"), ("inventory", "xml")])

DOCS = [
    """<inventory>
         <book isbn="0-13-110362-8">
           <title>The C Programming Language</title>
           <price>45.00</price><stock>12</stock>
         </book>
         <book isbn="0-201-03801-3">
           <title>The Art of Computer Programming</title>
           <price>210.00</price><stock>2</stock>
         </book>
       </inventory>""",
    """<inventory>
         <book isbn="1-55860-190-2">
           <title>Transaction Processing</title>
           <price>89.95</price><stock>5</stock>
         </book>
       </inventory>""",
]
for store_id, doc in enumerate(DOCS, start=1):
    db.insert("bookstore", (store_id, doc))

# An XPath value index (§3.3): maps price values to (DocID, NodeID, RID).
db.create_xpath_index("ix_price", "bookstore", "inventory",
                      "/inventory/book/price", "double")

# The planner matches the predicate against the index (Table 2 case 1).
query = "/inventory/book[price > 80]"
plan = db.plan_xpath("bookstore", "inventory", query)
print("plan:")
print(plan.explain())

print("\nexpensive books:")
for result in db.xpath("bookstore", "inventory", query):
    xml = db.serialize_result("bookstore", "inventory", result)
    print(f"  store {result.row[0]} (DocID {result.docid}): {xml}")

# Point access by logical node ID through the NodeID index (§3.4).
first = db.xpath("bookstore", "inventory", "//title")[0]
store = db.xml_stores[("bookstore", "inventory")]
doc_reader = store.document(first.docid)
print("\nfirst title via (DocID, NodeID):",
      doc_reader.node_string_value(first.node_id))
print("its ancestors from the record header:",
      [local for local, _uri in doc_reader.ancestry(first.node_id)])

# Subdocument update: stable node IDs, one record touched (§3.1).
updater = db.updater("bookstore", "inventory")
stock_text = next(
    event.node_id
    for reader in [store.document(1)]
    for i, event in enumerate(list(reader.events()))
    if event.kind.name == "TEXT" and event.value == "12")
updater.replace_text(1, stock_text, "11")
print("\nafter selling one copy:",
      db.xpath("bookstore", "inventory", "//book[stock = 11]/title")[0]
      .match.item.value)
