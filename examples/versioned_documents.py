"""Concurrency on XML documents: MVCC snapshots and subtree locks (§5).

Shows the two §5 designs working together: document-level multiversioning
(readers never block, deferred access resolves against the snapshot) and
node-ID multiple-granularity locking (disjoint subtrees update concurrently;
ancestry conflicts detected by prefix test).

Run:  python examples/versioned_documents.py
"""

from repro.cc.mvcc import VersionedXmlStore
from repro.cc.subdocument import PrefixLockTable, subtree_overlaps
from repro.core.stats import StatsRegistry
from repro.rdb.buffer import BufferPool
from repro.rdb.locks import LockMode
from repro.rdb.storage import Disk
from repro.xdm.names import NameTable
from repro.xdm.serializer import serialize

store = VersionedXmlStore(
    BufferPool(Disk(4096, stats=StatsRegistry()), 128), NameTable(),
    record_limit=256, retained_versions=4)

# A writer installs version 1; a reader pins its snapshot.
store.commit_version_text(1, "<wiki><page>draft</page></wiki>")
reader_snapshot = store.latest_version
reader_view = store.document_at(1, reader_snapshot)

# More writes arrive; the reader is never blocked and never sees them.
store.commit_version_text(1, "<wiki><page>edited</page></wiki>")
store.commit_version_text(1, "<wiki><page>published</page></wiki>")

print("reader's snapshot :", serialize(reader_view.events()))
print("latest version    :", serialize(store.document_latest(1).events()))
print("versions retained :", store.version_count(1))
print("NodeID index keys carry (DocID, ver#, NodeID) with ver# descending,")
print("so the reader's deferred access stayed consistent (§5.1).\n")

# Subdocument locking: two sessions edit disjoint subtrees of one document.
locks = PrefixLockTable(StatsRegistry())
section_a = b"\x02\x02"   # /wiki/page[1]
section_b = b"\x02\x04"   # /wiki/page[2]
whole_doc = b"\x02"

print("txn 100 locks section A   ->",
      locks.try_acquire(100, (1, section_a), LockMode.X))
print("txn 200 locks section B   ->",
      locks.try_acquire(200, (1, section_b), LockMode.X))
print("txn 300 locks whole doc   ->",
      locks.try_acquire(300, (1, whole_doc), LockMode.X),
      "(blocked: ancestor of both, by prefix test)")
print("prefix checks: A vs B overlap?",
      subtree_overlaps(section_a, section_b),
      "| doc vs A overlap?", subtree_overlaps(whole_doc, section_a))
locks.release_all(100)
locks.release_all(200)
print("after A and B commit, txn 300 retries ->",
      locks.try_acquire(300, (1, whole_doc), LockMode.X))
