"""QuickXScan as a standalone streaming XPath engine (§4.2).

Evaluates the paper's Fig. 6 query over a generated document in one pass,
shows the matching-state bound on recursive data against the naive automaton
(Fig. 7), and demonstrates that the same evaluator runs over any virtual SAX
source (Fig. 8).

Run:  python examples/streaming_xpath.py
"""

from repro import StatsRegistry, evaluate_xpath, parse_xml
from repro.workload.generator import figure6_document, recursive_document
from repro.workload.queries import FIGURE6_QUERY
from repro.xdm.events import assign_node_ids
from repro.xpath.automaton import NaiveStreamEvaluator
from repro.xpath.domeval import evaluate_dom

# One streaming pass over the document -- no tree, no indexes.
doc = figure6_document(n_blocks=40, seed=3)
stats = StatsRegistry()
events = list(assign_node_ids(parse_xml(doc).events()))
results = evaluate_xpath(FIGURE6_QUERY, iter(events), stats=stats)
print(f"query: {FIGURE6_QUERY}")
print(f"matches: {len(results)} of 40 blocks; "
      f"events scanned: {stats.get('xscan.events')}; "
      f"peak matching units: {stats.gauge('xscan.peak_units')}")

# Cross-check against the DOM evaluator (same results, very different
# memory profile).
dom_results = evaluate_dom(FIGURE6_QUERY, iter(events), stats=stats)
assert [i.node_id for i in results] == [i.node_id for i in dom_results]
print(f"DOM baseline materialized {stats.gauge('domeval.tree_nodes')} nodes "
      f"for the same answer")

# Fig. 7: recursive data explodes the naive automaton's active states while
# QuickXScan stays at O(|Q| * r).
print("\nactive matching state on <a> nested r deep, query //a//a//a:")
print(f"{'r':>4} {'naive':>8} {'QuickXScan':>11}")
for depth in (8, 16, 32):
    rec_events = list(assign_node_ids(
        parse_xml(recursive_document(depth)).events()))
    naive = NaiveStreamEvaluator("//a//a//a")
    naive.run(iter(rec_events))
    rec_stats = StatsRegistry()
    evaluate_xpath("//a//a//a", iter(rec_events), stats=rec_stats)
    print(f"{depth:>4} {naive.peak_instances:>8} "
          f"{rec_stats.gauge('xscan.peak_units'):>11}")

# Fig. 8: the same evaluator over a persistent-data iterator.
from repro import XmlStore
from repro.core.stats import StatsRegistry as _SR
from repro.rdb.buffer import BufferPool
from repro.rdb.storage import Disk
from repro.xdm.names import NameTable

store = XmlStore(BufferPool(Disk(4096, stats=_SR()), 128), NameTable(),
                 record_limit=256)
store.insert_document_text(1, doc)
stored_results = evaluate_xpath(FIGURE6_QUERY, store.document(1).events())
assert len(stored_results) == len(results)
print(f"\nsame query over packed storage records: "
      f"{len(stored_results)} matches (identical)")
