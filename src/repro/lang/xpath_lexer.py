"""XPath lexical scanner.

"LALR(1) is used with a much simpler lexical scanner than what is described
in the W3C specification, achieved by rewriting the BNF production rules"
(§4).  The scanner resolves the three classic XPath lexical ambiguities
locally, so the grammar stays LALR(1):

* a name followed by ``(`` is a function name — or a node-type test when it
  is one of ``node``/``text``/``comment``/``processing-instruction``;
* a name followed by ``::`` is an axis name;
* after a token that ends an operand, ``*`` is the multiply operator and the
  names ``and``/``or``/``div``/``mod`` are operators; elsewhere ``*`` is a
  wildcard and they are element names.
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.lang.lalr import Token

_NODE_TYPES = {"node", "text", "comment", "processing-instruction"}
_OPERATOR_NAMES = {"and": "AND", "or": "OR", "div": "DIV", "mod": "MOD"}

#: Token types that end an operand; after one of these, '*' multiplies and
#: operator names are operators (XPath 1.0 §3.7 disambiguation rule).
_OPERAND_END = {"NAME", "STAR", "NUMBER", "STRING", "RPAREN", "RBRACK",
                "DOT", "DOTDOT", "NODETYPE_EMPTY"}

_TWO_CHAR = {"//": "DSLASH", "..": "DOTDOT", "!=": "NE", "<=": "LE",
             ">=": "GE"}
_ONE_CHAR = {"/": "SLASH", "@": "AT", "[": "LBRACK", "]": "RBRACK",
             "(": "LPAREN", ")": "RPAREN", ",": "COMMA", "=": "EQ",
             "<": "LT", ">": "GT", "+": "PLUS", "-": "MINUS", "|": "UNION",
             ".": "DOT"}


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_" or ord(ch) > 0x7F


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_-." or ord(ch) > 0x7F


def tokenize(text: str) -> list[Token]:
    """Scan ``text`` into LALR tokens."""
    tokens: list[Token] = []
    pos = 0
    length = len(text)

    def prev_type() -> str | None:
        return tokens[-1].type if tokens else None

    def operand_ended() -> bool:
        return prev_type() in _OPERAND_END

    while pos < length:
        ch = text[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        two = text[pos:pos + 2]
        if two in _TWO_CHAR:
            tokens.append(Token(_TWO_CHAR[two], two, pos))
            pos += 2
            continue
        if ch in "\"'":
            end = text.find(ch, pos + 1)
            if end < 0:
                raise XPathSyntaxError(f"unterminated string at offset {pos}")
            tokens.append(Token("STRING", text[pos + 1:end], pos))
            pos = end + 1
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < length
                            and text[pos + 1].isdigit()):
            start = pos
            while pos < length and text[pos].isdigit():
                pos += 1
            if pos < length and text[pos] == ".":
                pos += 1
                while pos < length and text[pos].isdigit():
                    pos += 1
            tokens.append(Token("NUMBER", float(text[start:pos]), start))
            continue
        if ch == "*":
            if operand_ended():
                tokens.append(Token("MUL", "*", pos))
            else:
                tokens.append(Token("STAR", (None, "*"), pos))
            pos += 1
            continue
        if ch in _ONE_CHAR:
            tokens.append(Token(_ONE_CHAR[ch], ch, pos))
            pos += 1
            continue
        if _is_name_start(ch):
            start = pos
            pos += 1
            while pos < length and _is_name_char(text[pos]):
                pos += 1
            name = text[start:pos]
            # Operator-name disambiguation.
            if name in _OPERATOR_NAMES and operand_ended():
                tokens.append(Token(_OPERATOR_NAMES[name], name, start))
                continue
            # Prefixed name or wildcard: NAME ':' (NAME | '*'), but not '::'.
            prefix: str | None = None
            if pos < length and text[pos] == ":" and \
                    text[pos:pos + 2] != "::":
                nxt = text[pos + 1] if pos + 1 < length else ""
                if nxt == "*":
                    tokens.append(Token("STAR", (name, "*"), start))
                    pos += 2
                    continue
                if _is_name_start(nxt):
                    prefix = name
                    pos += 1
                    name_start = pos
                    pos += 1
                    while pos < length and _is_name_char(text[pos]):
                        pos += 1
                    name = text[name_start:pos]
                else:
                    raise XPathSyntaxError(
                        f"malformed qualified name at offset {start}")
            # Lookahead for '::' (axis) and '(' (function / node type).
            ahead = pos
            while ahead < length and text[ahead] in " \t\r\n":
                ahead += 1
            if prefix is None and text[ahead:ahead + 2] == "::":
                tokens.append(Token("AXIS", name, start))
                pos = ahead + 2
                continue
            if ahead < length and text[ahead] == "(":
                if prefix is None and name in _NODE_TYPES:
                    tokens.append(Token("NODETYPE", name, start))
                else:
                    if prefix is not None:
                        raise XPathSyntaxError(
                            f"prefixed function names are not supported "
                            f"(offset {start})")
                    tokens.append(Token("FUNCNAME", name, start))
                continue
            tokens.append(Token("NAME", (prefix, name), start))
            continue
        raise XPathSyntaxError(f"unexpected character {ch!r} at offset {pos}")
    return tokens
