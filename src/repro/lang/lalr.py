"""A small LALR(1) parser generator.

The paper generates its XQuery/XPath parser with an LALR(k) generator and
notes that "in our case LALR(1) is used with a much simpler lexical scanner
than what is described in the W3C specification, achieved by rewriting the
BNF production rules" (§4).  This module provides that machinery from
scratch: grammars are lists of productions with semantic actions; tables are
built by constructing canonical LR(1) item sets and merging states with equal
LR(0) cores (the classic way to obtain LALR(1) tables); conflicts are
reported at build time.

The generator is deliberately general — nothing in it knows about XPath —
and is exercised independently by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import QueryError


class GrammarError(QueryError):
    """Grammar construction or table conflict error."""


class ParseError(QueryError):
    """Input rejected by the generated parser."""


#: End-of-input terminal.
EOF = "$end"
#: Internal augmented start symbol.
_START = "$start"


@dataclass(frozen=True)
class Production:
    """One grammar production ``lhs -> rhs`` with a semantic action.

    The action receives one argument per RHS symbol (terminal token values
    or nonterminal results) and returns the LHS value.
    """

    index: int
    lhs: str
    rhs: tuple[str, ...]
    action: Callable[..., object]


@dataclass(frozen=True)
class Token:
    """Lexer output: a terminal with its semantic value and position."""

    type: str
    value: object = None
    pos: int = 0


class Grammar:
    """A context-free grammar under construction."""

    def __init__(self, start: str) -> None:
        self.start = start
        self.productions: list[Production] = []
        self.nonterminals: set[str] = set()

    def rule(self, lhs: str, rhs: Sequence[str],
             action: Callable[..., object] | None = None) -> None:
        """Add ``lhs -> rhs``.  Default action returns the sole child (or a
        tuple of children)."""
        if action is None:
            if len(rhs) == 1:
                action = lambda x: x  # noqa: E731
            else:
                action = lambda *xs: tuple(xs)  # noqa: E731
        self.productions.append(
            Production(len(self.productions), lhs, tuple(rhs), action))
        self.nonterminals.add(lhs)

    @property
    def terminals(self) -> set[str]:
        used = {sym for p in self.productions for sym in p.rhs}
        return used - self.nonterminals


# ---------------------------------------------------------------------------
# Table construction
# ---------------------------------------------------------------------------

_Item = tuple[int, int, str]  # (production index, dot position, lookahead)


class ParserTables:
    """ACTION/GOTO tables plus the production list."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        augmented = Production(-1, _START, (grammar.start,), lambda x: x)
        self._productions: dict[int, Production] = {-1: augmented}
        for production in grammar.productions:
            self._productions[production.index] = production
        self._by_lhs: dict[str, list[Production]] = {}
        for production in grammar.productions:
            self._by_lhs.setdefault(production.lhs, []).append(production)
        if grammar.start not in self._by_lhs:
            raise GrammarError(f"start symbol {grammar.start!r} has no rules")
        self._nonterminals = grammar.nonterminals
        self._first = self._compute_first()
        self.action: list[dict[str, tuple[str, int]]] = []
        self.goto: list[dict[str, int]] = []
        self._build()

    # -- FIRST sets -----------------------------------------------------------

    def _compute_first(self) -> dict[str, set[str | None]]:
        first: dict[str, set[str | None]] = {
            nt: set() for nt in self._nonterminals}
        changed = True
        while changed:
            changed = False
            for production in self.grammar.productions:
                target = first[production.lhs]
                before = len(target)
                nullable_so_far = True
                for symbol in production.rhs:
                    if symbol in self._nonterminals:
                        target |= (first[symbol] - {None})
                        if None not in first[symbol]:
                            nullable_so_far = False
                            break
                    else:
                        target.add(symbol)
                        nullable_so_far = False
                        break
                if nullable_so_far:
                    target.add(None)
                if len(target) != before:
                    changed = True
        return first

    def _first_of_sequence(self, symbols: Iterable[str],
                           lookahead: str) -> set[str]:
        out: set[str] = set()
        for symbol in symbols:
            if symbol in self._nonterminals:
                out |= {t for t in self._first[symbol] if t is not None}
                if None not in self._first[symbol]:
                    return out
            else:
                out.add(symbol)
                return out
        out.add(lookahead)
        return out

    # -- item sets ----------------------------------------------------------------

    def _closure(self, items: frozenset[_Item]) -> frozenset[_Item]:
        closure = set(items)
        work = list(items)
        while work:
            prod_index, dot, lookahead = work.pop()
            production = self._productions[prod_index]
            if dot >= len(production.rhs):
                continue
            symbol = production.rhs[dot]
            if symbol not in self._nonterminals:
                continue
            rest = production.rhs[dot + 1:]
            lookaheads = self._first_of_sequence(rest, lookahead)
            for candidate in self._by_lhs.get(symbol, ()):
                for la in lookaheads:
                    item = (candidate.index, 0, la)
                    if item not in closure:
                        closure.add(item)
                        work.append(item)
        return frozenset(closure)

    def _goto_set(self, items: frozenset[_Item],
                  symbol: str) -> frozenset[_Item]:
        moved = {
            (prod_index, dot + 1, la)
            for prod_index, dot, la in items
            if dot < len(self._productions[prod_index].rhs)
            and self._productions[prod_index].rhs[dot] == symbol
        }
        return self._closure(frozenset(moved)) if moved else frozenset()

    @staticmethod
    def _core(items: frozenset[_Item]) -> frozenset[tuple[int, int]]:
        return frozenset((p, d) for p, d, _ in items)

    def _build(self) -> None:
        start_set = self._closure(frozenset({(-1, 0, EOF)}))
        # Canonical LR(1) states first.
        states: list[frozenset[_Item]] = [start_set]
        index_of: dict[frozenset[_Item], int] = {start_set: 0}
        transitions: dict[tuple[int, str], int] = {}
        work = [0]
        while work:
            state_no = work.pop()
            items = states[state_no]
            symbols = {
                self._productions[p].rhs[d]
                for p, d, _ in items
                if d < len(self._productions[p].rhs)
            }
            for symbol in sorted(symbols):
                target = self._goto_set(items, symbol)
                if not target:
                    continue
                if target not in index_of:
                    index_of[target] = len(states)
                    states.append(target)
                    work.append(index_of[target])
                transitions[(state_no, symbol)] = index_of[target]

        # Merge states with identical LR(0) cores (LALR).
        core_index: dict[frozenset[tuple[int, int]], int] = {}
        merged_items: list[set[_Item]] = []
        old_to_new: dict[int, int] = {}
        for state_no, items in enumerate(states):
            core = self._core(items)
            if core not in core_index:
                core_index[core] = len(merged_items)
                merged_items.append(set())
            new_no = core_index[core]
            merged_items[new_no] |= items
            old_to_new[state_no] = new_no

        merged_transitions: dict[tuple[int, str], int] = {}
        for (state_no, symbol), target in transitions.items():
            key = (old_to_new[state_no], symbol)
            value = old_to_new[target]
            existing = merged_transitions.get(key)
            if existing is not None and existing != value:  # pragma: no cover
                raise GrammarError("inconsistent LALR merge (grammar bug)")
            merged_transitions[key] = value

        # Fill ACTION/GOTO.
        self.action = [dict() for _ in merged_items]
        self.goto = [dict() for _ in merged_items]
        for (state_no, symbol), target in merged_transitions.items():
            if symbol in self._nonterminals:
                self.goto[state_no][symbol] = target
            else:
                self.action[state_no][symbol] = ("shift", target)
        for state_no, items in enumerate(merged_items):
            for prod_index, dot, lookahead in items:
                production = self._productions[prod_index]
                if dot != len(production.rhs):
                    continue
                if prod_index == -1:
                    self._set_action(state_no, EOF, ("accept", 0))
                    continue
                self._set_action(state_no, lookahead, ("reduce", prod_index))

    def _set_action(self, state_no: int, terminal: str,
                    action: tuple[str, int]) -> None:
        existing = self.action[state_no].get(terminal)
        if existing is not None and existing != action:
            kind_a, kind_b = existing[0], action[0]
            raise GrammarError(
                f"{kind_a}/{kind_b} conflict in state {state_no} "
                f"on {terminal!r}: {existing} vs {action}")
        self.action[state_no][terminal] = action

    @property
    def state_count(self) -> int:
        return len(self.action)

    def production(self, index: int) -> Production:
        return self._productions[index]


class Parser:
    """Table-driven LALR(1) parser."""

    def __init__(self, tables: ParserTables) -> None:
        self.tables = tables

    def parse(self, tokens: Iterable[Token]) -> object:
        """Parse a token stream (EOF is appended automatically)."""
        stack: list[int] = [0]
        values: list[object] = []
        stream = list(tokens)
        stream.append(Token(EOF, None, stream[-1].pos if stream else 0))
        pos = 0
        while True:
            state = stack[-1]
            token = stream[pos]
            action = self.tables.action[state].get(token.type)
            if action is None:
                expected = sorted(self.tables.action[state])
                raise ParseError(
                    f"unexpected {token.type} "
                    f"({token.value!r}) at offset {token.pos}; "
                    f"expected one of: {', '.join(expected)}")
            kind, arg = action
            if kind == "shift":
                stack.append(arg)
                values.append(token.value)
                pos += 1
            elif kind == "reduce":
                production = self.tables.production(arg)
                arity = len(production.rhs)
                children = values[len(values) - arity:] if arity else []
                del stack[len(stack) - arity:]
                del values[len(values) - arity:]
                result = production.action(*children)
                goto_state = self.tables.goto[stack[-1]].get(production.lhs)
                if goto_state is None:  # pragma: no cover - table invariant
                    raise ParseError(f"no goto for {production.lhs}")
                stack.append(goto_state)
                values.append(result)
            else:  # accept
                return values[-1]


def build_parser(grammar: Grammar) -> Parser:
    """Construct tables (raising :class:`GrammarError` on conflicts)."""
    return Parser(ParserTables(grammar))
