"""The XPath grammar, rewritten to be LALR(1) (§4).

Together with the lexer's local disambiguations, this grammar builds
conflict-free LALR(1) tables via :mod:`repro.lang.lalr` — reproducing the
paper's observation that a rewritten BNF makes LALR(1) with a simple scanner
sufficient for the XPath subset.
"""

from __future__ import annotations

from functools import lru_cache

from repro.lang import ast
from repro.lang.lalr import Grammar, Parser, build_parser


def _binop(op: str):
    return lambda left, _tok, right: ast.BinaryOp(op, left, right)


def _step_from_test(test) -> ast.Step:
    return ast.Step(ast.Axis.CHILD, test)


def _name_test(value) -> ast.NameTest:
    prefix, local = value
    return ast.NameTest(local, prefix)


def xpath_grammar() -> Grammar:
    """Construct the XPath grammar with AST-building actions."""
    g = Grammar("Expr")

    g.rule("Expr", ["OrExpr"])
    g.rule("OrExpr", ["OrExpr", "OR", "AndExpr"], _binop("or"))
    g.rule("OrExpr", ["AndExpr"])
    g.rule("AndExpr", ["AndExpr", "AND", "EqExpr"], _binop("and"))
    g.rule("AndExpr", ["EqExpr"])
    for token, op in (("EQ", "="), ("NE", "!=")):
        g.rule("EqExpr", ["EqExpr", token, "RelExpr"], _binop(op))
    g.rule("EqExpr", ["RelExpr"])
    for token, op in (("LT", "<"), ("LE", "<="), ("GT", ">"), ("GE", ">=")):
        g.rule("RelExpr", ["RelExpr", token, "AddExpr"], _binop(op))
    g.rule("RelExpr", ["AddExpr"])
    for token, op in (("PLUS", "+"), ("MINUS", "-")):
        g.rule("AddExpr", ["AddExpr", token, "MulExpr"], _binop(op))
    g.rule("AddExpr", ["MulExpr"])
    for token, op in (("MUL", "*"), ("DIV", "div"), ("MOD", "mod")):
        g.rule("MulExpr", ["MulExpr", token, "UnaryExpr"], _binop(op))
    g.rule("MulExpr", ["UnaryExpr"])
    g.rule("UnaryExpr", ["MINUS", "UnaryExpr"],
           lambda _m, operand: ast.UnaryOp("-", operand))
    g.rule("UnaryExpr", ["PathExpr"])

    g.rule("PathExpr", ["LocationPath"])
    g.rule("PathExpr", ["PrimaryExpr"])

    g.rule("LocationPath", ["RelPath"],
           lambda steps: ast.LocationPath(False, steps))
    g.rule("LocationPath", ["SLASH", "RelPath"],
           lambda _s, steps: ast.LocationPath(True, steps))
    g.rule("LocationPath", ["SLASH"],
           lambda _s: ast.LocationPath(True, []))
    g.rule("LocationPath", ["DSLASH", "RelPath"],
           lambda _d, steps: ast.LocationPath(
               True, [ast.descendant_or_self_step()] + steps))

    g.rule("RelPath", ["Step"], lambda step: [step])
    g.rule("RelPath", ["RelPath", "SLASH", "Step"],
           lambda steps, _s, step: steps + [step])
    g.rule("RelPath", ["RelPath", "DSLASH", "Step"],
           lambda steps, _d, step: steps +
           [ast.descendant_or_self_step(), step])

    g.rule("Step", ["AxisStep"])
    g.rule("Step", ["DOT"], lambda _d: ast.self_node_step())
    g.rule("Step", ["DOTDOT"], lambda _d: ast.parent_step())

    g.rule("AxisStep", ["StepHead"])
    g.rule("AxisStep", ["AxisStep", "Predicate"],
           lambda step, pred: _with_predicate(step, pred))

    g.rule("StepHead", ["NodeTest"], _step_from_test)
    g.rule("StepHead", ["AXIS", "NodeTest"],
           lambda axis, test: ast.Step(ast.Axis.parse(axis), test))
    g.rule("StepHead", ["AT", "NodeTest"],
           lambda _at, test: ast.Step(ast.Axis.ATTRIBUTE, test))

    g.rule("Predicate", ["LBRACK", "Expr", "RBRACK"],
           lambda _l, expr, _r: expr)

    g.rule("NodeTest", ["NAME"], _name_test)
    g.rule("NodeTest", ["STAR"], _name_test)
    g.rule("NodeTest", ["NODETYPE", "LPAREN", "RPAREN"],
           lambda kind, _l, _r: ast.KindTest(kind))
    g.rule("NodeTest", ["NODETYPE", "LPAREN", "STRING", "RPAREN"],
           lambda kind, _l, target, _r: ast.KindTest(kind, target))

    g.rule("PrimaryExpr", ["NUMBER"], lambda v: ast.Literal(v))
    g.rule("PrimaryExpr", ["STRING"], lambda v: ast.Literal(v))
    g.rule("PrimaryExpr", ["LPAREN", "Expr", "RPAREN"],
           lambda _l, expr, _r: expr)
    g.rule("PrimaryExpr", ["FUNCNAME", "LPAREN", "RPAREN"],
           lambda name, _l, _r: ast.FunctionCall(name, []))
    g.rule("PrimaryExpr", ["FUNCNAME", "LPAREN", "Args", "RPAREN"],
           lambda name, _l, args, _r: ast.FunctionCall(name, args))

    g.rule("Args", ["Expr"], lambda expr: [expr])
    g.rule("Args", ["Args", "COMMA", "Expr"],
           lambda args, _c, expr: args + [expr])
    return g


def _with_predicate(step: ast.Step, predicate: ast.Expr) -> ast.Step:
    step.predicates.append(predicate)
    return step


@lru_cache(maxsize=1)
def xpath_parser() -> Parser:
    """The (cached) table-driven XPath parser."""
    return build_parser(xpath_grammar())
