"""XPath parse facade: lexer → LALR parser → rewrites → AST."""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.lang import ast
from repro.lang.lalr import ParseError
from repro.lang.rewrite import normalize
from repro.lang.xpath_grammar import xpath_parser
from repro.lang.xpath_lexer import tokenize


def parse_xpath(text: str,
                namespaces: dict[str, str] | None = None) -> ast.Expr:
    """Parse and normalize an XPath expression."""
    tokens = tokenize(text)
    if not tokens:
        raise XPathSyntaxError("empty XPath expression")
    try:
        expr = xpath_parser().parse(tokens)
    except ParseError as exc:
        raise XPathSyntaxError(f"in {text!r}: {exc}") from None
    return normalize(expr, namespaces)


def parse_path(text: str,
               namespaces: dict[str, str] | None = None) -> ast.LocationPath:
    """Parse an XPath that must be a location path (index definitions)."""
    expr = parse_xpath(text, namespaces)
    if not isinstance(expr, ast.LocationPath):
        raise XPathSyntaxError(f"{text!r} is not a location path")
    return expr
