"""Query rewrite and normalization (§4, "semantics checking and
transformation are performed to optimize the query by query rewrite").

Three rewrites run at compile time:

* **prefix resolution** — name tests get their namespace URI bound from the
  statement's prefix declarations;
* **parent-axis elimination** [24] — ``a/b/..`` becomes ``a[b]``, so the
  QuickXScan base algorithm only ever sees forward axes (§4.2);
* **descendant-or-self reduction** — a predicate-free ``//`` step followed
  by a child step collapses into one descendant step ("in some cases the
  descendant-or-self axis can be reduced to the descendant axis").
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import XPathUnsupportedError
from repro.lang import ast


def resolve_prefixes(expr: ast.Expr,
                     namespaces: dict[str, str] | None) -> ast.Expr:
    """Bind namespace URIs into every name test (in place); returns expr."""
    namespaces = namespaces or {}

    def resolve_test(test):
        if isinstance(test, ast.NameTest) and test.prefix is not None:
            uri = namespaces.get(test.prefix)
            if uri is None:
                raise XPathUnsupportedError(
                    f"undeclared namespace prefix {test.prefix!r}")
            return replace(test, uri=uri)
        return test

    def walk(node: ast.Expr) -> None:
        if isinstance(node, ast.LocationPath):
            for step in node.steps:
                step.test = resolve_test(step.test)
                for predicate in step.predicates:
                    walk(predicate)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.FunctionCall):
            for arg in node.args:
                walk(arg)

    walk(expr)
    return expr


def eliminate_parent_axis(expr: ast.Expr) -> ast.Expr:
    """Rewrite parent steps into predicates on the preceding step [24]."""

    def rewrite_path(path: ast.LocationPath) -> ast.LocationPath:
        steps: list[ast.Step] = []
        for step in path.steps:
            for predicate in step.predicates:
                walk(predicate)
            if step.axis is not ast.Axis.PARENT:
                steps.append(step)
                continue
            if step.predicates:
                raise XPathUnsupportedError(
                    "predicates on a parent step are not supported")
            if not steps:
                raise XPathUnsupportedError(
                    "a leading parent step cannot be rewritten")
            child = steps.pop()
            if child.axis in (ast.Axis.DESCENDANT,
                              ast.Axis.DESCENDANT_OR_SELF):
                # X//t/..  ≡  X/descendant-or-self::*[t] — the parent of a
                # descendant t is any self-or-descendant element with a t
                # child.
                parent_test = step.test if isinstance(step.test,
                                                      ast.NameTest) \
                    else ast.NameTest("*")
                child_pred = ast.Step(ast.Axis.CHILD, child.test,
                                      child.predicates)
                steps.append(ast.Step(
                    ast.Axis.DESCENDANT_OR_SELF, parent_test,
                    [ast.LocationPath(False, [child_pred])]))
                continue
            if not steps:
                raise XPathUnsupportedError(
                    "parent step would escape the path root")
            target = steps[-1]
            # The popped step (with its predicates) becomes an existence
            # predicate on the new last step.
            target.predicates.append(ast.LocationPath(False, [child]))
            # A named parent test further constrains the target's own test.
            if isinstance(step.test, ast.NameTest):
                target.test = _intersect_tests(target.test, step.test)
        return ast.LocationPath(path.absolute, steps)

    def walk(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.LocationPath):
            rewritten = rewrite_path(node)
            node.steps = rewritten.steps
            node.absolute = rewritten.absolute
            return node
        if isinstance(node, ast.BinaryOp):
            node.left = walk(node.left)
            node.right = walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            node.operand = walk(node.operand)
        elif isinstance(node, ast.FunctionCall):
            node.args = [walk(a) for a in node.args]
        return node

    return walk(expr)


def _intersect_tests(current, parent_test: ast.NameTest):
    """Combine a step's test with a parent-step name constraint."""
    if isinstance(current, ast.KindTest):
        if current.kind in ("node",):
            return parent_test
        raise XPathUnsupportedError(
            f"parent::{parent_test} over a {current.kind}() step")
    if current.local == "*":
        return parent_test
    if parent_test.local == "*":
        return current
    if (current.local, current.uri) == (parent_test.local, parent_test.uri):
        return current
    # Contradictory names: the path can never match.  Keep a test that
    # matches nothing rather than failing the compile.
    return ast.NameTest("#impossible", uri="#none")


def reduce_descendant_or_self(expr: ast.Expr) -> ast.Expr:
    """Collapse ``//``+child pairs into descendant steps (in place)."""

    def rewrite_path(path: ast.LocationPath) -> None:
        steps: list[ast.Step] = []
        for step in path.steps:
            for predicate in step.predicates:
                walk(predicate)
            previous = steps[-1] if steps else None
            if (previous is not None
                    and previous.axis is ast.Axis.DESCENDANT_OR_SELF
                    and isinstance(previous.test, ast.KindTest)
                    and previous.test.kind == "node"
                    and not previous.predicates
                    and step.axis is ast.Axis.CHILD):
                steps[-1] = ast.Step(ast.Axis.DESCENDANT, step.test,
                                     step.predicates)
                continue
            steps.append(step)
        path.steps = steps

    def walk(node: ast.Expr) -> None:
        if isinstance(node, ast.LocationPath):
            rewrite_path(node)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.FunctionCall):
            for arg in node.args:
                walk(arg)

    walk(expr)
    return expr


def normalize(expr: ast.Expr,
              namespaces: dict[str, str] | None = None) -> ast.Expr:
    """Run the full rewrite pipeline."""
    expr = resolve_prefixes(expr, namespaces)
    expr = eliminate_parent_axis(expr)
    expr = reduce_descendant_or_self(expr)
    return expr
