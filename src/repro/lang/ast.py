"""XPath abstract syntax tree.

The supported subset is the one QuickXScan targets (§4.2): location paths
over the five forward axes (child, attribute, descendant, self,
descendant-or-self) plus the parent axis (handled by rewrite, [24]);
predicates with ``and``/``or``, general comparisons, arithmetic, literals and
a core function library.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Axis(enum.Enum):
    CHILD = "child"
    DESCENDANT = "descendant"
    ATTRIBUTE = "attribute"
    SELF = "self"
    DESCENDANT_OR_SELF = "descendant-or-self"
    PARENT = "parent"

    @classmethod
    def parse(cls, name: str) -> "Axis":
        from repro.errors import XPathUnsupportedError
        try:
            return cls(name)
        except ValueError:
            raise XPathUnsupportedError(
                f"axis {name!r} is outside the supported subset") from None


class Expr:
    """Base class of all expression nodes."""


@dataclass(frozen=True)
class NameTest:
    """Element/attribute name test; ``local == '*'`` is a wildcard."""

    local: str
    prefix: str | None = None
    #: Resolved namespace URI; filled by compile-time prefix resolution.
    uri: str | None = None

    def matches(self, local: str, uri: str) -> bool:
        if self.local != "*" and self.local != local:
            return False
        if self.uri is None:
            # Unresolved prefix-less test: no-namespace semantics.
            return self.prefix is None and (self.local == "*" or uri == "")
        return self.uri == "*" or self.uri == uri

    def __str__(self) -> str:
        return f"{self.prefix}:{self.local}" if self.prefix else self.local


@dataclass(frozen=True)
class KindTest:
    """node() / text() / comment() / processing-instruction(['t'])."""

    kind: str
    target: str | None = None

    def __str__(self) -> str:
        inner = f"'{self.target}'" if self.target else ""
        return f"{self.kind}({inner})"


@dataclass
class Step(Expr):
    """One location step: axis, node test, predicates."""

    axis: Axis
    test: NameTest | KindTest
    predicates: list["Expr"] = field(default_factory=list)

    def __str__(self) -> str:
        axis = "@" if self.axis is Axis.ATTRIBUTE else f"{self.axis.value}::"
        preds = "".join(f"[{p}]" for p in self.predicates)
        return f"{axis}{self.test}{preds}"


@dataclass
class LocationPath(Expr):
    """A (possibly absolute) sequence of steps."""

    absolute: bool
    steps: list[Step]

    def __str__(self) -> str:
        body = "/".join(str(s) for s in self.steps)
        return ("/" + body) if self.absolute else body


@dataclass(frozen=True)
class Literal(Expr):
    """String or numeric literal."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"\"{self.value}\""
        return repr(self.value)


@dataclass
class BinaryOp(Expr):
    """or/and/comparison/arithmetic operator application."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class UnaryOp(Expr):
    """Unary minus."""

    op: str
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass
class FunctionCall(Expr):
    """Core-library function application."""

    name: str
    args: list[Expr]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


def self_node_step() -> Step:
    """The step for ``.`` (self::node())."""
    return Step(Axis.SELF, KindTest("node"))


def parent_step() -> Step:
    """The step for ``..`` (parent::node())."""
    return Step(Axis.PARENT, KindTest("node"))


def descendant_or_self_step() -> Step:
    """The implicit step ``//`` abbreviates (descendant-or-self::node())."""
    return Step(Axis.DESCENDANT_OR_SELF, KindTest("node"))
