"""Access plans (§4.3, Table 2).

The planner produces one of three plan shapes:

* **full scan** — QuickXScan over every stored document (the relational-scan
  analogue, §4.2);
* **DocID list** — "a list of unique DocIDs is returned from an XPath value
  index, and documents are then fetched by using the DocIDs" (good for small
  documents);
* **NodeID list** — index hits identify the matching *nodes*; the anchor node
  ID is derived from the value node ID and only the containing records are
  fetched (good for large documents).

Each index source is marked ``EXACT`` or ``CONTAINS`` (filtering); multiple
sources combine by DocID/NodeID ANDing or ORing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.indexes.containment import PathRelation
from repro.indexes.manager import XPathValueIndex
from repro.lang import ast


class AccessMethod(enum.Enum):
    FULL_SCAN = "scan"
    DOCID_LIST = "docid-list"
    NODEID_LIST = "nodeid-list"


@dataclass
class IndexSource:
    """One index probe: ``index.path op literal``."""

    index: XPathValueIndex
    op: str
    literal: object
    relation: PathRelation
    #: Levels between the anchor node and the value node (child-only suffix),
    #: None when not derivable — then NodeID-level access is unavailable.
    suffix_depth: int | None

    @property
    def exact(self) -> bool:
        return self.relation is PathRelation.EXACT

    def describe(self) -> str:
        kind = "exact" if self.exact else "filtering"
        return (f"{self.index.definition.path_text} {self.op} "
                f"{self.literal!r} [{kind}]")


@dataclass
class AccessPlan:
    """The chosen access path for one XPath query."""

    method: AccessMethod
    path: ast.LocationPath
    #: Conjunctive groups: candidates = AND over groups of (OR over sources).
    source_groups: list[list[IndexSource]] = field(default_factory=list)
    #: Whether index results are guaranteed-precise candidates (every source
    #: exact and the whole predicate covered); re-evaluation still extracts
    #: the result nodes but can skip no-match documents early.
    exact: bool = False

    def explain(self) -> str:
        """Human-readable plan, printed by benchmarks and examples."""
        lines = [f"access method: {self.method.value}"]
        for group in self.source_groups:
            if len(group) == 1:
                lines.append(f"  probe {group[0].describe()}")
            else:
                ors = " OR ".join(source.describe() for source in group)
                lines.append(f"  probe ({ors})")
        if len(self.source_groups) > 1:
            lines.append("  combine: ANDing")
        if self.source_groups:
            lines.append(f"  list is {'exact' if self.exact else 'filtering'}")
        return "\n".join(lines)
