"""Access path selection (§4, §4.3).

"Access path selection is relatively simple at the moment" — the planner
extracts index-sargable comparisons from the final step's predicates, matches
each against the available XPath value indexes with the containment test, and
picks among full scan, DocID-list and NodeID-list access:

* every sargable conjunct with a matching index becomes a probe; conjuncts
  AND at the DocID/NodeID level, top-level ``or`` requires *both* disjuncts
  sargable (else the predicate cannot bound the candidate set);
* "For small documents, using indexes to identify qualifying documents would
  be efficient ... For large documents, the DocID list access is no longer
  efficient.  Instead, the NodeID list access applies" — chosen by average
  document size, overridable for experiments;
* "If all the indexes match exactly with the predicates, the result
  DocID/NodeID list is exact ... Otherwise, the result list will not be
  exact but filtering."
"""

from __future__ import annotations

from dataclasses import replace

from repro.indexes.containment import (PathRelation, child_only_suffix_depth,
                                       relate)
from repro.indexes.manager import XPathValueIndex
from repro.lang import ast
from repro.xmlstore.store import XmlStore

from repro.query.plan import AccessMethod, AccessPlan, IndexSource

_SARGABLE_OPS = {"=", "<", "<=", ">", ">="}
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


class Planner:
    """Chooses access paths for XPath queries over one XML column."""

    def __init__(self, store: XmlStore, indexes: list[XPathValueIndex],
                 nodeid_threshold: int = 64) -> None:
        self.store = store
        self.indexes = list(indexes)
        #: Average nodes/document above which NodeID-list access is chosen.
        self.nodeid_threshold = nodeid_threshold

    def plan(self, path: ast.LocationPath,
             force_method: AccessMethod | None = None) -> AccessPlan:
        """Produce an access plan for ``path``."""
        groups, fully_covered = self._extract_sources(path)
        if not groups:
            return AccessPlan(AccessMethod.FULL_SCAN, path)
        exact = fully_covered and all(
            source.exact for group in groups for source in group)
        method = force_method or self._choose_method(groups)
        if method is AccessMethod.FULL_SCAN:
            return AccessPlan(AccessMethod.FULL_SCAN, path)
        if method is AccessMethod.NODEID_LIST and \
                not self._nodeid_usable(path, groups):
            method = AccessMethod.DOCID_LIST
        return AccessPlan(method, path, groups, exact)

    # -- sargable predicate extraction ---------------------------------------

    def _extract_sources(self, path: ast.LocationPath
                         ) -> tuple[list[list[IndexSource]], bool]:
        """Probe groups from the final step's predicates.

        Returns ``(groups, fully_covered)`` — the latter is True when every
        predicate conjunct produced a probe group (needed for exactness).
        """
        if not path.steps:
            return [], False
        anchor_index = len(path.steps) - 1
        step = path.steps[anchor_index]
        if not step.predicates:
            return [], False
        if any(s.predicates for s in path.steps[:-1]):
            # Predicates on earlier steps are residual-only; indexes can
            # still bound candidates from the final step.
            pass
        prefix = [ast.Step(s.axis, s.test) for s in path.steps]
        groups: list[list[IndexSource]] = []
        fully_covered = True
        for predicate in step.predicates:
            for conjunct in self._conjuncts(predicate):
                group = self._group_for(conjunct, path, prefix)
                if group:
                    groups.append(group)
                else:
                    fully_covered = False
        return groups, fully_covered

    @staticmethod
    def _conjuncts(expr: ast.Expr) -> list[ast.Expr]:
        if isinstance(expr, ast.BinaryOp) and expr.op == "and":
            return (Planner._conjuncts(expr.left)
                    + Planner._conjuncts(expr.right))
        return [expr]

    def _group_for(self, expr: ast.Expr, path: ast.LocationPath,
                   prefix: list[ast.Step]) -> list[IndexSource] | None:
        """A probe group (OR of sources) for one conjunct, or None."""
        if isinstance(expr, ast.BinaryOp) and expr.op == "or":
            left = self._group_for(expr.left, path, prefix)
            right = self._group_for(expr.right, path, prefix)
            if left is None or right is None:
                return None  # both disjuncts must be index-bounded
            return left + right
        source = self._source_for(expr, path, prefix)
        return [source] if source is not None else None

    def _source_for(self, expr: ast.Expr, path: ast.LocationPath,
                    prefix: list[ast.Step]) -> IndexSource | None:
        if not isinstance(expr, ast.BinaryOp) or expr.op not in _SARGABLE_OPS:
            return None
        op, value_path, literal = expr.op, expr.left, expr.right
        if isinstance(literal, ast.LocationPath) and \
                isinstance(value_path, ast.Literal):
            value_path, literal = literal, value_path
            op = _FLIP[op]
        if not isinstance(value_path, ast.LocationPath) or \
                not isinstance(literal, ast.Literal):
            return None
        if value_path.absolute:
            return None
        if any(s.predicates for s in value_path.steps):
            return None
        # Full value path: the (predicate-free) main path plus the subpath.
        steps = [s for s in value_path.steps if s.axis is not ast.Axis.SELF]
        full_value_path = ast.LocationPath(True, prefix + [
            ast.Step(s.axis, s.test) for s in steps])
        best: IndexSource | None = None
        for index in self.indexes:
            relation = relate(index.definition.path, full_value_path)
            if relation is PathRelation.NONE:
                continue
            suffix = child_only_suffix_depth(full_value_path, len(prefix))
            source = IndexSource(index, op, literal.value, relation, suffix)
            if best is None or (source.exact and not best.exact):
                best = source
        return best

    # -- method choice ---------------------------------------------------------

    def _choose_method(self, groups: list[list[IndexSource]]) -> AccessMethod:
        if self.store.average_nodes_per_document() > self.nodeid_threshold:
            return AccessMethod.NODEID_LIST
        return AccessMethod.DOCID_LIST

    def _nodeid_usable(self, path: ast.LocationPath,
                       groups: list[list[IndexSource]]) -> bool:
        # Anchor-ID derivation needs a child-only suffix for every source,
        # and verification context requires all predicates on the last step.
        if any(s.predicates for s in path.steps[:-1]):
            return False
        return all(source.suffix_depth is not None
                   for group in groups for source in group)

    def replan_with(self, plan: AccessPlan,
                    method: AccessMethod) -> AccessPlan:
        """The same plan with a forced access method (experiments)."""
        if method is AccessMethod.FULL_SCAN:
            return AccessPlan(method, plan.path)
        return replace(plan, method=method)
