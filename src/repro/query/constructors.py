"""SQL/XML constructor functions with tagging-template optimization (§4.1).

"We optimize constructor functions by flattening the nested functions into
one function and represent the nesting structure with a tagging template ...
The result of the constructor functions is an intermediate result
representation that includes a pointer to the template with a data record."
(Fig. 5.)

The compile-time form is a nested spec (XMLELEMENT / XMLATTRIBUTES /
XMLFOREST / XMLCONCAT) whose argument slots reference per-row values.
Compilation flattens it into a :class:`Template` — a linear op list with the
static tags fixed — built once per query; each row then yields a
:class:`ConstructedValue` that is just ``(template pointer, args record)``
and streams virtual SAX events on demand (Fig. 8's "constructed data"
iterator).  The naive baseline (:func:`naive_construct`) re-builds a full
XDM tree per row, re-tagging everything.

``XMLAGG ... ORDER BY`` is provided by :class:`XmlAggregator` with the
paper's two sort paths: in-memory quicksort on the linked row list versus a
work-file external sort (experiment E7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import QueryError
from repro.rdb.sort import (ExternalSorter, linked_list_from,
                            linked_list_to_list, quicksort_linked_list)
from repro.rdb.tablespace import TableSpace
from repro.xdm.events import EventKind, SaxEvent
from repro.xdm.nodes import ElementNode
from repro.xdm.serializer import serialize


# -- constructor specs (the nested function form) ---------------------------

class Spec:
    """Base class of constructor specs."""


@dataclass(frozen=True)
class Arg(Spec):
    """A per-row argument slot (the numbers in Fig. 5's template)."""

    index: int


@dataclass(frozen=True)
class Const(Spec):
    """A constant text fragment."""

    text: str


@dataclass(frozen=True)
class XAttr:
    """One XMLATTRIBUTES item: name plus value source."""

    name: str
    value: Arg | Const


@dataclass(frozen=True)
class XElem(Spec):
    """XMLELEMENT(NAME name, XMLATTRIBUTES(...), children...)."""

    name: str
    attrs: tuple[XAttr, ...] = ()
    children: tuple[Spec, ...] = ()


@dataclass(frozen=True)
class XForest(Spec):
    """XMLFOREST(value AS name, ...) — one element per item."""

    items: tuple[tuple[str, Arg | Const], ...]


@dataclass(frozen=True)
class XConcat(Spec):
    """XMLCONCAT(children...)."""

    children: tuple[Spec, ...]


def elem(name: str, *children: Spec | str,
         attrs: dict[str, Arg | Const | str] | None = None) -> XElem:
    """Convenience builder for :class:`XElem`."""
    built_attrs = tuple(
        XAttr(attr_name, value if isinstance(value, (Arg, Const))
              else Const(str(value)))
        for attr_name, value in (attrs or {}).items())
    built_children = tuple(
        Const(child) if isinstance(child, str) else child
        for child in children)
    return XElem(name, built_attrs, built_children)


def forest(**items: Arg | Const | str) -> XForest:
    """Convenience builder for :class:`XForest`."""
    return XForest(tuple(
        (name, value if isinstance(value, (Arg, Const)) else Const(str(value)))
        for name, value in items.items()))


def arg(index: int) -> Arg:
    return Arg(index)


# -- the flattened tagging template ------------------------------------------

class _Op(enum.IntEnum):
    OPEN = 0        # payload: element name
    CLOSE = 1
    ATTR_CONST = 2  # payload: (name, text)
    ATTR_SLOT = 3   # payload: (name, slot)
    TEXT_CONST = 4  # payload: text
    TEXT_SLOT = 5   # payload: slot


@dataclass
class Template:
    """Fig. 5's tagging template: static structure, numbered slots."""

    ops: list[tuple] = field(default_factory=list)
    slot_count: int = 0

    def instantiate(self, args: tuple) -> "ConstructedValue":
        """Bind one row's values; no tags are copied ("no repetition of the
        tagging template occurs")."""
        if len(args) < self.slot_count:
            raise QueryError(
                f"template needs {self.slot_count} args, got {len(args)}")
        return ConstructedValue(self, args)

    @property
    def op_count(self) -> int:
        return len(self.ops)


class ConstructedValue:
    """The intermediate result: a template pointer plus a data record."""

    __slots__ = ("template", "args")

    def __init__(self, template: Template, args: tuple) -> None:
        self.template = template
        self.args = args

    def events(self) -> Iterator[SaxEvent]:
        """Virtual SAX iterator over the constructed data (Fig. 8)."""
        args = self.args
        for op in self.template.ops:
            kind = op[0]
            if kind is _Op.OPEN:
                yield SaxEvent(EventKind.ELEM_START, local=op[1])
            elif kind is _Op.CLOSE:
                yield SaxEvent(EventKind.ELEM_END, local=op[1])
            elif kind is _Op.ATTR_CONST:
                yield SaxEvent(EventKind.ATTR, local=op[1], value=op[2])
            elif kind is _Op.ATTR_SLOT:
                yield SaxEvent(EventKind.ATTR, local=op[1],
                               value=_text(args[op[2]]))
            elif kind is _Op.TEXT_CONST:
                yield SaxEvent(EventKind.TEXT, value=op[1])
            else:  # TEXT_SLOT
                text = _text(args[op[1]])
                if text:  # NULL / empty values produce no text node
                    yield SaxEvent(EventKind.TEXT, value=text)

    def serialize(self) -> str:
        return serialize(self.events())


def _text(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def compile_template(spec: Spec) -> Template:
    """Flatten a nested constructor spec into one tagging template."""
    template = Template()
    max_slot = -1

    def emit_value(value: Arg | Const, as_attr: str | None) -> None:
        nonlocal max_slot
        if isinstance(value, Const):
            if as_attr is not None:
                template.ops.append((_Op.ATTR_CONST, as_attr, value.text))
            elif value.text:
                template.ops.append((_Op.TEXT_CONST, value.text))
        else:
            max_slot = max(max_slot, value.index)
            if as_attr is not None:
                template.ops.append((_Op.ATTR_SLOT, as_attr, value.index))
            else:
                template.ops.append((_Op.TEXT_SLOT, value.index))

    def walk(node: Spec) -> None:
        if isinstance(node, (Arg, Const)):
            emit_value(node, None)
        elif isinstance(node, XElem):
            template.ops.append((_Op.OPEN, node.name))
            for attr in node.attrs:
                emit_value(attr.value, attr.name)
            for child in node.children:
                walk(child)
            template.ops.append((_Op.CLOSE, node.name))
        elif isinstance(node, XForest):
            for name, value in node.items:
                template.ops.append((_Op.OPEN, name))
                emit_value(value, None)
                template.ops.append((_Op.CLOSE, name))
        elif isinstance(node, XConcat):
            for child in node.children:
                walk(child)
        else:
            raise QueryError(f"unknown constructor spec {node!r}")

    walk(spec)
    template.slot_count = max_slot + 1
    return template


# -- naive baseline: per-row tree construction ---------------------------------

def naive_construct(spec: Spec, args: tuple) -> list[ElementNode]:
    """Evaluate the nested constructors the standard way: build XDM nodes
    bottom-up for every row (the cost Fig. 5's optimization removes)."""

    def value_of(value: Arg | Const) -> str:
        return value.text if isinstance(value, Const) else _text(args[value.index])

    def walk(node: Spec) -> list:
        from repro.xdm.nodes import TextNode
        if isinstance(node, (Arg, Const)):
            text = value_of(node)
            return [TextNode(text)] if text else []
        if isinstance(node, XElem):
            element = ElementNode(node.name)
            for attr in node.attrs:
                element.set_attribute(attr.name, value_of(attr.value))
            for child in node.children:
                for built in walk(child):
                    element.append(built)
            return [element]
        if isinstance(node, XForest):
            out = []
            for name, value in node.items:
                element = ElementNode(name)
                text = value_of(value)
                if text:
                    from repro.xdm.nodes import TextNode
                    element.append(TextNode(text))
                out.append(element)
            return out
        if isinstance(node, XConcat):
            out = []
            for child in node.children:
                out.extend(walk(child))
            return out
        raise QueryError(f"unknown constructor spec {node!r}")

    return walk(spec)


# -- XMLAGG -----------------------------------------------------------------------

class XmlAggregator:
    """XMLAGG with ORDER BY over constructed values (§4.1).

    ``sort_path``: "quicksort" applies in-memory quicksort to the linked-list
    row representation (the paper's optimization); "external" runs the
    work-file external sort (the baseline it replaces).
    """

    def __init__(self) -> None:
        self._rows: list[tuple[ConstructedValue, object]] = []

    def add(self, value: ConstructedValue, sort_key: object = None) -> None:
        self._rows.append((value, sort_key))

    def __len__(self) -> int:
        return len(self._rows)

    def result_events(self, order_by: bool = False,
                      sort_path: str = "quicksort",
                      work_space: TableSpace | None = None
                      ) -> Iterator[SaxEvent]:
        """Concatenated events of all aggregated values."""
        for value in self.sorted_values(order_by, sort_path, work_space):
            yield from value.events()

    def sorted_values(self, order_by: bool, sort_path: str,
                      work_space: TableSpace | None) -> list[ConstructedValue]:
        if not order_by:
            return [value for value, _ in self._rows]
        if sort_path == "quicksort":
            head = linked_list_from(self._rows)
            return linked_list_to_list(quicksort_linked_list(head))  # type: ignore[return-value]
        if sort_path == "external":
            if work_space is None:
                raise QueryError("external sort needs a work space")
            from ast import literal_eval
            by_token: dict[int, ConstructedValue] = {}
            rows = []
            for token, (value, key) in enumerate(self._rows):
                by_token[token] = value
                rows.append((token, key))
            sorter = ExternalSorter(
                work_space,
                encode=lambda o: repr(o).encode(),
                decode=lambda b: literal_eval(b.decode()),
                run_limit=64)
            ordered = sorter.sort(rows)
            return [by_token[token] for token in ordered]  # type: ignore[index]
        raise QueryError(f"unknown sort path {sort_path!r}")

    def serialize(self, order_by: bool = False, sort_path: str = "quicksort",
                  work_space: TableSpace | None = None) -> str:
        return serialize(self.result_events(order_by, sort_path, work_space))
