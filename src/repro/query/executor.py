"""Plan execution: scan, DocID-list, NodeID-list, ANDing/ORing (§4.3).

Candidate generation follows the plan; every candidate is verified by
re-evaluating the query — for DocID lists over the whole document, for NodeID
lists over the self-contained anchor subtree (record header context replays
the ancestors, §3.1's self-containment property).  "If the XPath expression
of the index contains a query XPath expression but is not equivalent to it
... re-evaluation of the query XPath expression on the document data is
necessary."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import StatsRegistry, default_stats
from repro.errors import NodeIdError, PlanningError, StorageError, XmlError
from repro.lang import ast
from repro.xdm import nodeid
from repro.xdm.events import EventKind, SaxEvent
from repro.xmlstore.store import XmlStore
from repro.xpath.cache import cached_compile
from repro.xpath.qtree import QueryTree
from repro.xpath.quickxscan import QuickXScan
from repro.xpath.values import Item

from repro.query.plan import AccessMethod, AccessPlan


@dataclass(frozen=True)
class QueryMatch:
    """One result row: the document and the matched item."""

    docid: int
    item: Item


class Executor:
    """Executes access plans against one XML store."""

    #: Declared resource capture (SHARD003): the executor charges the
    #: stats sink it was handed for the life of the plan run.
    _shard_scoped_ = ("stats",)

    def __init__(self, store: XmlStore,
                 stats: StatsRegistry | None = None) -> None:
        self.store = store
        self.stats = default_stats(stats)

    def execute(self, plan: AccessPlan) -> list[QueryMatch]:
        with self.stats.trace("exec.compile"):
            query = cached_compile(plan.path, stats=self.stats)
        if plan.method is AccessMethod.FULL_SCAN:
            return self._full_scan(plan, query)
        if plan.method is AccessMethod.DOCID_LIST:
            return self._docid_list(plan, query)
        if plan.method is AccessMethod.NODEID_LIST:
            return self._nodeid_list(plan, query)
        raise PlanningError(f"unknown access method {plan.method}")

    # -- full scan ----------------------------------------------------------------

    def _full_scan(self, plan: AccessPlan, query: QueryTree
                   ) -> list[QueryMatch]:
        with self.stats.trace("exec.full_scan") as span:
            out: list[QueryMatch] = []
            docs = 0
            for docid in self.store.docids():
                docs += 1
                self.stats.add("exec.docs_evaluated")
                events = self.store.document(docid).events()
                for item in QuickXScan(query, stats=self.stats).run(events):
                    out.append(QueryMatch(docid, item))
            if span is not None:
                span.set("docs", docs)
                span.set("rows", len(out))
            return out

    # -- DocID list -------------------------------------------------------------------

    def _docid_candidates(self, plan: AccessPlan) -> list[int]:
        with self.stats.trace("exec.probe") as span:
            candidate_set: set[int] | None = None
            probes = 0
            for group in plan.source_groups:
                group_docs: set[int] = set()
                for source in group:
                    probes += 1
                    self.stats.add("exec.index_probes")
                    for hit in source.index.lookup_op(source.op,
                                                      source.literal):
                        group_docs.add(hit.docid)
                # DocID ANDing across groups, ORing within a group.
                if candidate_set is None:
                    candidate_set = group_docs
                else:
                    candidate_set &= group_docs
            self.stats.add("exec.candidates", len(candidate_set or ()))
            if span is not None:
                span.set("probes", probes)
                span.set("candidates", len(candidate_set or ()))
            return sorted(candidate_set or ())

    def _docid_list(self, plan: AccessPlan, query: QueryTree
                    ) -> list[QueryMatch]:
        with self.stats.trace("exec.docid_list") as span:
            out: list[QueryMatch] = []
            candidates = self._docid_candidates(plan)
            for docid in candidates:
                self.stats.add("exec.docs_evaluated")
                events = self.store.document(docid).events()
                items = QuickXScan(query, stats=self.stats).run(events)
                if not items and plan.exact:
                    self.stats.add("exec.exactness_misses")
                for item in items:
                    out.append(QueryMatch(docid, item))
            if span is not None:
                span.set("candidates", len(candidates))
                span.set("rows", len(out))
            return out

    # -- NodeID list -------------------------------------------------------------------

    def _anchor_candidates(self, plan: AccessPlan
                           ) -> list[tuple[int, bytes]]:
        with self.stats.trace("exec.probe") as span:
            candidate_set: set[tuple[int, bytes]] | None = None
            probes = 0
            for group in plan.source_groups:
                group_anchors: set[tuple[int, bytes]] = set()
                for source in group:
                    probes += 1
                    self.stats.add("exec.index_probes")
                    depth = source.suffix_depth
                    if depth is None:
                        raise PlanningError(
                            "NodeID-list plan without derivable anchors")
                    for hit in source.index.lookup_op(source.op,
                                                      source.literal):
                        anchor = hit.node_id
                        try:
                            for _ in range(depth):
                                anchor = nodeid.parent(anchor)
                        except NodeIdError:
                            continue  # value node too shallow: cannot match
                        group_anchors.add((hit.docid, anchor))
                if candidate_set is None:
                    candidate_set = group_anchors
                else:
                    candidate_set &= group_anchors  # NodeID ANDing
            self.stats.add("exec.candidates", len(candidate_set or ()))
            if span is not None:
                span.set("probes", probes)
                span.set("candidates", len(candidate_set or ()))
            return sorted(candidate_set or ())

    def _nodeid_list(self, plan: AccessPlan, query: QueryTree
                     ) -> list[QueryMatch]:
        with self.stats.trace("exec.nodeid_list") as span:
            out: list[QueryMatch] = []
            anchors = self._anchor_candidates(plan)
            with self.stats.trace("exec.anchor") as verify_span:
                for docid, anchor in anchors:
                    self.stats.add("exec.anchors_verified")
                    items = self._verify_anchor(docid, anchor, query)
                    if not items and plan.exact:
                        self.stats.add("exec.exactness_misses")
                    for item in items:
                        out.append(QueryMatch(docid, item))
                if verify_span is not None:
                    verify_span.set("anchors", len(anchors))
            out.sort(key=lambda match: (match.docid, match.item.order))
            if span is not None:
                span.set("rows", len(out))
            return out

    def _verify_anchor(self, docid: int, anchor: bytes,
                       query: QueryTree) -> list[Item]:
        """Re-evaluate the query over the anchor's self-contained context."""
        doc = self.store.document(docid)
        try:
            ancestors = doc.ancestry(anchor)
        except (XmlError, StorageError):
            return []  # anchor does not exist (stale/foreign hit)
        # Replay ancestors from record-header context, then the subtree.
        # The anchor's own element is the first event of node_events.
        ancestor_names = ancestors  # root-first (local, uri) pairs

        def stream():
            yield SaxEvent(EventKind.DOC_START)
            for local, uri in ancestor_names:
                yield SaxEvent(EventKind.ELEM_START, local=local, uri=uri)
            yield from doc.node_events(anchor)
            for local, uri in reversed(ancestor_names):
                yield SaxEvent(EventKind.ELEM_END, local=local, uri=uri)
            yield SaxEvent(EventKind.DOC_END)

        items = QuickXScan(query, stats=self.stats).run(stream())
        # Keep only the anchor's own match: nested matches inside the
        # subtree are separate candidates (verified via their own index
        # hits), so counting them here would duplicate results.
        return [item for item in items if item.node_id == anchor]


def run_query(store: XmlStore, plan: AccessPlan,
              stats: StatsRegistry | None = None) -> list[QueryMatch]:
    """One-shot plan execution."""
    return Executor(store, stats=stats).execute(plan)


def scan_plan(path: ast.LocationPath) -> AccessPlan:
    """A bare full-scan plan (no planner required)."""
    return AccessPlan(AccessMethod.FULL_SCAN, path)
