"""A SQL/XML subset: the engine's query language surface (§2, §4.1).

"Currently, all the manipulation and querying of XML data are through SQL and
SQL/XML with embedded XPath."  The supported subset:

* ``CREATE TABLE t (col TYPE, ...)`` — types: BIGINT, DOUBLE, DECFLOAT,
  VARCHAR[(n)], DATE, XML;
* ``INSERT INTO t VALUES (...)``;
* ``DELETE FROM t WHERE ...``;
* ``CREATE INDEX ix ON t(col) GENERATE KEY USING XMLPATTERN 'path' AS SQL
  DOUBLE`` (DB2-style XPath value index DDL, §3.3);
* ``SELECT items FROM t [WHERE cond] [GROUP BY col]`` with:

  - column references, literals, ``||`` concatenation,
  - ``XMLQUERY('xpath' PASSING col)`` (serialized result sequence),
  - ``XMLEXISTS('xpath' PASSING col)`` in WHERE,
  - ``XMLELEMENT(NAME "n", XMLATTRIBUTES(expr AS "a", ...), args...)``,
    ``XMLFOREST(expr AS name, ...)``, ``XMLCONCAT(...)`` — compiled once
    per query into a tagging template (§4.1),
  - ``XMLAGG(constructor [ORDER BY expr [DESC]])`` with the in-memory
    quicksort path.

Nested constructor calls are flattened at *compile* time: scalar argument
expressions become numbered template slots, so each row is evaluated into a
plain args record bound to the shared template (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.engine import Database
from repro.errors import QueryError, SqlSyntaxError
from repro.query.constructors import (Arg, Const, Spec, XAttr, XConcat,
                                      XElem, XForest, XmlAggregator,
                                      compile_template)
from repro.xdm.serializer import serialize
from repro.xpath.quickxscan import evaluate as xscan_evaluate

_KEYWORDS = {
    "create", "table", "index", "on", "insert", "into", "values", "select",
    "from", "where", "and", "or", "not", "null", "group", "by", "order",
    "desc", "asc", "delete", "generate", "key", "using", "xmlpattern", "as",
    "sql", "passing", "xmlquery", "xmlexists", "xmlelement",
    "xmlattributes", "xmlforest", "xmlconcat", "xmlagg",
}


@dataclass(frozen=True)
class _Tok:
    type: str  # "word" | "string" | "number" | punctuation
    value: object
    pos: int


def _tokenize(text: str) -> list[_Tok]:
    out: list[_Tok] = []
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        if ch == "'":
            # SQL string literal with '' escaping.
            parts = []
            pos += 1
            while True:
                end = text.find("'", pos)
                if end < 0:
                    raise SqlSyntaxError(f"unterminated string at {pos}")
                parts.append(text[pos:end])
                if text[end:end + 2] == "''":
                    parts.append("'")
                    pos = end + 2
                    continue
                pos = end + 1
                break
            out.append(_Tok("string", "".join(parts), pos))
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < length
                            and text[pos + 1].isdigit()):
            start = pos
            while pos < length and (text[pos].isdigit() or text[pos] == "."):
                pos += 1
            literal = text[start:pos]
            out.append(_Tok("number",
                            float(literal) if "." in literal
                            else int(literal), start))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            out.append(_Tok("word", text[start:pos], start))
            continue
        if ch == '"':
            end = text.find('"', pos + 1)
            if end < 0:
                raise SqlSyntaxError(f"unterminated identifier at {pos}")
            out.append(_Tok("qword", text[pos + 1:end], pos))
            pos = end + 1
            continue
        two = text[pos:pos + 2]
        if two in ("<=", ">=", "<>", "!=", "||"):
            out.append(_Tok(two, two, pos))
            pos += 2
            continue
        if ch in "(),*=<>.":
            out.append(_Tok(ch, ch, pos))
            pos += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at offset {pos}")
    return out


# -- expression forms ---------------------------------------------------------

class SExpr:
    pass


@dataclass
class ColRef(SExpr):
    name: str


@dataclass
class SLiteral(SExpr):
    value: object


@dataclass
class Concat(SExpr):
    parts: list[SExpr]


@dataclass
class Comparison(SExpr):
    op: str
    left: SExpr
    right: SExpr


@dataclass
class BoolOp(SExpr):
    op: str
    left: SExpr
    right: SExpr


@dataclass
class NotOp(SExpr):
    operand: SExpr


@dataclass
class XmlExists(SExpr):
    xpath: str
    column: str


@dataclass
class XmlQuery(SExpr):
    xpath: str
    column: str


@dataclass
class ConstructorExpr(SExpr):
    """A compiled constructor: template + per-row slot expressions."""

    spec: Spec
    slots: list[SExpr]

    def __post_init__(self) -> None:
        self.template = compile_template(self.spec)


@dataclass
class XmlAggExpr(SExpr):
    inner: ConstructorExpr
    order_by: SExpr | None
    descending: bool


# -- statements ----------------------------------------------------------------

@dataclass
class CreateTable:
    name: str
    columns: list[tuple[str, str]]


@dataclass
class CreateIndex:
    name: str
    table: str
    column: str
    pattern: str
    key_type: str


@dataclass
class Insert:
    table: str
    values: list[SExpr]


@dataclass
class Delete:
    table: str
    where: SExpr | None


@dataclass
class Select:
    items: list[tuple[SExpr, str]]  # (expression, output name)
    table: str
    where: SExpr | None
    group_by: str | None


Statement = CreateTable | CreateIndex | Insert | Delete | Select


class _Parser:
    def __init__(self, tokens: list[_Tok]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- cursor helpers -----------------------------------------------------

    def peek(self) -> _Tok | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> _Tok:
        token = self.peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of statement")
        self.pos += 1
        return token

    def accept_word(self, *words: str) -> str | None:
        token = self.peek()
        if token is not None and token.type == "word" and \
                str(token.value).lower() in words:
            self.pos += 1
            return str(token.value).lower()
        return None

    def expect_word(self, word: str) -> None:
        if self.accept_word(word) is None:
            found = self.peek()
            raise SqlSyntaxError(
                f"expected {word.upper()}, found "
                f"{found.value if found else 'end'}")

    def expect(self, token_type: str) -> _Tok:
        token = self.next()
        if token.type != token_type:
            raise SqlSyntaxError(
                f"expected {token_type!r}, found {token.value!r}")
        return token

    def identifier(self) -> str:
        token = self.next()
        if token.type == "word":
            word = str(token.value)
            if word.lower() in _KEYWORDS:
                raise SqlSyntaxError(f"keyword {word!r} used as identifier")
            return word
        if token.type == "qword":
            return str(token.value)
        raise SqlSyntaxError(f"expected an identifier, found {token.value!r}")

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # -- statements ----------------------------------------------------------------

    def statement(self) -> Statement:
        if self.accept_word("create"):
            if self.accept_word("table"):
                return self._create_table()
            if self.accept_word("index"):
                return self._create_index()
            raise SqlSyntaxError("expected TABLE or INDEX after CREATE")
        if self.accept_word("insert"):
            return self._insert()
        if self.accept_word("delete"):
            return self._delete()
        if self.accept_word("select"):
            return self._select()
        found = self.peek()
        raise SqlSyntaxError(
            f"unknown statement start {found.value if found else 'end'!r}")

    def _create_table(self) -> CreateTable:
        name = self.identifier()
        self.expect("(")
        columns = []
        while True:
            col_name = self.identifier()
            col_type = str(self.expect("word" if self.peek() and
                                       self.peek().type == "word"
                                       else "word").value).lower()
            if self.peek() is not None and self.peek().type == "(":
                self.next()
                self.expect("number")  # VARCHAR(n) length ignored
                self.expect(")")
            columns.append((col_name, col_type))
            token = self.next()
            if token.type == ")":
                break
            if token.type != ",":
                raise SqlSyntaxError(f"expected , or ) in column list")
        if not self.at_end():
            raise SqlSyntaxError("trailing tokens after CREATE TABLE")
        return CreateTable(name, columns)

    def _create_index(self) -> CreateIndex:
        name = self.identifier()
        self.expect_word("on")
        table = self.identifier()
        self.expect("(")
        column = self.identifier()
        self.expect(")")
        self.expect_word("generate")
        self.expect_word("key")
        self.expect_word("using")
        self.expect_word("xmlpattern")
        pattern = str(self.expect("string").value)
        self.expect_word("as")
        self.expect_word("sql")
        key_type = str(self.expect("word").value).lower()
        if self.peek() is not None and self.peek().type == "(":
            self.next()
            self.expect("number")
            self.expect(")")
        return CreateIndex(name, table, column, pattern, key_type)

    def _insert(self) -> Insert:
        self.expect_word("into")
        table = self.identifier()
        self.expect_word("values")
        self.expect("(")
        values = [self.expr()]
        while self.peek() is not None and self.peek().type == ",":
            self.next()
            values.append(self.expr())
        self.expect(")")
        return Insert(table, values)

    def _delete(self) -> Delete:
        self.expect_word("from")
        table = self.identifier()
        where = None
        if self.accept_word("where"):
            where = self.condition()
        return Delete(table, where)

    def _select(self) -> Select:
        items: list[tuple[SExpr, str]] = []
        auto = 0
        while True:
            if self.peek() is not None and self.peek().type == "*":
                self.next()
                items.append((SLiteral("*"), "*"))
            else:
                expression = self.expr()
                if self.accept_word("as"):
                    alias = self.identifier()
                elif isinstance(expression, ColRef):
                    alias = expression.name
                else:
                    auto += 1
                    alias = f"col{auto}"
                items.append((expression, alias))
            if self.peek() is not None and self.peek().type == ",":
                self.next()
                continue
            break
        self.expect_word("from")
        table = self.identifier()
        where = None
        group_by = None
        if self.accept_word("where"):
            where = self.condition()
        if self.accept_word("group"):
            self.expect_word("by")
            group_by = self.identifier()
        if not self.at_end():
            raise SqlSyntaxError("trailing tokens after SELECT")
        return Select(items, table, where, group_by)

    # -- conditions -------------------------------------------------------------------

    def condition(self) -> SExpr:
        left = self.and_condition()
        while self.accept_word("or"):
            left = BoolOp("or", left, self.and_condition())
        return left

    def and_condition(self) -> SExpr:
        left = self.simple_condition()
        while self.accept_word("and"):
            left = BoolOp("and", left, self.simple_condition())
        return left

    def simple_condition(self) -> SExpr:
        if self.accept_word("not"):
            return NotOp(self.simple_condition())
        if self.accept_word("xmlexists"):
            self.expect("(")
            xpath = str(self.expect("string").value)
            self.expect_word("passing")
            column = self.identifier()
            self.expect(")")
            return XmlExists(xpath, column)
        if self.peek() is not None and self.peek().type == "(":
            self.next()
            inner = self.condition()
            self.expect(")")
            return inner
        left = self.expr()
        token = self.next()
        op = {"=": "=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
              "<>": "!=", "!=": "!="}.get(token.type)
        if op is None:
            raise SqlSyntaxError(f"expected a comparison, found "
                                 f"{token.value!r}")
        return Comparison(op, left, self.expr())

    # -- scalar / XML expressions --------------------------------------------------------

    def expr(self) -> SExpr:
        left = self.primary()
        while self.peek() is not None and self.peek().type == "||":
            self.next()
            right = self.primary()
            if isinstance(left, Concat):
                left.parts.append(right)
            else:
                left = Concat([left, right])
        return left

    def primary(self) -> SExpr:
        token = self.peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of expression")
        if token.type in ("string", "number"):
            self.next()
            return SLiteral(token.value)
        if token.type == "word":
            word = str(token.value).lower()
            if word == "null":
                self.next()
                return SLiteral(None)
            if word == "xmlquery":
                self.next()
                self.expect("(")
                xpath = str(self.expect("string").value)
                self.expect_word("passing")
                column = self.identifier()
                self.expect(")")
                return XmlQuery(xpath, column)
            if word in ("xmlelement", "xmlforest", "xmlconcat"):
                slots: list[SExpr] = []
                spec = self._constructor(slots)
                return ConstructorExpr(spec, slots)
            if word == "xmlagg":
                self.next()
                self.expect("(")
                slots = []
                inner_spec = self._constructor(slots)
                inner = ConstructorExpr(inner_spec, slots)
                order_by = None
                descending = False
                if self.accept_word("order"):
                    self.expect_word("by")
                    order_by = self.expr()
                    if self.accept_word("desc"):
                        descending = True
                    else:
                        self.accept_word("asc")
                self.expect(")")
                return XmlAggExpr(inner, order_by, descending)
            self.next()
            return ColRef(str(token.value))
        if token.type == "qword":
            self.next()
            return ColRef(str(token.value))
        raise SqlSyntaxError(f"unexpected token {token.value!r}")

    def _constructor(self, slots: list[SExpr]) -> Spec:
        """Parse a constructor call, collecting slot expressions (§4.1)."""
        word = self.accept_word("xmlelement", "xmlforest", "xmlconcat")
        if word is None:
            # A nested scalar argument: becomes a numbered slot.
            expression = self.expr()
            if isinstance(expression, SLiteral) and \
                    expression.value is not None:
                return Const(str(expression.value))
            slots.append(expression)
            return Arg(len(slots) - 1)
        self.expect("(")
        if word == "xmlelement":
            self.expect_word("name")
            name_token = self.next()
            if name_token.type not in ("qword", "word"):
                raise SqlSyntaxError("XMLELEMENT needs an element name")
            attrs: list[XAttr] = []
            children: list[Spec] = []
            while self.peek() is not None and self.peek().type == ",":
                self.next()
                if self.accept_word("xmlattributes"):
                    self.expect("(")
                    while True:
                        value = self.expr()
                        self.expect_word("as")
                        attr_token = self.next()
                        if attr_token.type not in ("qword", "word"):
                            raise SqlSyntaxError("attribute name expected")
                        if isinstance(value, SLiteral) and \
                                value.value is not None:
                            attrs.append(XAttr(str(attr_token.value),
                                               Const(str(value.value))))
                        else:
                            slots.append(value)
                            attrs.append(XAttr(str(attr_token.value),
                                               Arg(len(slots) - 1)))
                        if self.peek() is not None and \
                                self.peek().type == ",":
                            self.next()
                            continue
                        break
                    self.expect(")")
                else:
                    children.append(self._constructor(slots))
            self.expect(")")
            return XElem(str(name_token.value), tuple(attrs),
                         tuple(children))
        if word == "xmlforest":
            items = []
            while True:
                value = self.expr()
                self.expect_word("as")
                item_token = self.next()
                if item_token.type not in ("qword", "word"):
                    raise SqlSyntaxError("XMLFOREST item name expected")
                if isinstance(value, SLiteral) and value.value is not None:
                    items.append((str(item_token.value),
                                  Const(str(value.value))))
                else:
                    slots.append(value)
                    items.append((str(item_token.value),
                                  Arg(len(slots) - 1)))
                if self.peek() is not None and self.peek().type == ",":
                    self.next()
                    continue
                break
            self.expect(")")
            return XForest(tuple(items))
        # xmlconcat
        children = [self._constructor(slots)]
        while self.peek() is not None and self.peek().type == ",":
            self.next()
            children.append(self._constructor(slots))
        self.expect(")")
        return XConcat(tuple(children))


def parse_statement(text: str) -> Statement:
    return _Parser(_tokenize(text)).statement()


# -- execution ------------------------------------------------------------------------

class SqlSession:
    """Statement executor bound to one :class:`Database`."""

    #: Declared resource captures (SHARD003): the session resolves table
    #: definitions against its database's catalog and charges its stats
    #: sink for its whole life.
    _shard_scoped_ = ("catalog", "stats")

    def __init__(self, db: Database) -> None:
        self.db = db
        self.catalog = db.catalog
        self.stats = db.stats

    def execute(self, text: str) -> list[dict]:
        """Run one statement; SELECTs return rows as dicts."""
        statement = parse_statement(text)
        if isinstance(statement, CreateTable):
            self.db.create_table(statement.name, statement.columns)
            return []
        if isinstance(statement, CreateIndex):
            self.db.create_xpath_index(statement.name, statement.table,
                                       statement.column, statement.pattern,
                                       statement.key_type)
            return []
        if isinstance(statement, Insert):
            values = tuple(self._literal(v) for v in statement.values)
            self.db.insert(statement.table, values)
            return []
        if isinstance(statement, Delete):
            return self._delete(statement)
        return self._select(statement)

    @staticmethod
    def _literal(expr: SExpr) -> object:
        if not isinstance(expr, SLiteral):
            raise SqlSyntaxError("INSERT values must be literals")
        return expr.value

    # -- row source ----------------------------------------------------------------

    def _rows(self, table: str) -> Iterator[tuple[object, dict]]:
        definition = self.catalog.table(table)
        names = [c.name for c in definition.columns]
        for rid, row in self.db.tables[table].scan_rids():
            yield rid, dict(zip(names, row, strict=True))

    def _delete(self, statement: Delete) -> list[dict]:
        victims = []
        for rid, row in self._rows(statement.table):
            if statement.where is None or self._truth(
                    statement.where, statement.table, row):
                victims.append(rid)
        for rid in victims:
            self.db.delete_row(statement.table, rid)
        return [{"deleted": len(victims)}]

    def _select(self, statement: Select) -> list[dict]:
        rows = self._filtered_rows(statement)
        has_agg = any(isinstance(expr, XmlAggExpr)
                      for expr, _ in statement.items)
        if not has_agg:
            return [self._project(statement, row) for row in rows]
        # Aggregation: one output row per group.
        groups: dict[object, list[dict]] = {}
        for row in rows:
            key = row[statement.group_by] if statement.group_by else None
            groups.setdefault(key, []).append(row)
        out = []
        for key in sorted(groups, key=lambda k: (k is None, k)):
            out.append(self._project_group(statement, key, groups[key]))
        return out

    def _filtered_rows(self, statement: Select) -> list[dict]:
        """WHERE evaluation, routing a lone XMLEXISTS through the planner.

        When the whole WHERE clause is one XMLEXISTS, the XPath access
        methods of §4.3 bound the candidate rows (index-driven when XPath
        value indexes match); any other condition shape falls back to
        row-at-a-time evaluation.
        """
        condition = statement.where
        if isinstance(condition, XmlExists):
            from repro.lang import ast as xpath_ast
            from repro.lang.parser import parse_xpath as _parse_xpath
            try:
                parsed = _parse_xpath(condition.xpath)
            except QueryError:
                parsed = None
            if isinstance(parsed, xpath_ast.LocationPath):
                matches = self.db.xpath(statement.table, condition.column,
                                        condition.xpath)
                qualifying = {m.docid for m in matches}
                definition = self.catalog.table(statement.table)
                names = [c.name for c in definition.columns]
                return [dict(zip(names, row, strict=True))
                        for _rid, row in
                        self.db.tables[statement.table].scan_rids()
                        if row[definition.column_index(condition.column)]
                        in qualifying]
        return [row for _rid, row in self._rows(statement.table)
                if condition is None
                or self._truth(condition, statement.table, row)]

    def _project(self, statement: Select, row: dict) -> dict:
        result = {}
        for expression, alias in statement.items:
            if isinstance(expression, SLiteral) and expression.value == "*" \
                    and alias == "*":
                result.update(row)
            else:
                result[alias] = self._render(
                    self._scalar(expression, statement.table, row))
        return result

    def _project_group(self, statement: Select, key: object,
                       rows: list[dict]) -> dict:
        result = {}
        for expression, alias in statement.items:
            if isinstance(expression, XmlAggExpr):
                agg = XmlAggregator()
                for row in rows:
                    args = tuple(
                        self._scalar(slot, statement.table, row)
                        for slot in expression.inner.slots)
                    sort_key = None
                    if expression.order_by is not None:
                        sort_key = self._scalar(expression.order_by,
                                                statement.table, row)
                        if expression.descending:
                            sort_key = _Reversed(sort_key)
                    agg.add(expression.inner.template.instantiate(args),
                            sort_key)
                result[alias] = agg.serialize(
                    order_by=expression.order_by is not None)
            elif isinstance(expression, ColRef) and \
                    expression.name == statement.group_by:
                result[alias] = key
            else:
                result[alias] = self._render(
                    self._scalar(expression, statement.table, rows[0]))
        return result

    # -- scalar evaluation --------------------------------------------------------------

    def _scalar(self, expression: SExpr, table: str, row: dict) -> object:
        if isinstance(expression, SLiteral):
            return expression.value
        if isinstance(expression, ColRef):
            if expression.name not in row:
                raise SqlSyntaxError(f"unknown column {expression.name!r}")
            return row[expression.name]
        if isinstance(expression, Concat):
            return "".join(
                "" if part is None else str(part)
                for part in (self._scalar(p, table, row)
                             for p in expression.parts))
        if isinstance(expression, XmlQuery):
            return self._xmlquery(expression, table, row)
        if isinstance(expression, ConstructorExpr):
            args = tuple(self._scalar(slot, table, row)
                         for slot in expression.slots)
            return expression.template.instantiate(args)
        raise SqlSyntaxError(f"cannot evaluate {expression!r} as a scalar")

    def _render(self, value: object) -> object:
        from repro.query.constructors import ConstructedValue
        if isinstance(value, ConstructedValue):
            return value.serialize()
        return value

    def _xml_column_events(self, table: str, column: str, row: dict):
        docid = row[column]
        store = self.db.xml_stores.get((table, column))
        if store is None or docid is None:
            return None
        return store.document(docid).events()

    def _xmlquery(self, expression: XmlQuery, table: str,
                  row: dict) -> str | None:
        events = self._xml_column_events(table, expression.column, row)
        if events is None:
            return None
        items = xscan_evaluate(expression.xpath, events,
                               stats=self.stats)
        store = self.db.xml_stores[(table, expression.column)]
        docid = row[expression.column]
        parts = []
        for item in items:
            if item.kind == "element" and item.node_id is not None:
                parts.append(serialize(
                    store.document(docid).node_events(item.node_id)))
            else:
                parts.append(item.value or "")
        return "".join(parts)

    def _truth(self, condition: SExpr, table: str, row: dict) -> bool:
        if isinstance(condition, BoolOp):
            if condition.op == "and":
                return (self._truth(condition.left, table, row)
                        and self._truth(condition.right, table, row))
            return (self._truth(condition.left, table, row)
                    or self._truth(condition.right, table, row))
        if isinstance(condition, NotOp):
            return not self._truth(condition.operand, table, row)
        if isinstance(condition, XmlExists):
            events = self._xml_column_events(table, condition.column, row)
            if events is None:
                return False
            return bool(xscan_evaluate(condition.xpath, events,
                                       stats=self.stats,
                                       collect_result_values=False))
        if isinstance(condition, Comparison):
            left = self._scalar(condition.left, table, row)
            right = self._scalar(condition.right, table, row)
            if left is None or right is None:
                return False
            if isinstance(left, str) != isinstance(right, str):
                try:
                    left, right = float(left), float(right)  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    return False
            table_ops = {
                "=": left == right, "!=": left != right,
                "<": left < right, "<=": left <= right,  # type: ignore[operator]
                ">": left > right, ">=": left >= right,  # type: ignore[operator]
            }
            return table_ops[condition.op]
        raise SqlSyntaxError(f"cannot evaluate condition {condition!r}")


class _Reversed:
    """Sort-key wrapper inverting comparisons (ORDER BY ... DESC)."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value  # type: ignore[operator]

    def __gt__(self, other: "_Reversed") -> bool:
        return other.value > self.value  # type: ignore[operator]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value
