"""Exception hierarchy for the System R/X reproduction.

Every error raised by the engine derives from :class:`ReproError` so that
applications can catch engine failures with a single ``except`` clause while
still being able to distinguish subsystem-specific conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all engine errors."""


class StorageError(ReproError):
    """Raised for page/record/table-space level failures."""


class PageFullError(StorageError):
    """A record does not fit on the target page."""


class RecordNotFoundError(StorageError):
    """A RID does not designate a live record."""


class BufferPoolError(StorageError):
    """Buffer-pool misuse (e.g. no evictable frame because all are pinned)."""


class ChecksumError(StorageError):
    """Stored data failed checksum verification (torn write or bit rot)."""


class FaultInjectionError(StorageError):
    """An injected I/O failure from a fault plan (see :mod:`repro.fault`)."""


class IndexError_(ReproError):
    """B+tree / index manager failure.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError`` while keeping the natural name.
    """


class DuplicateKeyError(IndexError_):
    """Insert of a key that already exists in a unique index."""


class CatalogError(ReproError):
    """Catalog/directory inconsistency (unknown table, duplicate name, ...)."""


class LogError(ReproError):
    """Write-ahead-log failure."""


class RecoveryError(LogError):
    """Restart recovery could not bring the database to a consistent state."""


class TransactionError(ReproError):
    """Transaction misuse (operation on a finished transaction, ...)."""


class DeadlockError(TransactionError):
    """The lock manager chose this transaction as a deadlock victim."""


class LockTimeoutError(TransactionError):
    """A lock request could not be granted within the configured bound."""


class ServerError(ReproError):
    """Base class for serving-layer failures (see :mod:`repro.serve`).

    The serving layer's error taxonomy is typed so clients can tell
    "back off and retry later" (:class:`ServerOverloadedError`), "this
    request ran out of time" (:class:`DeadlineExceededError`) and "the
    server is going away" (:class:`ServerClosedError`) from a broken
    engine (any other :class:`ReproError`).
    """


class ServerOverloadedError(ServerError):
    """Admission control shed the request: queue full or engine overloaded.

    The work was *not* started; retrying after a backoff is safe.
    """


class DeadlineExceededError(ServerError):
    """The request's deadline expired (queued, waiting on a lock, or
    between victim retries) before the work could complete.

    Any transactional work performed on behalf of the request has been
    aborted; nothing was committed.
    """


class ServerClosedError(ServerError):
    """The server is shut down (or draining) and accepts no new work."""


class XmlError(ReproError):
    """Base class for XML data-model and parsing errors."""


class XmlParseError(XmlError):
    """Malformed XML input."""


class XmlValidationError(XmlError):
    """Input does not conform to the registered XML schema."""


class SchemaError(XmlError):
    """Invalid schema definition or unknown registered schema."""


class NodeIdError(XmlError):
    """Malformed Dewey node identifier."""


class PackingError(XmlError):
    """Packed-record format violation."""


class DocumentNotFoundError(XmlError):
    """A DocID does not designate a stored document."""


class SanitizerError(ReproError):
    """A runtime invariant sanitizer tripped (see :mod:`repro.analyze.sanitize`).

    Raised only when sanitizers are armed (``REPRO_SANITIZE=1``): a pinned
    frame at a transaction boundary, a lock surviving commit/abort, a
    double-unpin, a WAL LSN regression or a witnessed lock-order inversion.
    """


class AnalysisError(ReproError):
    """Static-analysis toolkit failure (see :mod:`repro.analyze`)."""


class QueryError(ReproError):
    """Base class for query compilation/execution errors."""


class XPathSyntaxError(QueryError):
    """XPath expression could not be parsed."""


class XPathUnsupportedError(QueryError):
    """Syntactically valid XPath outside the supported subset."""


class SqlSyntaxError(QueryError):
    """SQL/XML statement could not be parsed."""


class PlanningError(QueryError):
    """No valid access path could be produced."""


class ExecutionError(QueryError):
    """Runtime failure while executing a query plan."""


class TypeError_(QueryError):
    """XPath/SQL dynamic type error (named to avoid shadowing the builtin)."""
