"""A Disk-interface wrapper that applies a fault plan to physical I/O.

:class:`FaultyDisk` sits where the device driver would: between the buffer
pool and the stored page array.  It conforms to the
:class:`~repro.rdb.storage.Disk` interface, so any component (buffer pool,
table space, B+tree) runs unmodified under a fault plan.

Fault semantics mirror real hardware:

* **failed write** — the write raises and *nothing* reaches the device.
* **torn write** — only a prefix of the new image reaches the device, but
  the page checksum records the intended image, so the next read of the
  page raises :class:`~repro.errors.ChecksumError` (a real engine's torn
  bit / checksum behaves the same way).
* **bit flip on read** — the stored image is damaged in place before the
  read; checksum verification inside :meth:`Disk.read_page` catches it.
* **crash mid-write** — the page is torn in half, then
  :class:`~repro.fault.injector.SimulatedCrash` propagates.
"""

from __future__ import annotations

from repro.core.stats import StatsRegistry
from repro.errors import FaultInjectionError
from repro.fault.injector import FaultInjector, SimulatedCrash
from repro.rdb.storage import Disk


class FaultyDisk:
    """Wraps a :class:`Disk`, injecting the faults an injector plans."""

    def __init__(self, inner: Disk, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    # -- Disk interface ----------------------------------------------------

    @property
    def page_size(self) -> int:
        return self.inner.page_size

    @property
    def stats(self) -> StatsRegistry:
        return self.inner.stats

    @property
    def page_count(self) -> int:
        return self.inner.page_count

    @property
    def allocated_bytes(self) -> int:
        return self.inner.allocated_bytes

    def allocate_page(self) -> int:
        return self.inner.allocate_page()

    def read_page(self, page_id: int) -> bytes:
        bit = self.injector.on_read(page_id, self.inner.page_size)
        if bit is not None:
            image = bytearray(self.inner.raw_page(page_id))
            image[bit // 8] ^= 1 << (bit % 8)
            self.inner.corrupt_page(page_id, bytes(image))
        return self.inner.read_page(page_id)

    def write_page(self, page_id: int, data: bytes) -> None:
        outcome = self.injector.on_write(page_id, data)
        if outcome.fail:
            raise FaultInjectionError(
                f"injected write failure on page {page_id}")
        previous = self.inner.raw_page(page_id)
        self.inner.write_page(page_id, data)
        if outcome.keep_bytes is not None:
            torn = bytes(data[:outcome.keep_bytes]) + \
                previous[outcome.keep_bytes:]
            self.inner.corrupt_page(page_id, torn)
        try:
            self.injector.hit("disk.write.mid")
        except SimulatedCrash:
            half = len(data) // 2
            self.inner.corrupt_page(page_id, bytes(data[:half]) +
                                    previous[half:])
            raise
        self.injector.hit("disk.write.post")

    # -- fault hooks / persistence (delegate) ------------------------------

    def raw_page(self, page_id: int) -> bytes:
        return self.inner.raw_page(page_id)

    def corrupt_page(self, page_id: int, data: bytes) -> None:
        self.inner.corrupt_page(page_id, data)

    def save(self, path: str) -> None:
        self.inner.save(path)
