"""Crash harness: run a workload to a crash point, restart, verify.

The harness drives one engine instance under a fault plan, catches the
:class:`~repro.fault.injector.SimulatedCrash` when the plan fires, hardens
what a real crash would have left on stable storage (the WAL as of the last
completed append, the device image as-is — torn pages included), and then
simulates a restart: reload the WAL (torn-tail tolerant) and replay the
committed records against a fresh engine.

Verification helpers reduce a database to a comparable digest (every stored
document plus every base row) and cross-check every XPath value index
against a freshly rebuilt one, so crash tests can assert the recovered
database is exactly the committed prefix with consistent indexes.

Group commit adds two crash points inside the group force itself —
``wal.group.pre_flush`` (the batch of COMMIT records is appended but none
is durable) and ``wal.group.post_flush`` (the whole batch just hardened).
Because :class:`~repro.rdb.wal.LogManager.save` persists only the durable
prefix and the log *halts* when a crash escapes the force, ``run`` hardens
exactly what a real crash would have: pre-flush loses the whole group,
post-flush keeps it, and nothing the dead process did afterwards can leak
into the WAL.  :func:`recovered_commit_txns` extracts the committed txn
ids from a reloaded log so tests can assert "every acknowledged commit is
recovered; nothing unacknowledged is acknowledged twice".
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.stats import StatsRegistry
from repro.fault.injector import FaultInjector, FaultSpec, SimulatedCrash
from repro.obs.events import EventTrace
from repro.indexes.manager import XPathValueIndex
from repro.rdb.storage import Disk
from repro.rdb.wal import LogManager, LogOp
from repro.xdm.serializer import serialize


@dataclass
class CrashOutcome:
    """What one harness run left behind."""

    crash: SimulatedCrash | None
    db: "object"  # the (crashed) engine, for post-mortem inspection
    wal_path: str
    image_path: str

    @property
    def crashed(self) -> bool:
        return self.crash is not None

    @property
    def point(self) -> str | None:
        return self.crash.point if self.crash else None


def recovered_commit_txns(log: LogManager) -> set[int]:
    """Txn ids whose COMMIT record survived in ``log``.

    After a crash-and-reload this is the set of transactions recovery will
    replay as committed.  Group-commit tests compare it against the ids the
    *clients* saw acknowledged: acknowledged ⊆ recovered proves no durable
    commit was lost; recovered ⊆ submitted proves no phantom commit was
    manufactured.
    """
    return {record.txn_id for record in log.records()
            if record.op is LogOp.COMMIT}


def database_digest(db) -> dict:
    """Reduce a database to a comparable value: rows + serialized documents.

    Two databases with equal digests hold the same base rows and byte-equal
    serializations of every stored XML document.
    """
    digest: dict = {}
    for (table, column), store in sorted(db.xml_stores.items()):
        for docid in store.docids():
            digest[("doc", table, column, docid)] = serialize(
                store.document(docid).events())
    for name, table in sorted(db.tables.items()):
        digest[("rows", name)] = sorted(
            repr(row) for _, row in table.scan_rids())
    return digest


def verify_value_indexes(db) -> None:
    """Assert every XPath value index matches a freshly rebuilt one.

    Rebuilds each index from its store's records and compares the complete
    sorted entry lists; raises ``AssertionError`` on any divergence.  Also
    checks every DocID index covers exactly the stored documents.
    """
    for name, index in db.value_indexes.items():
        ix_def = db.catalog.index(name)
        store = db.xml_stores[(ix_def.table, ix_def.spec["column"])]
        rebuilt = XPathValueIndex(index.definition, db.pool,
                                  db.catalog.names)
        rebuilt.attach(store)
        got = sorted((bytes(k), bytes(v)) for k, v in index.tree.scan())
        want = sorted((bytes(k), bytes(v)) for k, v in rebuilt.tree.scan())
        assert got == want, f"value index {name!r} diverges from its store"
    for table, docid_index in db.docid_indexes.items():
        indexed = {int.from_bytes(bytes(k), "big")
                   for k, _ in docid_index.scan()}
        stored: set[int] = set()
        for (tbl, _column), store in db.xml_stores.items():
            if tbl == table:
                stored.update(store.docids())
        assert indexed == stored, \
            f"DocID index of {table!r} does not cover its stores"


class CrashHarness:
    """Runs workloads to a crash point and simulates restart recovery."""

    def __init__(self, workdir: str, config: EngineConfig = DEFAULT_CONFIG,
                 stats: StatsRegistry | None = None,
                 trace: EventTrace | None = None) -> None:
        self.workdir = str(workdir)
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        #: Optional structured event trace (flight recorder): installed on
        #: the harness registry so the run's suspensions and injected
        #: faults are retained for the post-crash dump.
        self.trace = trace
        if trace is not None:
            trace.install(self.stats)
        os.makedirs(self.workdir, exist_ok=True)
        self.wal_path = os.path.join(self.workdir, "crash.wal")
        self.image_path = os.path.join(self.workdir, "crash.img")
        self.events_path = os.path.join(self.workdir, "crash_events.jsonl")

    def run(self, workload: Callable[[object], None],
            plan: Iterable[FaultSpec] = (), seed: int = 0) -> CrashOutcome:
        """Run ``workload`` against a fresh engine under ``plan``.

        The workload receives the :class:`~repro.core.engine.Database`; a
        :class:`SimulatedCrash` it lets propagate ends the run.  Whatever
        the crash left behind is persisted for :meth:`restart`.
        """
        from repro.core.engine import Database

        injector = FaultInjector(plan, seed=seed, stats=self.stats)
        db = Database(self.config, stats=self.stats, injector=injector)
        crash: SimulatedCrash | None = None
        try:
            workload(db)
        except SimulatedCrash as caught:
            crash = caught
        injector.disarm()  # post-crash: persist and inspect without faults
        db.log.save(self.wal_path)
        db.disk.save(self.image_path)
        return CrashOutcome(crash, db, self.wal_path, self.image_path)

    def tear_log_tail(self, drop_bytes: int) -> None:
        """Cut ``drop_bytes`` off the persisted WAL — a crash mid-append."""
        size = os.path.getsize(self.wal_path)
        with open(self.wal_path, "r+b") as fh:
            fh.truncate(max(0, size - drop_bytes))

    def load_log(self) -> LogManager:
        """Reload the persisted WAL (torn-tail tolerant)."""
        return LogManager.load(self.wal_path, stats=self.stats)

    def load_image(self, verify: bool = True) -> Disk:
        """Reload the persisted device image, verifying page checksums."""
        return Disk.load(self.image_path, stats=self.stats, verify=verify)

    def restart(self):
        """Simulate restart: reload the WAL and replay the committed log.

        With a trace installed, the last events before the crash are
        dumped to ``crash_events.jsonl`` first — the flight-recorder
        read-out a post-recovery investigation starts from (which fault
        fired, what the engine was suspended on around it).
        """
        from repro.core.engine import Database

        if self.trace is not None:
            self.dump_events()
        log = self.load_log()
        return Database.replay(log, self.config)

    def post_mortem(self, n: int = 64) -> list[dict]:
        """The newest ``n`` trace records as dicts ([] with no trace)."""
        if self.trace is None:
            return []
        return [record.to_dict() for record in self.trace.last(n)]

    def dump_events(self, n: int = 64) -> str | None:
        """Write the post-mortem records to ``crash_events.jsonl``."""
        records = self.post_mortem(n)
        if not records:
            return None
        with open(self.events_path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return self.events_path
