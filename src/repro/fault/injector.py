"""Deterministic fault plans and the injector that executes them.

A *fault plan* is a list of :class:`FaultSpec` entries built with the
:class:`FaultPlan` helpers.  Each spec triggers on the Nth occurrence of an
event class — page writes, page reads, or hits of a named crash point — so
a plan replays identically run after run; any randomness left open by a
spec (which bit to flip, where to tear a write) comes from a seeded RNG.

Crash points are plain strings fired by the components the injector is
threaded through:

``disk.write.mid`` / ``disk.write.post``
    inside / after every physical page write (``mid`` tears the page
    before crashing — the classic torn-write crash)
``wal.append.pre`` / ``wal.append.post``
    before / after any log record is hardened
``wal.commit.pre`` / ``wal.commit.post``
    before / after a COMMIT record specifically
``wal.checkpoint.post``
    after a CHECKPOINT record
``serve.request``
    inside each serving-layer request's transaction body (chaos mode:
    a ``fail_at`` spec here makes exactly one session's transaction fail
    mid-flight without touching the others)
``engine.*``
    workloads may fire their own points through :meth:`FaultInjector.hit`

Besides crashes, a point can host a *non-fatal* injected failure:
``FaultPlan.fail_at`` raises :class:`~repro.errors.FaultInjectionError`
(an ordinary engine error the transaction machinery aborts and reports)
on the Nth hit — the chaos-mode primitive for "this one request dies,
everyone else keeps serving".
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.core.stats import StatsRegistry, default_stats
from repro.errors import FaultInjectionError


class SimulatedCrash(BaseException):
    """A fault plan's crash point fired.

    Derives from :class:`BaseException` so that engine-level ``except
    ReproError``/``except Exception`` handlers cannot accidentally swallow a
    simulated power failure — only the crash harness catches it.
    """

    def __init__(self, point: str, hit: int) -> None:
        super().__init__(f"simulated crash at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``kind`` is one of ``fail_write``/``torn_write``/``flip_read``/``crash``/
    ``fail_point``; ``nth`` the 1-based occurrence of the matching event that
    triggers it.  ``point`` names the crash/failure point (``crash`` and
    ``fail_point``).  ``keep_bytes`` is how much of a torn write reaches the
    device (-1 = seeded random) and ``bit`` the absolute bit index a read
    flips (-1 = seeded random).
    """

    kind: str
    nth: int
    point: str = ""
    keep_bytes: int = -1
    bit: int = -1

    def __post_init__(self) -> None:
        if self.kind not in ("fail_write", "torn_write", "flip_read",
                             "crash", "fail_point"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.nth < 1:
            raise ValueError("fault occurrence numbers are 1-based")
        if self.kind in ("crash", "fail_point") and not self.point:
            raise ValueError(
                f"{self.kind} faults need a crash-point name")


class FaultPlan:
    """Constructors for the specs a plan is assembled from."""

    @staticmethod
    def fail_nth_write(n: int) -> FaultSpec:
        """The Nth physical page write raises ``FaultInjectionError``."""
        return FaultSpec("fail_write", n)

    @staticmethod
    def torn_nth_write(n: int, keep_bytes: int = -1) -> FaultSpec:
        """The Nth page write only partially reaches the device.

        The page's checksum records the *intended* image, so the next read
        of the page raises ``ChecksumError``.
        """
        return FaultSpec("torn_write", n, keep_bytes=keep_bytes)

    @staticmethod
    def flip_bit_on_read(n: int, bit: int = -1) -> FaultSpec:
        """The Nth page read finds a flipped bit in the stored image."""
        return FaultSpec("flip_read", n, bit=bit)

    @staticmethod
    def crash_at(point: str, hit: int = 1) -> FaultSpec:
        """Simulate a crash on the Nth hit of the named crash point."""
        return FaultSpec("crash", hit, point=point)

    @staticmethod
    def fail_at(point: str, hit: int = 1) -> FaultSpec:
        """Raise ``FaultInjectionError`` on the Nth hit of the named point.

        Unlike :meth:`crash_at` this is an *ordinary* engine error: the
        surrounding transaction aborts and the process lives on — the
        chaos-mode primitive for killing one session's work mid-flight
        while the rest of the server keeps running.
        """
        return FaultSpec("fail_point", hit, point=point)


@dataclass(frozen=True)
class WriteOutcome:
    """What the injector decided for one page write."""

    fail: bool = False
    keep_bytes: int | None = None  # None: write is intact


class FaultInjector:
    """Executes a fault plan against the storage stack.

    One injector is threaded through a single engine instance (its disk
    wrapper and log manager).  Event counters are global across the engine,
    so "the 3rd page write" means the 3rd write the *engine* performs, no
    matter which component issued it.
    """

    #: Declared resource capture (SHARD003): fault counters report to
    #: whichever registry the harness supplies.
    _shard_scoped_ = ("stats",)

    def __init__(self, plan: Iterable[FaultSpec] = (), seed: int = 0,
                 stats: StatsRegistry | None = None) -> None:
        self.plan = list(plan)
        self.rng = random.Random(seed)
        self.stats = default_stats(stats)
        self.writes_seen = 0
        self.reads_seen = 0
        self.point_hits: Counter[str] = Counter()
        #: journal of (kind, detail) pairs for every fault actually injected
        self.injected: list[tuple[str, str]] = []
        self.armed = True

    # -- lifecycle ---------------------------------------------------------

    def disarm(self) -> None:
        """Stop injecting (post-crash inspection / recovery phase)."""
        self.armed = False

    def arm(self) -> None:
        self.armed = True

    def _record(self, kind: str, detail: str) -> None:
        self.injected.append((kind, detail))
        self.stats.add("fault.injected")
        # Injected faults are PERFORMANCE trace events (the IFCID-style
        # "something abnormal happened here" record) so a crash post-mortem
        # can line the fault up against the suspensions around it.
        events = getattr(self.stats, "events", None)
        if events is not None:
            events.performance("fault." + kind, detail=detail)

    def _active(self, kind: str, count: int) -> FaultSpec | None:
        if not self.armed:
            return None
        for spec in self.plan:
            if spec.kind == kind and spec.nth == count:
                return spec
        return None

    # -- event sinks -------------------------------------------------------

    def hit(self, point: str) -> None:
        """Fire crash point ``point``.

        Raises :class:`SimulatedCrash` when the plan says this hit kills
        the process, or :class:`~repro.errors.FaultInjectionError` for a
        non-fatal ``fail_at`` spec (chaos mode).
        """
        if not self.armed:
            return
        self.point_hits[point] += 1
        count = self.point_hits[point]
        for spec in self.plan:
            if spec.point != point or spec.nth != count:
                continue
            if spec.kind == "crash":
                self._record("crash", f"{point}#{count}")
                self.stats.add("fault.crashes")
                raise SimulatedCrash(point, count)
            if spec.kind == "fail_point":
                self._record("fail_point", f"{point}#{count}")
                raise FaultInjectionError(
                    f"injected failure at {point!r} (hit {count})")

    def on_write(self, page_id: int, data: bytes) -> WriteOutcome:
        """Decide the fate of one physical page write."""
        if not self.armed:
            return WriteOutcome()
        self.writes_seen += 1
        spec = self._active("fail_write", self.writes_seen)
        if spec is not None:
            self._record("fail_write", f"page {page_id}")
            return WriteOutcome(fail=True)
        spec = self._active("torn_write", self.writes_seen)
        if spec is not None:
            keep = spec.keep_bytes
            if keep < 0:
                keep = self.rng.randrange(1, max(2, len(data)))
            keep = min(keep, len(data))
            self._record("torn_write", f"page {page_id} keep {keep}")
            return WriteOutcome(keep_bytes=keep)
        return WriteOutcome()

    def on_read(self, page_id: int, page_size: int) -> int | None:
        """Bit to flip in the stored image before this read, if any."""
        if not self.armed:
            return None
        self.reads_seen += 1
        spec = self._active("flip_read", self.reads_seen)
        if spec is None:
            return None
        bit = spec.bit
        if bit < 0:
            bit = self.rng.randrange(page_size * 8)
        bit = bit % (page_size * 8)
        self._record("flip_read", f"page {page_id} bit {bit}")
        return bit
