"""Fault injection and crash-recovery testing.

The paper's premise (§2) is that a native XML engine inherits *mature*
relational infrastructure — logging, backup and recovery reused unchanged.
That claim is only credible if the storage stack actually survives torn
writes, bit rot and crashes, so this package provides the machinery to
prove it:

* :class:`~repro.fault.injector.FaultInjector` — deterministic, seedable
  fault plans (fail the Nth page write, torn write, bit flip on read,
  crash at a named point).
* :class:`~repro.fault.disk.FaultyDisk` — a
  :class:`~repro.rdb.storage.Disk`-interface wrapper that applies a plan.
* :class:`~repro.fault.harness.CrashHarness` — runs an engine workload to
  a crash point, simulates a restart from the persisted WAL and device
  image, and checks the recovered database equals the committed prefix.
"""

from repro.fault.disk import FaultyDisk
from repro.fault.harness import (CrashHarness, CrashOutcome, database_digest,
                                 recovered_commit_txns, verify_value_indexes)
from repro.fault.injector import (FaultInjector, FaultPlan, FaultSpec,
                                  SimulatedCrash)

__all__ = [
    "CrashHarness",
    "CrashOutcome",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultyDisk",
    "SimulatedCrash",
    "database_digest",
    "recovered_commit_txns",
    "verify_value_indexes",
]
