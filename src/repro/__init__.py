"""System R/X reproduction: a native XML database engine on relational
infrastructure.

Public API highlights:

* :class:`Database` — the engine facade: tables, XML columns, XPath value
  indexes, XPath queries, schema registration, recovery.
* :class:`SqlSession` — the SQL/XML statement surface.
* :func:`parse_xpath` / :func:`evaluate_xpath` — standalone XPath parsing and
  QuickXScan streaming evaluation over any event source.
* :func:`parse_xml` / :func:`serialize_xml` — the XML parser (buffered token
  streams) and serializer.
* :class:`XmlStore` — the native XML storage layer, usable without the
  engine facade.
"""

from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.engine import Database, XPathResult
from repro.core.stats import StatsRegistry
from repro.lang.parser import parse_xpath
from repro.query.plan import AccessMethod
from repro.query.sqlxml import SqlSession
from repro.xdm.parser import parse as parse_xml
from repro.xdm.serializer import serialize as serialize_xml
from repro.xmlstore.store import XmlStore
from repro.xpath.quickxscan import evaluate as evaluate_xpath

__version__ = "1.0.0"

__all__ = [
    "AccessMethod",
    "DEFAULT_CONFIG",
    "Database",
    "EngineConfig",
    "SqlSession",
    "StatsRegistry",
    "XPathResult",
    "XmlStore",
    "evaluate_xpath",
    "parse_xml",
    "parse_xpath",
    "serialize_xml",
    "__version__",
]
