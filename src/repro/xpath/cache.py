"""LRU caching of XPath parsing and query-tree compilation.

Hot query paths repeat: every :meth:`Database.xpath` call re-parses its path
text and every :meth:`Executor.execute` recompiles the plan's location path,
even though both are pure functions of their inputs (the compiled
:class:`~repro.xpath.qtree.QueryTree` carries no per-run state — all
evaluation state lives in :meth:`QuickXScan.run` locals).  Two small LRU
caches remove that work:

* :func:`cached_parse` — text (+ namespace bindings) → normalized AST;
* :func:`cached_compile` — location-path AST → compiled query tree, keyed
  structurally (dataclass ``repr`` is a faithful structural rendering,
  including resolved namespace URIs).

Cache traffic reports through the usual counters (``xpath.parse_hits`` /
``xpath.parse_misses`` / ``xpath.compile_hits`` / ``xpath.compile_misses``)
so EXPLAIN ANALYZE and benchmarks can see recompilation cost disappear.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.stats import StatsRegistry, default_stats
from repro.lang import ast
from repro.lang.parser import parse_xpath
from repro.xpath.qtree import QueryTree, compile_query

#: Entries kept per cache; small because keys are whole path renderings.
CACHE_SIZE = 256

_parse_cache: OrderedDict[tuple, ast.Expr] = OrderedDict()
_compile_cache: OrderedDict[tuple, QueryTree] = OrderedDict()


def _lookup(cache: OrderedDict, key: tuple) -> object | None:
    hit = cache.get(key)
    if hit is not None:
        cache.move_to_end(key)
    return hit


def _store(cache: OrderedDict, key: tuple, value: object) -> None:
    cache[key] = value
    if len(cache) > CACHE_SIZE:
        cache.popitem(last=False)


def cached_parse(text: str, namespaces: dict[str, str] | None = None,
                 stats: StatsRegistry | None = None) -> ast.Expr:
    """Parse and normalize ``text``, memoized on (text, bindings).

    Returns a shared AST object: callers must treat it as immutable (all
    engine consumers do — the planner and compiler build their own nodes).
    """
    stats = default_stats(stats)
    ns_key = None if not namespaces else tuple(sorted(namespaces.items()))
    key = (text, ns_key)
    hit = _lookup(_parse_cache, key)
    if hit is not None:
        stats.add("xpath.parse_hits")
        return hit
    stats.add("xpath.parse_misses")
    expr = parse_xpath(text, namespaces)
    _store(_parse_cache, key, expr)
    return expr


def cached_compile(path: ast.LocationPath, collect_result_values: bool = True,
                   stats: StatsRegistry | None = None) -> QueryTree:
    """Compile ``path`` into a query tree, memoized on its structure."""
    stats = default_stats(stats)
    key = (repr(path), collect_result_values)
    hit = _lookup(_compile_cache, key)
    if hit is not None:
        stats.add("xpath.compile_hits")
        return hit
    stats.add("xpath.compile_misses")
    query = compile_query(path, collect_result_values=collect_result_values)
    _store(_compile_cache, key, query)
    return query


def clear_caches() -> None:
    """Drop both caches (tests and memory-pressure hooks)."""
    _parse_cache.clear()
    _compile_cache.clear()


def cache_info() -> dict[str, int]:
    """Current cache occupancy."""
    return {"parse": len(_parse_cache), "compile": len(_compile_cache),
            "capacity": CACHE_SIZE}
