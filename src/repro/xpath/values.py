"""XPath value semantics: items, sequences, coercions, general comparisons.

QuickXScan's synthesized attributes are *sequence-valued* (§4.2): a matching
instance accumulates the sequence of nodes its predicate branches matched.
This module defines the item/sequence representation those attributes hold
and the XPath-1.0-style value semantics used to evaluate predicates:
effective boolean value, string/number coercion, and general (existential)
comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TypeError_


@dataclass(frozen=True)
class Item:
    """One node in a result/attribute sequence.

    ``order`` is a document-order key (the event ordinal at match time), so
    sequences can be emitted in document order even though the streaming
    algorithm finalizes nodes in end-tag order.  ``value`` is the node's XDM
    string value when the query needs it (``None`` otherwise).
    """

    order: int
    node_id: bytes | None
    kind: str               # "element" | "attribute" | "text" | ...
    local: str
    value: str | None

    def string_value(self) -> str:
        if self.value is None:
            raise TypeError_(
                f"string value of {self.local!r} was not collected "
                "(compiler flag missing)")
        return self.value


#: An XPath value: number, string, boolean, or a node sequence.
XValue = float | str | bool | list


def is_sequence(value: XValue) -> bool:
    return isinstance(value, list)


def effective_boolean(value: XValue) -> bool:
    """XPath effective boolean value."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0 and not math.isnan(value)
    if isinstance(value, str):
        return bool(value)
    return bool(value)  # node sequence: non-empty


def to_number(value: XValue) -> float:
    """XPath number() coercion (NaN on failure)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return float("nan")
    if isinstance(value, list):
        if not value:
            return float("nan")
        first = min(value, key=lambda item: item.order)
        return to_number(first.string_value())
    raise TypeError_(f"cannot convert {value!r} to a number")


def to_string(value: XValue) -> str:
    """XPath string() coercion."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e16:
            return str(int(value))
        return repr(value)
    if isinstance(value, str):
        return value
    if isinstance(value, list):
        if not value:
            return ""
        first = min(value, key=lambda item: item.order)
        return first.string_value()
    raise TypeError_(f"cannot convert {value!r} to a string")


def _atom_compare(op: str, left: float | str | bool,
                  right: float | str | bool) -> bool:
    if op in ("=", "!="):
        if isinstance(left, bool) or isinstance(right, bool):
            result = effective_boolean(left) == effective_boolean(right)
        elif isinstance(left, float) or isinstance(right, float):
            result = to_number(left) == to_number(right)
        else:
            result = left == right
        return result if op == "=" else not result
    # Ordering comparisons are numeric in XPath 1.0.
    ln, rn = to_number(left), to_number(right)
    if math.isnan(ln) or math.isnan(rn):
        return False
    if op == "<":
        return ln < rn
    if op == "<=":
        return ln <= rn
    if op == ">":
        return ln > rn
    if op == ">=":
        return ln >= rn
    raise TypeError_(f"unknown comparison operator {op!r}")


def general_compare(op: str, left: XValue, right: XValue) -> bool:
    """XPath general comparison: existential over node sequences."""
    if is_sequence(left) and is_sequence(right):
        return any(
            _atom_compare(op, li.string_value(), ri.string_value())
            for li in left for ri in right)
    if is_sequence(left):
        return any(_atom_compare(op, item.string_value(), right)  # type: ignore[arg-type]
                   for item in left)
    if is_sequence(right):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        return any(_atom_compare(flipped, item.string_value(), left)  # type: ignore[arg-type]
                   for item in right)
    return _atom_compare(op, left, right)  # type: ignore[arg-type]


def arithmetic(op: str, left: XValue, right: XValue) -> float:
    """XPath arithmetic (operands coerced with number())."""
    ln, rn = to_number(left), to_number(right)
    if op == "+":
        return ln + rn
    if op == "-":
        return ln - rn
    if op == "*":
        return ln * rn
    if op == "div":
        if rn == 0:
            return math.inf if ln > 0 else (-math.inf if ln < 0 else math.nan)
        return ln / rn
    if op == "mod":
        if rn == 0:
            return math.nan
        return math.fmod(ln, rn)
    raise TypeError_(f"unknown arithmetic operator {op!r}")
