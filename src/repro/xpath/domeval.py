"""DOM-based XPath evaluation: the materialize-then-navigate baseline.

The paper reports QuickXScan "orders of magnitude better than some DOM-based
algorithm" (§4.2).  This module is that comparison point: it builds the whole
in-memory XDM tree, then evaluates the path by recursive axis navigation with
node-set semantics.  Results are identical to QuickXScan's; the cost profile
(full materialization, repeated subtree walks for descendant axes and string
values) is what experiment E5b measures.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.stats import StatsRegistry, default_stats
from repro.errors import ExecutionError, XPathUnsupportedError
from repro.lang import ast
from repro.lang.parser import parse_xpath
from repro.xdm.events import SaxEvent, build_tree
from repro.xdm.nodes import (AttributeNode, CommentNode, DocumentNode,
                             ElementNode, Node,
                             ProcessingInstructionNode, TextNode)
from repro.xpath import functions
from repro.xpath.values import (Item, arithmetic, effective_boolean,
                                general_compare, to_number)


class DomEvaluator:
    """Navigational evaluator over a materialized tree."""

    #: Declared resource capture (SHARD003): evaluator-lifetime sink.
    _shard_scoped_ = ("stats",)

    def __init__(self, stats: StatsRegistry | None = None) -> None:
        self.stats = default_stats(stats)
        self._order: dict[int, int] = {}
        self._visits = 0

    # -- public API ------------------------------------------------------------

    def evaluate(self, path: ast.LocationPath | str,
                 source: Node | Iterable[SaxEvent],
                 namespaces: dict[str, str] | None = None) -> list[Item]:
        if isinstance(path, str):
            parsed = parse_xpath(path, namespaces)
            if not isinstance(parsed, ast.LocationPath):
                raise ExecutionError(f"{path!r} is not a location path")
            path = parsed
        if not isinstance(source, Node):
            source = build_tree(source)
        root = source if isinstance(source, DocumentNode) else source.root()
        self._order = {}
        for position, node in enumerate(root.descendants_or_self()):
            self._order[id(node)] = position
        self.stats.set_high_water("domeval.tree_nodes", len(self._order))
        result = self._eval_path(path, [root])
        self.stats.add("domeval.node_visits", self._visits)
        return [self._item(node) for node in result]

    # -- navigation ------------------------------------------------------------

    def _eval_path(self, path: ast.LocationPath,
                   context: list[Node]) -> list[Node]:
        current = context
        for step in path.steps:
            gathered: list[Node] = []
            seen: set[int] = set()
            for node in current:
                for candidate in self._axis(step, node):
                    if id(candidate) in seen:
                        continue
                    if not self._test(step, candidate):
                        continue
                    if all(self._predicate(p, candidate)
                           for p in step.predicates):
                        seen.add(id(candidate))
                        gathered.append(candidate)
            gathered.sort(key=lambda n: self._order[id(n)])
            current = gathered
        return current

    def _axis(self, step: ast.Step, node: Node) -> list[Node]:
        self._visits += 1
        axis = step.axis
        if axis is ast.Axis.CHILD:
            return node.children()
        if axis is ast.Axis.ATTRIBUTE:
            return list(node.attributes) if isinstance(node, ElementNode) else []
        if axis is ast.Axis.SELF:
            return [node]
        if axis is ast.Axis.DESCENDANT:
            out = []
            for child in node.children():
                out.extend(self._descendants_or_self(child))
            return out
        if axis is ast.Axis.DESCENDANT_OR_SELF:
            return self._descendants_or_self(node)
        if axis is ast.Axis.PARENT:
            return [node.parent] if node.parent is not None else []
        raise XPathUnsupportedError(f"axis {axis.value!r}")

    def _descendants_or_self(self, node: Node) -> list[Node]:
        out = [node]
        self._visits += 1
        if isinstance(node, ElementNode):
            out.extend(node.attributes)
        for child in node.children():
            out.extend(self._descendants_or_self(child))
        return out

    @staticmethod
    def _test(step: ast.Step, node: Node) -> bool:
        test = step.test
        if isinstance(test, ast.NameTest):
            if step.axis is ast.Axis.ATTRIBUTE:
                if not isinstance(node, AttributeNode):
                    return False
            elif not isinstance(node, ElementNode):
                return False
            return test.matches(node.local, node.uri)  # type: ignore[attr-defined]
        kind = test.kind
        if kind == "node":
            return not isinstance(node, AttributeNode) or \
                step.axis is ast.Axis.ATTRIBUTE
        if kind == "text":
            return isinstance(node, TextNode)
        if kind == "comment":
            return isinstance(node, CommentNode)
        if kind == "processing-instruction":
            if not isinstance(node, ProcessingInstructionNode):
                return False
            return test.target is None or node.target == test.target
        raise XPathUnsupportedError(f"kind test {kind}()")

    # -- predicates -------------------------------------------------------------

    def _predicate(self, expr: ast.Expr, node: Node) -> bool:
        return effective_boolean(self._eval_expr(expr, node))

    def _eval_expr(self, expr: ast.Expr, node: Node):
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "and":
                return (self._predicate(expr.left, node)
                        and self._predicate(expr.right, node))
            if expr.op == "or":
                return (self._predicate(expr.left, node)
                        or self._predicate(expr.right, node))
            if expr.op in ("=", "!=", "<", "<=", ">", ">="):
                return general_compare(expr.op,
                                       self._eval_expr(expr.left, node),
                                       self._eval_expr(expr.right, node))
            return arithmetic(expr.op, self._eval_expr(expr.left, node),
                              self._eval_expr(expr.right, node))
        if isinstance(expr, ast.UnaryOp):
            return -to_number(self._eval_expr(expr.operand, node))
        if isinstance(expr, ast.FunctionCall):
            args = [self._eval_expr(arg, node) for arg in expr.args]
            return functions.call(expr.name, args)
        if isinstance(expr, ast.LocationPath):
            if expr.absolute:
                raise XPathUnsupportedError(
                    "absolute paths inside predicates are not supported")
            return [self._item(n) for n in self._eval_path(expr, [node])]
        raise ExecutionError(f"cannot evaluate {expr!r}")

    # -- items -------------------------------------------------------------------

    def _item(self, node: Node) -> Item:
        if isinstance(node, ElementNode):
            kind, local = "element", node.local
        elif isinstance(node, AttributeNode):
            kind, local = "attribute", node.local
        elif isinstance(node, TextNode):
            kind, local = "text", ""
        elif isinstance(node, CommentNode):
            kind, local = "comment", ""
        elif isinstance(node, ProcessingInstructionNode):
            kind, local = "processing-instruction", node.target
        else:
            kind, local = "document", ""
        return Item(self._order[id(node)], node.node_id, kind, local,
                    node.string_value())


def evaluate_dom(path: ast.LocationPath | str,
                 source: Node | Iterable[SaxEvent],
                 namespaces: dict[str, str] | None = None,
                 stats: StatsRegistry | None = None) -> list[Item]:
    """One-shot DOM-based evaluation."""
    return DomEvaluator(stats=stats).evaluate(path, source, namespaces)
