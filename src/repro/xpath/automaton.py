"""Naive streaming automaton baseline: active-state explosion (Fig. 7c).

The paper contrasts QuickXScan's stacks with "other streaming algorithms"
[17][26] whose active-state count "is potentially exponential (when a path
expression like //a//a//a matches with a document with recursively nested a
elements)".  This evaluator reproduces that behaviour faithfully: every
partial match is tracked as its own runtime instance and instances are never
merged, so recursive data multiplies them — experiment E5a plots the peak
instance count against QuickXScan's O(|Q|·r).

Only predicate-free linear paths are supported (the comparison workloads
need no more).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.stats import StatsRegistry, default_stats
from repro.errors import ExecutionError, XPathUnsupportedError
from repro.lang import ast
from repro.lang.parser import parse_xpath
from repro.xdm.events import EventKind, SaxEvent
from repro.xpath.values import Item


class _Instance:
    """One partial match: the next step to satisfy and where."""

    __slots__ = ("next_step", "min_depth", "exact")

    def __init__(self, next_step: int, min_depth: int, exact: bool) -> None:
        self.next_step = next_step
        self.min_depth = min_depth
        self.exact = exact


class NaiveStreamEvaluator:
    """Per-instance NFA evaluation without state merging."""

    #: Declared resource capture (SHARD003): evaluator-lifetime sink.
    _shard_scoped_ = ("stats",)

    def __init__(self, path: ast.LocationPath | str,
                 stats: StatsRegistry | None = None) -> None:
        self.stats = default_stats(stats)
        if isinstance(path, str):
            parsed = parse_xpath(path)
            if not isinstance(parsed, ast.LocationPath):
                raise ExecutionError(f"{path!r} is not a location path")
            path = parsed
        self.steps = self._compile(path)
        self.peak_instances = 0

    @staticmethod
    def _compile(path: ast.LocationPath) -> list[tuple[str, ast.NameTest]]:
        steps = []
        for step in path.steps:
            if step.predicates:
                raise XPathUnsupportedError(
                    "the naive automaton baseline supports predicate-free "
                    "paths only")
            if not isinstance(step.test, ast.NameTest):
                raise XPathUnsupportedError(
                    "the naive automaton baseline supports name tests only")
            if step.axis is ast.Axis.CHILD:
                steps.append(("child", step.test))
            elif step.axis is ast.Axis.DESCENDANT:
                steps.append(("descendant", step.test))
            elif step.axis is ast.Axis.ATTRIBUTE:
                steps.append(("attribute", step.test))
            else:
                raise XPathUnsupportedError(
                    f"axis {step.axis.value!r} in the automaton baseline")
        if not steps:
            raise XPathUnsupportedError("empty path")
        return steps

    def run(self, events: Iterable[SaxEvent]) -> list[Item]:
        steps = self.steps
        instances: list[_Instance] = [
            _Instance(0, 0, steps[0][0] == "child")]
        spawned_at_depth: list[list[_Instance]] = []
        matches: dict[object, Item] = {}
        depth = -1
        order = 0
        peak = 1

        def try_advance(instance: _Instance, node_depth: int, kind: str,
                        local: str, uri: str, node_id, value: str | None,
                        new_instances: list[_Instance]) -> None:
            nonlocal order
            axis, test = steps[instance.next_step]
            if axis == "attribute":
                if kind != "attribute":
                    return
            elif kind != "element":
                return
            if instance.exact and node_depth != instance.min_depth:
                return
            if not instance.exact and node_depth < instance.min_depth:
                return
            if not test.matches(local, uri):
                return
            following = instance.next_step + 1
            if following == len(steps):
                key = node_id if node_id is not None else order
                matches.setdefault(key, Item(order, node_id, kind, local,
                                             value))
                return
            next_axis = steps[following][0]
            new_instances.append(_Instance(
                following, node_depth + 1, next_axis == "child"))

        for event in events:
            order += 1
            if event.kind is EventKind.ELEM_START:
                depth += 1
                new_instances: list[_Instance] = []
                for instance in instances:
                    try_advance(instance, depth, "element", event.local,
                                event.uri, event.node_id, None, new_instances)
                instances.extend(new_instances)
                spawned_at_depth.append(new_instances)
                peak = max(peak, len(instances))
            elif event.kind is EventKind.ATTR:
                sink: list[_Instance] = []
                for instance in instances:
                    try_advance(instance, depth + 1, "attribute", event.local,
                                event.uri, event.node_id, event.value, sink)
                # Attribute steps are terminal in the supported subset;
                # anything spawned here could never match and is dropped.
            elif event.kind is EventKind.ELEM_END:
                dead = spawned_at_depth.pop()
                if dead:
                    dead_set = set(map(id, dead))
                    instances = [i for i in instances
                                 if id(i) not in dead_set]
                depth -= 1
        self.peak_instances = peak
        self.stats.set_high_water("automaton.peak_instances", peak)
        return sorted(matches.values(), key=lambda item: item.order)


def evaluate_naive(path: ast.LocationPath | str,
                   events: Iterable[SaxEvent],
                   stats: StatsRegistry | None = None) -> list[Item]:
    """One-shot naive-automaton evaluation."""
    return NaiveStreamEvaluator(path, stats=stats).run(events)
