"""QuickXScan: the streaming XPath evaluation algorithm (§4.2).

The paper's base access method: "it evaluates an XPath expression by one
pass scan of a document without help from extra indexes" with relational-scan
cost characteristics.  The implementation follows the paper's design:

* the query tree drives an attribute-grammar-style evaluation: the
  *inherited* attribute (does this document node match this query node?) is
  decided on the way down; *synthesized* sequence-valued attributes are
  accumulated on the way up;
* "a logical (horizontal) stack is associated with each query node to keep
  track of matching instances with transitivity, as in the Twig Stack
  algorithm";
* "only the stack top needs to be checked for matching a node, which reduces
  the number of active states ... from potentially exponential ... to the
  number of query nodes at maximum" for each nesting level — the worst-case
  number of live matching units is O(|Q|·r), where r is the document's
  recursion degree;
* matching instances carry an upward link to the deepest matching instance
  of the previous step; at pop time the instance's contribution propagates
  *upward* along that link, and its collected sequences propagate *sideways*
  to the enclosing instance of the same query node (Table 1's transitivity
  propagation).

One divergence from the paper, recorded in DESIGN.md: the unpublished
duplicate-free propagation rules for predicates ([31]) are replaced by
consumption-time de-duplication on document-order keys — same results, same
streaming/state bounds, slightly more work at predicate evaluation.

The evaluator consumes virtual SAX events, so it runs unchanged over parsed
token streams, persistent records, and constructed data (Fig. 8).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.stats import StatsRegistry, default_stats
from repro.errors import ExecutionError
from repro.lang.ast import LocationPath
from repro.xdm.events import EventKind, SaxEvent
from repro.xpath import functions
from repro.xpath.cache import cached_compile, cached_parse
from repro.xpath.qtree import (EdgeType, PBinary, PFunction, PLiteral,
                               PPathRef, PSelfRef, PUnary, QNode, QueryTree,
                               Target)
from repro.xpath.values import (Item, arithmetic, effective_boolean,
                                general_compare, to_number)


class MatchInstance:
    """A matching instance ("matching"): one (document node, query node)
    pair currently live on its query node's stack."""

    __slots__ = ("qnode", "depth", "order", "node_id", "kind", "local",
                 "value_parts", "seq", "link", "cidx")

    def __init__(self, qnode: QNode, depth: int, order: int,
                 node_id: bytes | None, kind: str, local: str,
                 link: "MatchInstance | None") -> None:
        self.qnode = qnode
        self.depth = depth
        self.order = order
        self.node_id = node_id
        self.kind = kind
        self.local = local
        self.value_parts: list[str] | None = \
            [] if qnode.need_value and kind == "element" else None
        self.seq: dict[int, list[Item]] = {}
        self.link = link
        #: Position in the run's live-collector list (swap-pop removal).
        self.cidx = -1

    def item(self, value: str | None) -> Item:
        return Item(self.order, self.node_id, self.kind, self.local, value)


def _dedup(seq: list[Item]) -> list[Item]:
    """Document-ordered, duplicate-free view of a sequence."""
    seen: set[int] = set()
    out: list[Item] = []
    for item in sorted(seq, key=lambda item: item.order):
        if item.order not in seen:
            seen.add(item.order)
            out.append(item)
    return out


class QuickXScan:
    """One-pass streaming evaluator for a compiled query tree."""

    #: Declared resource capture (SHARD003): evaluator-lifetime sink.
    _shard_scoped_ = ("stats",)

    def __init__(self, query: QueryTree,
                 stats: StatsRegistry | None = None) -> None:
        self.query = query
        self.stats = default_stats(stats)
        # Pre-split query nodes by what they can match.
        self._element_nodes = [q for q in query.nodes
                               if q.target in (Target.ELEMENT, Target.ANY)
                               and q.test is not None]
        self._leaf_nodes = {
            Target.ATTRIBUTE: [q for q in query.nodes
                               if q.target is Target.ATTRIBUTE],
            Target.TEXT: [q for q in query.nodes
                          if q.target in (Target.TEXT, Target.ANY)
                          and q.test is not None],
            Target.COMMENT: [q for q in query.nodes
                             if q.target in (Target.COMMENT, Target.ANY)
                             and q.test is not None],
            Target.PI: [q for q in query.nodes
                        if q.target in (Target.PI, Target.ANY)
                        and q.test is not None],
        }

    # -- public API ------------------------------------------------------------

    def run(self, events: Iterable[SaxEvent]) -> list[Item]:
        """Evaluate over one document's event stream; returns the result
        sequence in document order."""
        with self.stats.trace("xscan.run", qnodes=self.query.size) as span:
            result = self._run(events)
            if span is not None:
                span.set("rows", len(result))
            return result

    def _run(self, events: Iterable[SaxEvent]) -> list[Item]:
        stacks: list[list[MatchInstance]] = [[] for _ in self.query.nodes]
        collectors: list[MatchInstance] = []
        live_units = 0
        peak_units = 0
        matchings = 0
        order = 0
        depth = -1
        root_instance: MatchInstance | None = None
        stats = self.stats

        def push(qnode: QNode, node_id: bytes | None, kind: str,
                 local: str, link: MatchInstance | None) -> MatchInstance:
            nonlocal live_units, peak_units, matchings
            instance = MatchInstance(qnode, depth, order, node_id, kind,
                                     local, link)
            stacks[qnode.qid].append(instance)
            if instance.value_parts is not None:
                instance.cidx = len(collectors)
                collectors.append(instance)
            live_units += 1
            matchings += 1
            peak_units = max(peak_units, live_units)
            return instance

        def parent_link(qnode: QNode, node_depth: int
                        ) -> MatchInstance | None:
            """The deepest valid previous-step instance, or None.

            Stack depths increase strictly, so at most the top two entries
            need checking: the top may be an instance pushed for the *same*
            document node in this very event (same depth), in which case the
            deepest strict ancestor sits just below it.
            """
            assert qnode.parent is not None
            stack = stacks[qnode.parent.qid]
            limit = node_depth if qnode.edge is EdgeType.DESCENDANT_OR_SELF \
                else node_depth - 1
            for instance in reversed(stack):
                if instance.depth <= limit:
                    if qnode.edge is EdgeType.CHILD and \
                            instance.depth != node_depth - 1:
                        return None
                    return instance
            return None

        def finalize(instance: MatchInstance) -> None:
            nonlocal live_units
            live_units -= 1
            if instance.cidx >= 0:
                # O(1) removal: swap the last live collector into this
                # instance's slot (order among collectors is irrelevant —
                # each accumulates text independently).
                last = collectors.pop()
                if last is not instance:
                    collectors[instance.cidx] = last
                    last.cidx = instance.cidx
                instance.cidx = -1
            qnode = instance.qnode
            # Sideways propagation (transitivity, Table 1): collected
            # sequences of descendant-edge children flow to the enclosing
            # instance of the same query node.
            stack = stacks[qnode.qid]
            enclosing = stack[-1] if stack else None
            if enclosing is not None:
                for child in qnode.children:
                    if child.edge is EdgeType.CHILD:
                        continue
                    got = instance.seq.get(child.qid)
                    if got:
                        enclosing.seq.setdefault(child.qid, []).extend(got)
            # Predicate filtering.
            for predicate in qnode.predicates:
                if not effective_boolean(
                        self._eval_pexpr(predicate, instance)):
                    return
            # Upward propagation of this instance's contribution.
            if instance.link is None:
                return
            contribution = self._contribution(instance)
            if contribution:
                instance.link.seq.setdefault(qnode.qid, []).extend(contribution)

        def finalize_leaf(qnode: QNode, node_id: bytes | None, kind: str,
                          local: str, value: str,
                          link: MatchInstance) -> None:
            nonlocal matchings
            if qnode.path_child is not None:
                # An intermediate query node (e.g. an unreduced //) matched a
                # leaf document node: leaves have no subtree, so nothing can
                # match below — the contribution is empty.
                return
            matchings += 1
            # Leaf nodes (attributes/text/comments/PIs) have no subtree:
            # evaluate predicates (rare; must not contain paths) directly.
            if qnode.predicates:
                probe = MatchInstance(qnode, depth + 1, order, node_id, kind,
                                      local, link)
                probe.value_parts = [value]
                for predicate in qnode.predicates:
                    if not effective_boolean(
                            self._eval_pexpr(predicate, probe)):
                        return
            link.seq.setdefault(qnode.qid, []).append(
                Item(order, node_id, kind, local, value))

        for event in events:
            stats.add("xscan.events")
            order += 1
            kind = event.kind
            if kind is EventKind.DOC_START:
                root_instance = push(self.query.root, event.node_id,
                                     "document", "", None)
            elif kind is EventKind.ELEM_START:
                depth += 1
                for qnode in self._element_nodes:
                    if not qnode.matches_element(event.local, event.uri):
                        continue
                    link = parent_link(qnode, depth)
                    if link is None:
                        continue
                    push(qnode, event.node_id, "element", event.local, link)
            elif kind is EventKind.ELEM_END:
                # Children-first (reverse topological) pop order so upward
                # propagation reaches parent instances before they finalize.
                for qid in range(len(stacks) - 1, -1, -1):
                    stack = stacks[qid]
                    if stack and stack[-1].depth == depth and \
                            stack[-1].kind == "element":
                        finalize(stack.pop())
                depth -= 1
            elif kind is EventKind.TEXT:
                for collector in collectors:
                    collector.value_parts.append(event.value)  # type: ignore[union-attr]
                for qnode in self._leaf_nodes[Target.TEXT]:
                    link = parent_link(qnode, depth + 1)
                    if link is not None and qnode.matches_leaf(
                            Target.TEXT, "", ""):
                        finalize_leaf(qnode, event.node_id, "text", "",
                                      event.value, link)
            elif kind is EventKind.ATTR:
                for qnode in self._leaf_nodes[Target.ATTRIBUTE]:
                    if not qnode.matches_leaf(Target.ATTRIBUTE, event.local,
                                              event.uri):
                        continue
                    link = parent_link(qnode, depth + 1)
                    if link is not None:
                        finalize_leaf(qnode, event.node_id, "attribute",
                                      event.local, event.value, link)
            elif kind is EventKind.COMMENT:
                for qnode in self._leaf_nodes[Target.COMMENT]:
                    link = parent_link(qnode, depth + 1)
                    if link is not None and qnode.matches_leaf(
                            Target.COMMENT, "", ""):
                        finalize_leaf(qnode, event.node_id, "comment", "",
                                      event.value, link)
            elif kind is EventKind.PI:
                for qnode in self._leaf_nodes[Target.PI]:
                    if not qnode.matches_leaf(Target.PI, event.local, ""):
                        continue
                    link = parent_link(qnode, depth + 1)
                    if link is not None:
                        finalize_leaf(qnode, event.node_id,
                                      "processing-instruction", event.local,
                                      event.value, link)
            elif kind is EventKind.DOC_END:
                if root_instance is None:
                    raise ExecutionError("document end before start")
                # NS events and unclosed elements would leave stacks dirty.
                for stack in stacks[1:]:
                    if stack:
                        raise ExecutionError("unbalanced event stream")
                stacks[0].pop()
                live_units -= 1
            # NS events carry no query-visible content here.

        stats.add("xscan.matchings", matchings)
        stats.set_high_water("xscan.peak_units", peak_units)
        # Distribution variants of the global totals: one observation per
        # scanned document, so the tail (the one huge document) is visible.
        stats.observe("xscan.doc_events", order)
        stats.observe("xscan.doc_peak_units", peak_units)
        if root_instance is None:
            raise ExecutionError("event stream had no document")
        main = self.query.main_first
        if main is None:
            return [root_instance.item(None)]
        return _dedup(root_instance.seq.get(main.qid, []))

    # -- contributions and predicate evaluation ---------------------------------

    def _contribution(self, instance: MatchInstance) -> list[Item]:
        qnode = instance.qnode
        if qnode.path_child is None:
            value = "".join(instance.value_parts) \
                if instance.value_parts is not None else None
            return [instance.item(value)]
        return instance.seq.get(qnode.path_child.qid, [])

    def _eval_pexpr(self, expr, instance: MatchInstance):
        if isinstance(expr, PLiteral):
            return expr.value
        if isinstance(expr, PBinary):
            if expr.op == "and":
                return (effective_boolean(self._eval_pexpr(expr.left, instance))
                        and effective_boolean(
                            self._eval_pexpr(expr.right, instance)))
            if expr.op == "or":
                return (effective_boolean(self._eval_pexpr(expr.left, instance))
                        or effective_boolean(
                            self._eval_pexpr(expr.right, instance)))
            if expr.op in ("=", "!=", "<", "<=", ">", ">="):
                return general_compare(expr.op,
                                       self._eval_pexpr(expr.left, instance),
                                       self._eval_pexpr(expr.right, instance))
            return arithmetic(expr.op,
                              self._eval_pexpr(expr.left, instance),
                              self._eval_pexpr(expr.right, instance))
        if isinstance(expr, PUnary):
            return -to_number(self._eval_pexpr(expr.operand, instance))
        if isinstance(expr, PFunction):
            args = [self._eval_pexpr(arg, instance) for arg in expr.args]
            return functions.call(expr.name, args)
        if isinstance(expr, PPathRef):
            return _dedup(instance.seq.get(expr.branch.qid, []))
        if isinstance(expr, PSelfRef):
            value = "".join(instance.value_parts) \
                if instance.value_parts is not None else None
            return [instance.item(value)]
        raise ExecutionError(f"unknown predicate expression {expr!r}")


def evaluate(path: LocationPath | str, events: Iterable[SaxEvent],
             namespaces: dict[str, str] | None = None,
             stats: StatsRegistry | None = None,
             collect_result_values: bool = True) -> list[Item]:
    """Parse/compile (if needed) and run QuickXScan over an event stream.

    Parsing and compilation go through the LRU caches of
    :mod:`repro.xpath.cache`, so repeated evaluation of the same path only
    pays for the scan itself.
    """
    if isinstance(path, str):
        parsed = cached_parse(path, namespaces, stats=stats)
        if not isinstance(parsed, LocationPath):
            raise ExecutionError(f"{path!r} is not a location path")
        path = parsed
    query = cached_compile(path, collect_result_values=collect_result_values,
                           stats=stats)
    return QuickXScan(query, stats=stats).run(events)
