"""Core XPath function library.

The subset the engine's predicates support: existence/cardinality, string
and numeric functions.  Each function receives already-evaluated
:data:`~repro.xpath.values.XValue` arguments.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import TypeError_, XPathUnsupportedError
from repro.xpath.values import (XValue, effective_boolean, is_sequence,
                                to_number, to_string)


def _fn_count(seq: XValue) -> float:
    if not is_sequence(seq):
        raise TypeError_("count() requires a node sequence")
    return float(len(seq))


def _fn_exists(seq: XValue) -> bool:
    if not is_sequence(seq):
        raise TypeError_("exists() requires a node sequence")
    return bool(seq)


def _fn_empty(seq: XValue) -> bool:
    if not is_sequence(seq):
        raise TypeError_("empty() requires a node sequence")
    return not seq


def _fn_not(value: XValue) -> bool:
    return not effective_boolean(value)


def _fn_boolean(value: XValue) -> bool:
    return effective_boolean(value)


def _fn_true() -> bool:
    return True


def _fn_false() -> bool:
    return False


def _fn_string(value: XValue) -> str:
    return to_string(value)


def _fn_number(value: XValue) -> float:
    return to_number(value)


def _fn_contains(haystack: XValue, needle: XValue) -> bool:
    return to_string(needle) in to_string(haystack)


def _fn_starts_with(text: XValue, prefix: XValue) -> bool:
    return to_string(text).startswith(to_string(prefix))


def _fn_string_length(value: XValue) -> float:
    return float(len(to_string(value)))


def _fn_normalize_space(value: XValue) -> str:
    return " ".join(to_string(value).split())


def _fn_substring(value: XValue, start: XValue,
                  length: XValue | None = None) -> str:
    text = to_string(value)
    begin = round(to_number(start)) - 1
    if length is None:
        return text[max(begin, 0):]
    end = begin + round(to_number(length))
    return text[max(begin, 0):max(end, 0)]


def _fn_floor(value: XValue) -> float:
    return float(math.floor(to_number(value)))


def _fn_ceiling(value: XValue) -> float:
    return float(math.ceil(to_number(value)))


def _fn_round(value: XValue) -> float:
    number = to_number(value)
    if math.isnan(number):
        return number
    return float(math.floor(number + 0.5))


def _fn_sum(seq: XValue) -> float:
    if not is_sequence(seq):
        raise TypeError_("sum() requires a node sequence")
    return float(sum(to_number(item.string_value()) for item in seq))


_FUNCTIONS: dict[str, tuple[Callable[..., XValue], int, int]] = {
    # name -> (implementation, min arity, max arity)
    "count": (_fn_count, 1, 1),
    "exists": (_fn_exists, 1, 1),
    "empty": (_fn_empty, 1, 1),
    "not": (_fn_not, 1, 1),
    "boolean": (_fn_boolean, 1, 1),
    "true": (_fn_true, 0, 0),
    "false": (_fn_false, 0, 0),
    "string": (_fn_string, 1, 1),
    "number": (_fn_number, 1, 1),
    "contains": (_fn_contains, 2, 2),
    "starts-with": (_fn_starts_with, 2, 2),
    "string-length": (_fn_string_length, 1, 1),
    "normalize-space": (_fn_normalize_space, 1, 1),
    "substring": (_fn_substring, 2, 3),
    "floor": (_fn_floor, 1, 1),
    "ceiling": (_fn_ceiling, 1, 1),
    "round": (_fn_round, 1, 1),
    "sum": (_fn_sum, 1, 1),
}


def is_supported(name: str) -> bool:
    return name in _FUNCTIONS


def call(name: str, args: list[XValue]) -> XValue:
    """Invoke a core-library function."""
    spec = _FUNCTIONS.get(name)
    if spec is None:
        raise XPathUnsupportedError(f"function {name}() is not supported")
    fn, lo, hi = spec
    if not lo <= len(args) <= hi:
        raise TypeError_(
            f"{name}() takes {lo}..{hi} arguments, got {len(args)}")
    return fn(*args)


def value_needed(name: str, arg_index: int) -> bool:
    """Does argument ``arg_index`` of ``name`` need node string values?

    ``count``/``exists``/``empty`` and bare existence need no values, which
    lets the compiler skip text collection for those branches.
    """
    return name not in ("count", "exists", "empty")
