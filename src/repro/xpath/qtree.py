"""Query trees: the compiled form QuickXScan executes (Fig. 6a).

"Like many other XPath algorithms ... QuickXScan models a path expression
with a query tree": each step becomes a *query node* labeled by its name or
kind test, connected to its predecessor by a single-line edge (child axis) or
double-line edge (descendant axis); predicates hang additional branches off
their anchor query node.

Compilation also decides, per query node, whether matching instances must
collect their XDM string value (``need_value``) — only comparison/atomizing
contexts require it; pure existence tests (``[b]``, ``count(b)``) do not, a
big memory saver for the streaming evaluator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import XPathUnsupportedError
from repro.lang import ast
from repro.xpath import functions


class EdgeType(enum.Enum):
    """How a query node relates to its parent query node."""

    CHILD = "child"
    DESCENDANT = "descendant"
    DESCENDANT_OR_SELF = "descendant-or-self"


class Target(enum.Enum):
    """Which node kinds a query node can match."""

    ELEMENT = "element"
    ATTRIBUTE = "attribute"
    TEXT = "text"
    COMMENT = "comment"
    PI = "processing-instruction"
    ANY = "any"


# -- compiled predicate expressions -----------------------------------------

class PExpr:
    """Base class of compiled predicate expressions."""


@dataclass
class PBinary(PExpr):
    op: str
    left: PExpr
    right: PExpr


@dataclass
class PUnary(PExpr):
    op: str
    operand: PExpr


@dataclass
class PLiteral(PExpr):
    value: object


@dataclass
class PFunction(PExpr):
    name: str
    args: list[PExpr]


@dataclass
class PPathRef(PExpr):
    """A relative path inside a predicate: resolves to the anchor instance's
    collected sequence for the branch query node."""

    branch: "QNode"


@dataclass
class PSelfRef(PExpr):
    """``.`` inside a predicate: the anchor node itself."""


# -- query nodes ----------------------------------------------------------------

@dataclass
class QNode:
    """One node of the query tree."""

    qid: int
    edge: EdgeType
    target: Target
    test: ast.NameTest | ast.KindTest | None   # None for the root query node
    parent: "QNode | None" = None
    children: list["QNode"] = field(default_factory=list)
    #: The continuation of this node's own path (result direction for the
    #: main path; deeper steps for predicate branches).  None for leaves.
    path_child: "QNode | None" = None
    predicates: list[PExpr] = field(default_factory=list)
    need_value: bool = False

    def matches_element(self, local: str, uri: str) -> bool:
        if self.target not in (Target.ELEMENT, Target.ANY):
            return False
        if isinstance(self.test, ast.NameTest):
            return self.test.matches(local, uri)
        return True  # node() kind test (or the virtual root)

    def matches_leaf(self, kind: Target, local: str, uri: str) -> bool:
        """Match a text/comment/PI/attribute event."""
        if kind is Target.ATTRIBUTE:
            if self.target is not Target.ATTRIBUTE:
                return False
            assert isinstance(self.test, ast.NameTest)
            return self.test.matches(local, uri)
        if self.target is Target.ANY:
            return True
        if self.target is not kind:
            return False
        if isinstance(self.test, ast.KindTest) and self.test.target:
            return self.test.target == local  # PI target test
        return True

    def label(self) -> str:
        return str(self.test) if self.test is not None else "r"


class QueryTree:
    """The compiled query: a root query node plus bookkeeping."""

    def __init__(self, root: QNode, nodes: list[QNode],
                 result_node: QNode | None) -> None:
        self.root = root
        self.nodes = nodes        # topological (parents before children)
        self.result_node = result_node

    @property
    def size(self) -> int:
        """|Q|, the query-node count (complexity analyses, §4.2)."""
        return len(self.nodes)

    @property
    def main_first(self) -> QNode | None:
        """The first query node of the main path (None for ``/``)."""
        return self.root.children[0] if self.root.children else None


def _edge_for_axis(axis: ast.Axis) -> EdgeType:
    if axis is ast.Axis.CHILD or axis is ast.Axis.ATTRIBUTE:
        return EdgeType.CHILD
    if axis is ast.Axis.DESCENDANT:
        return EdgeType.DESCENDANT
    if axis is ast.Axis.DESCENDANT_OR_SELF:
        return EdgeType.DESCENDANT_OR_SELF
    raise XPathUnsupportedError(
        f"axis {axis.value!r} cannot appear in a compiled query tree")


def _target_for_step(step: ast.Step) -> Target:
    if step.axis is ast.Axis.ATTRIBUTE:
        return Target.ATTRIBUTE
    test = step.test
    if isinstance(test, ast.NameTest):
        return Target.ELEMENT
    kind = test.kind
    if kind == "node":
        return Target.ANY
    if kind == "text":
        return Target.TEXT
    if kind == "comment":
        return Target.COMMENT
    if kind == "processing-instruction":
        return Target.PI
    raise XPathUnsupportedError(f"kind test {kind}() is not supported")


class _Compiler:
    def __init__(self) -> None:
        self.nodes: list[QNode] = []

    def new_node(self, edge: EdgeType, target: Target, test,
                 parent: QNode | None) -> QNode:
        node = QNode(len(self.nodes), edge, target, test, parent)
        self.nodes.append(node)
        if parent is not None:
            parent.children.append(node)
        return node

    def compile_path_steps(self, steps: list[ast.Step], anchor: QNode,
                           collect_values: bool) -> QNode | None:
        """Attach a chain of steps under ``anchor``; returns the leaf."""
        current = anchor
        effective = list(steps)
        # Leading self::node() steps are identity (e.g. `.//t`).
        while effective and effective[0].axis is ast.Axis.SELF:
            head = effective[0]
            if not isinstance(head.test, ast.KindTest) or \
                    head.test.kind != "node" or head.predicates:
                raise XPathUnsupportedError(
                    f"self step {head} is not supported here")
            effective = effective[1:]
        if not effective:
            return None  # pure self path
        previous: QNode | None = None
        for step in effective:
            if step.axis is ast.Axis.SELF:
                raise XPathUnsupportedError(
                    "non-leading self steps are not supported")
            edge = _edge_for_axis(step.axis)
            target = _target_for_step(step)
            node = self.new_node(edge, target, step.test, current)
            for predicate in step.predicates:
                node.predicates.append(
                    self.compile_predicate(predicate, node))
            # path_child links chain-internal nodes only; the anchor may own
            # several branches and reads its sequences per branch root.
            if previous is not None:
                previous.path_child = node
            previous = node
            current = node
        if collect_values:
            current.need_value = True
        return current

    def compile_predicate(self, expr: ast.Expr, anchor: QNode) -> PExpr:
        return self._compile_expr(expr, anchor, value_needed=False)

    def _compile_expr(self, expr: ast.Expr, anchor: QNode,
                      value_needed: bool) -> PExpr:
        if isinstance(expr, ast.Literal):
            if isinstance(expr.value, float):
                return PLiteral(expr.value)
            return PLiteral(expr.value)
        if isinstance(expr, ast.BinaryOp):
            if expr.op in ("and", "or"):
                return PBinary(expr.op,
                               self._compile_expr(expr.left, anchor, False),
                               self._compile_expr(expr.right, anchor, False))
            # Comparisons and arithmetic need operand values.
            return PBinary(expr.op,
                           self._compile_expr(expr.left, anchor, True),
                           self._compile_expr(expr.right, anchor, True))
        if isinstance(expr, ast.UnaryOp):
            return PUnary(expr.op,
                          self._compile_expr(expr.operand, anchor, True))
        if isinstance(expr, ast.FunctionCall):
            if not functions.is_supported(expr.name):
                raise XPathUnsupportedError(
                    f"function {expr.name}() is not supported")
            args = [
                self._compile_expr(
                    arg, anchor,
                    functions.value_needed(expr.name, index))
                for index, arg in enumerate(expr.args)
            ]
            return PFunction(expr.name, args)
        if isinstance(expr, ast.LocationPath):
            if expr.absolute:
                raise XPathUnsupportedError(
                    "absolute paths inside predicates are not supported")
            leaf = self.compile_path_steps(expr.steps, anchor,
                                           collect_values=False)
            if leaf is None:
                if value_needed:
                    anchor.need_value = True
                return PSelfRef()
            if value_needed:
                leaf.need_value = True
            # The branch root is the first step's node under the anchor.
            branch = leaf
            while branch.parent is not anchor:
                assert branch.parent is not None
                branch = branch.parent
            return PPathRef(branch)
        raise XPathUnsupportedError(
            f"expression {expr!r} cannot be compiled")


def compile_query(path: ast.LocationPath,
                  collect_result_values: bool = True) -> QueryTree:
    """Compile a normalized location path into a query tree."""
    compiler = _Compiler()
    root = compiler.new_node(EdgeType.CHILD, Target.ANY, None, None)
    for step in path.steps:
        for predicate in step.predicates:
            if isinstance(predicate, ast.Literal) and \
                    isinstance(predicate.value, float):
                raise XPathUnsupportedError(
                    "positional predicates are not supported")
    leaf = compiler.compile_path_steps(path.steps, root,
                                       collect_values=collect_result_values)
    return QueryTree(root, compiler.nodes, leaf)
