"""Traversal of stored XML documents (§3.4).

"To traverse in document order a persistently stored XML document with a
given docid value, first the NodeID index is searched with (docid, 00) as the
key.  The root record can be identified.  The XMLData is then traversed.  If
a proxy node is encountered, its node ID is used to search the NodeID index
... Stacking has to be used during traversal."

The walker below is that algorithm: an explicit stack (no recursion) over
record spans, with proxies resolved through the NodeID index, yielding
virtual SAX events (Fig. 8's "persistent data" iterator).  Within a record,
element entries carry their subtree length, giving O(1) next-sibling skips;
:meth:`StoredDocument.find_node` exploits this to locate a node by ID while
*skipping* every subtree that cannot contain it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import DocumentNotFoundError, PackingError
from repro.xdm import nodeid
from repro.xdm.events import EventKind, SaxEvent
from repro.xmlstore import format as fmt

if TYPE_CHECKING:  # pragma: no cover
    from repro.xmlstore.store import XmlStore


class StoredDocument:
    """Read-side view of one stored document."""

    def __init__(self, store: "XmlStore", docid: int) -> None:
        self.store = store
        self.docid = docid

    # -- full-document streaming ------------------------------------------------

    def events(self) -> Iterator[SaxEvent]:
        """Document-order virtual SAX events for the whole document."""
        root_rid = self.store.node_index.probe(self.docid, nodeid.ROOT_ID)
        if root_rid is None:
            raise DocumentNotFoundError(f"no document with DocID {self.docid}")
        record = self.store.read_record(root_rid)
        header, body_start = fmt.decode_header(record)
        yield SaxEvent(EventKind.DOC_START, node_id=nodeid.ROOT_ID)
        yield from self._walk_span(record, body_start, len(record),
                                   header.context_id)
        yield SaxEvent(EventKind.DOC_END)

    # -- the stacking walker -----------------------------------------------------

    def _walk_span(self, record: bytes, start: int, end: int,
                   parent_abs: bytes) -> Iterator[SaxEvent]:
        names = self.store.names
        # Work items: ("span", buf, pos, end, parent_abs) | ("end", local, uri)
        stack: list[tuple] = [("span", record, start, end, parent_abs)]
        while stack:
            item = stack.pop()
            if item[0] == "end":
                yield SaxEvent(EventKind.ELEM_END, local=item[1], uri=item[2])
                continue
            _, buf, pos, span_end, parent = item
            if pos >= span_end:
                continue
            entry = fmt.parse_entry(buf, pos)
            # Continuation of this span resumes after the current entry.
            if entry.next_pos < span_end:
                stack.append(("span", buf, entry.next_pos, span_end, parent))
            if entry.kind == fmt.EntryKind.PROXY:
                child_record = self._resolve_proxy(entry.rel_id)
                child_header, child_start = fmt.decode_header(child_record)
                stack.append(("span", child_record, child_start,
                              len(child_record), child_header.context_id))
                continue
            abs_id = parent + entry.rel_id
            if entry.kind == fmt.EntryKind.ELEMENT:
                local, uri = names.name(entry.name_id)
                yield SaxEvent(EventKind.ELEM_START, local=local, uri=uri,
                               node_id=abs_id)
                stack.append(("end", local, uri))
                stack.append(("span", buf, entry.content_start,
                              entry.content_end, abs_id))
            elif entry.kind == fmt.EntryKind.TEXT:
                yield SaxEvent(EventKind.TEXT, value=entry.text, node_id=abs_id)
            elif entry.kind == fmt.EntryKind.ATTRIBUTE:
                local, uri = names.name(entry.name_id)
                yield SaxEvent(EventKind.ATTR, local=local, uri=uri,
                               value=entry.text, node_id=abs_id)
            elif entry.kind == fmt.EntryKind.NAMESPACE:
                yield SaxEvent(EventKind.NS, local=entry.target,
                               value=names.uri(entry.uri_id), node_id=abs_id)
            elif entry.kind == fmt.EntryKind.COMMENT:
                yield SaxEvent(EventKind.COMMENT, value=entry.text,
                               node_id=abs_id)
            elif entry.kind == fmt.EntryKind.PI:
                yield SaxEvent(EventKind.PI, local=entry.target,
                               value=entry.text, node_id=abs_id)
            else:  # pragma: no cover - parse_entry already rejects
                raise PackingError(f"unknown entry kind {entry.kind}")

    def _resolve_proxy(self, abs_id: bytes) -> bytes:
        rid = self.store.node_index.probe(self.docid, abs_id)
        if rid is None:
            raise PackingError(
                f"dangling proxy {nodeid.format_id(abs_id)} in DocID {self.docid}")
        return self.store.read_record(rid)

    # -- point access -------------------------------------------------------------

    def find_node(self, node_id: bytes
                  ) -> tuple[bytes, fmt.Entry, bytes]:
        """Locate ``node_id``: returns ``(record, entry, parent_abs_id)``.

        One NodeID-index probe fetches the record; the in-record descent
        skips whole subtrees whose ID range cannot contain the target.
        """
        rid = self.store.node_index.probe(self.docid, node_id)
        if rid is None:
            raise DocumentNotFoundError(
                f"node {nodeid.format_id(node_id)} not found in "
                f"DocID {self.docid}")
        record = self.store.read_record(rid)
        header, body_start = fmt.decode_header(record)
        pos, end, parent = body_start, len(record), header.context_id
        while True:
            found_next = False
            for entry in fmt.iter_entries(record, pos, end):
                if entry.kind == fmt.EntryKind.PROXY:
                    continue
                abs_id = parent + entry.rel_id
                if abs_id == node_id:
                    return record, entry, parent
                if entry.kind == fmt.EntryKind.ELEMENT and \
                        nodeid.is_ancestor(abs_id, node_id):
                    pos, end, parent = entry.content_start, entry.content_end, abs_id
                    found_next = True
                    break
                # else: next-sibling skip (subtree skipped in O(1))
            if not found_next:
                raise DocumentNotFoundError(
                    f"node {nodeid.format_id(node_id)} not present in its "
                    f"record (DocID {self.docid})")

    def node_events(self, node_id: bytes) -> Iterator[SaxEvent]:
        """Events for the subtree rooted at ``node_id``."""
        record, entry, parent = self.find_node(node_id)
        # The entry's own byte span: from its header start; parse_entry gave
        # next_pos and (for elements) the content span.  Rebuild a span that
        # covers exactly this entry by re-walking from its position.
        yield from self._walk_entry(record, entry, parent)

    def _walk_entry(self, record: bytes, entry: fmt.Entry,
                    parent_abs: bytes) -> Iterator[SaxEvent]:
        names = self.store.names
        abs_id = parent_abs + entry.rel_id
        if entry.kind == fmt.EntryKind.ELEMENT:
            local, uri = names.name(entry.name_id)
            yield SaxEvent(EventKind.ELEM_START, local=local, uri=uri,
                           node_id=abs_id)
            yield from self._walk_span(record, entry.content_start,
                                       entry.content_end, abs_id)
            yield SaxEvent(EventKind.ELEM_END, local=local, uri=uri)
        elif entry.kind == fmt.EntryKind.TEXT:
            yield SaxEvent(EventKind.TEXT, value=entry.text, node_id=abs_id)
        elif entry.kind == fmt.EntryKind.ATTRIBUTE:
            local, uri = names.name(entry.name_id)
            yield SaxEvent(EventKind.ATTR, local=local, uri=uri,
                           value=entry.text, node_id=abs_id)
        elif entry.kind == fmt.EntryKind.COMMENT:
            yield SaxEvent(EventKind.COMMENT, value=entry.text, node_id=abs_id)
        elif entry.kind == fmt.EntryKind.PI:
            yield SaxEvent(EventKind.PI, local=entry.target, value=entry.text,
                           node_id=abs_id)
        elif entry.kind == fmt.EntryKind.NAMESPACE:
            yield SaxEvent(EventKind.NS, local=entry.target,
                           value=names.uri(entry.uri_id), node_id=abs_id)
        else:  # pragma: no cover
            raise PackingError(f"unknown entry kind {entry.kind}")

    def node_string_value(self, node_id: bytes) -> str:
        """XDM string value of the node with ``node_id``."""
        parts = []
        events = self.node_events(node_id)
        first = next(events)
        if first.kind in (EventKind.TEXT, EventKind.COMMENT, EventKind.PI,
                          EventKind.ATTR, EventKind.NS):
            return first.value
        for event in events:
            if event.kind is EventKind.TEXT:
                parts.append(event.value)
        return "".join(parts)

    def ancestry(self, node_id: bytes) -> list[tuple[str, str]]:
        """Names of the ancestor elements of ``node_id``, root first.

        Served from one record fetch: the header's context path provides the
        out-of-record ancestors (the self-containment property, §3.1), and a
        single subtree-skipping descent collects the in-record ones.
        """
        rid = self.store.node_index.probe(self.docid, node_id)
        if rid is None:
            raise DocumentNotFoundError(
                f"node {nodeid.format_id(node_id)} not found")
        record = self.store.read_record(rid)
        header, body_start = fmt.decode_header(record)
        names = [self.store.names.name(name_id)
                 for name_id in header.context_path]
        # Descend to the node, collecting the element names passed through.
        pos, end, parent = body_start, len(record), header.context_id
        while True:
            found_next = False
            for entry in fmt.iter_entries(record, pos, end):
                if entry.kind == fmt.EntryKind.PROXY:
                    continue
                abs_id = parent + entry.rel_id
                if abs_id == node_id:
                    return names
                if entry.kind == fmt.EntryKind.ELEMENT and \
                        nodeid.is_ancestor(abs_id, node_id):
                    names.append(self.store.names.name(entry.name_id))
                    pos, end, parent = (entry.content_start,
                                        entry.content_end, abs_id)
                    found_next = True
                    break
            if not found_next:
                raise DocumentNotFoundError(
                    f"node {nodeid.format_id(node_id)} not present in its "
                    f"record (DocID {self.docid})")

    def in_scope_namespaces(self, node_id: bytes) -> dict[str, str]:
        """In-scope namespace bindings at ``node_id``'s record context."""
        rid = self.store.node_index.probe(self.docid, node_id)
        if rid is None:
            raise DocumentNotFoundError(
                f"node {nodeid.format_id(node_id)} not found")
        record = self.store.read_record(rid)
        header, _ = fmt.decode_header(record)
        return {prefix: self.store.names.uri(uri_id)
                for prefix, uri_id in header.namespaces}
