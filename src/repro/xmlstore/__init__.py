"""Subpackage of the System R/X reproduction."""
