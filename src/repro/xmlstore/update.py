"""Subdocument updates (§3.1's update analysis, §5.2's workload).

LOB storage would force whole-document rewrites; the native format supports
node-level updates by *record surgery*: decode the one record containing the
target node, splice the change, re-encode, and swap the record in place
(repointing NodeID-index entries if the record moves).  Only ``p·n`` bytes —
one record — are touched, which is exactly the update-cost term of the §3.1
analysis that experiment E3 measures.

New sibling IDs come from :func:`repro.xdm.nodeid.between`, so existing node
IDs never change ("stable upon update of the tree").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import PackingError, XmlError
from repro.xdm import nodeid
from repro.xdm.events import EventKind, SaxEvent
from repro.xmlstore import format as fmt
from repro.xmlstore.store import XmlStore


@dataclass
class MutEntry:
    """Mutable form of one packed-record entry."""

    kind: int
    rel_id: bytes            # absolute for PROXY
    name_id: int = 0
    text: str = ""
    target: str = ""
    uri_id: int = 0
    children: list["MutEntry"] = field(default_factory=list)


def decode_record(record: bytes) -> tuple[fmt.RecordHeader, list[MutEntry]]:
    """Decode a packed record into a mutable entry forest."""
    header, body_start = fmt.decode_header(record)

    def decode_span(start: int, end: int) -> list[MutEntry]:
        out = []
        for entry in fmt.iter_entries(record, start, end):
            mut = MutEntry(entry.kind, entry.rel_id, entry.name_id,
                           entry.text, entry.target, entry.uri_id)
            if entry.kind == fmt.EntryKind.ELEMENT:
                mut.children = decode_span(entry.content_start,
                                           entry.content_end)
            out.append(mut)
        return out

    return header, decode_span(body_start, len(record))


def encode_record(header: fmt.RecordHeader, entries: list[MutEntry]) -> bytes:
    """Re-encode a mutable entry forest into record bytes."""
    out = bytearray()
    fmt.encode_header(out, header)
    for entry in entries:
        out.extend(_encode_entry(entry))
    return bytes(out)


def _encode_entry(entry: MutEntry) -> bytes:
    if entry.kind == fmt.EntryKind.ELEMENT:
        content = b"".join(_encode_entry(c) for c in entry.children)
        return fmt.encode_element(entry.rel_id, entry.name_id,
                                  len(entry.children), content)
    if entry.kind == fmt.EntryKind.TEXT:
        return fmt.encode_text(entry.rel_id, entry.text)
    if entry.kind == fmt.EntryKind.ATTRIBUTE:
        return fmt.encode_attribute(entry.rel_id, entry.name_id, entry.text)
    if entry.kind == fmt.EntryKind.NAMESPACE:
        return fmt.encode_namespace(entry.rel_id, entry.target, entry.uri_id)
    if entry.kind == fmt.EntryKind.COMMENT:
        return fmt.encode_comment(entry.rel_id, entry.text)
    if entry.kind == fmt.EntryKind.PI:
        return fmt.encode_pi(entry.rel_id, entry.target, entry.text)
    if entry.kind == fmt.EntryKind.PROXY:
        return fmt.encode_proxy(entry.rel_id)
    raise PackingError(f"unknown entry kind {entry.kind}")


class XmlUpdater:
    """Node-level update operations on one XmlStore."""

    def __init__(self, store: XmlStore) -> None:
        self.store = store

    # -- record-surgery plumbing ------------------------------------------------

    def _locate(self, docid: int, node_id: bytes
                ) -> tuple[object, bytes, fmt.RecordHeader, list[MutEntry],
                           list[MutEntry], int, bytes]:
        """Find the record and the entry list position of ``node_id``.

        Returns ``(rid, record, header, forest, containing_list, index,
        parent_abs)``.
        """
        rid = self.store.node_index.probe(docid, node_id)
        if rid is None:
            raise XmlError(f"node {nodeid.format_id(node_id)} not found "
                           f"in DocID {docid}")
        record = self.store.read_record(rid)
        header, forest = decode_record(record)

        def search(entries: list[MutEntry], parent_abs: bytes):
            for index, entry in enumerate(entries):
                if entry.kind == fmt.EntryKind.PROXY:
                    continue
                abs_id = parent_abs + entry.rel_id
                if abs_id == node_id:
                    return entries, index, parent_abs
                if entry.kind == fmt.EntryKind.ELEMENT and \
                        nodeid.is_ancestor(abs_id, node_id):
                    return search(entry.children, abs_id)
            return None

        found = search(forest, header.context_id)
        if found is None:
            raise XmlError(f"node {nodeid.format_id(node_id)} not present "
                           f"in its record")
        containing, index, parent_abs = found
        return rid, record, header, forest, containing, index, parent_abs

    def _commit(self, docid: int, rid, header: fmt.RecordHeader,
                forest: list[MutEntry]) -> None:
        if not forest:
            raise PackingError("record surgery left an empty record")
        self.store.replace_record(docid, rid, encode_record(header, forest))

    # -- operations ------------------------------------------------------------------

    def replace_text(self, docid: int, node_id: bytes, new_text: str) -> None:
        """Replace the content of a text node or the value of an attribute."""
        rid, _record, header, forest, containing, index, _ = \
            self._locate(docid, node_id)
        entry = containing[index]
        if entry.kind not in (fmt.EntryKind.TEXT, fmt.EntryKind.ATTRIBUTE,
                              fmt.EntryKind.COMMENT, fmt.EntryKind.PI):
            raise XmlError("replace_text targets text/attribute/comment/PI nodes")
        entry.text = new_text
        self._commit(docid, rid, header, forest)

    def delete_node(self, docid: int, node_id: bytes) -> int:
        """Delete the subtree rooted at ``node_id``; returns nodes removed
        from the containing record's entry forest (proxied records cascade).
        """
        rid, _record, header, forest, containing, index, _ = \
            self._locate(docid, node_id)
        removed = containing.pop(index)
        # Cascade: packed-out parts of the removed subtree are whole records.
        for proxy_id in _collect_proxies(removed):
            self._delete_packed_subtree(docid, proxy_id)
        if forest:
            self._commit(docid, rid, header, forest)
        else:
            # The record became empty: drop it and its proxy in the parent.
            old_record = self.store.read_record(rid)  # type: ignore[arg-type]
            for observer in self.store.observers:
                observer.record_removed(docid, old_record, rid)  # type: ignore[arg-type]
            self.store.node_index.remove_record(docid, old_record, rid)  # type: ignore[arg-type]
            self.store.space.delete(rid)  # type: ignore[arg-type]
            self._remove_proxy(docid, header.context_id, node_id)
        return 1

    def _delete_packed_subtree(self, docid: int, first_id: bytes) -> None:
        rid = self.store.node_index.probe(docid, first_id)
        if rid is None:
            raise PackingError(f"dangling proxy {nodeid.format_id(first_id)}")
        record = self.store.read_record(rid)
        _header, forest = decode_record(record)
        for proxy_id in _collect_proxies_list(forest):
            self._delete_packed_subtree(docid, proxy_id)
        self.store.node_index.remove_record(docid, record, rid)
        for observer in self.store.observers:
            observer.record_removed(docid, record, rid)
        self.store.space.delete(rid)

    def _remove_proxy(self, docid: int, parent_abs: bytes,
                      packed_first_id: bytes) -> None:
        rid = self.store.node_index.probe(docid, parent_abs) \
            if parent_abs else self.store.node_index.probe(docid, b"")
        if rid is None:
            raise PackingError("cannot locate parent record for proxy removal")
        record = self.store.read_record(rid)
        header, forest = decode_record(record)

        def prune(entries: list[MutEntry]) -> bool:
            for index, entry in enumerate(entries):
                if entry.kind == fmt.EntryKind.PROXY and \
                        entry.rel_id == packed_first_id:
                    entries.pop(index)
                    return True
                if entry.kind == fmt.EntryKind.ELEMENT and prune(entry.children):
                    return True
            return False

        if not prune(forest):
            raise PackingError("proxy entry not found in parent record")
        self._commit(docid, rid, header, forest)

    def insert_subtree(self, docid: int, parent_id: bytes,
                       events: Iterable[SaxEvent],
                       before: bytes | None = None,
                       after: bytes | None = None) -> bytes:
        """Insert a new child subtree under ``parent_id``.

        ``events`` is an undecorated fragment stream (one top-level node).
        Position: before/after a given sibling ID, or appended at the end.
        Returns the new node's absolute ID.
        """
        if before is not None and after is not None:
            raise XmlError("give at most one of before/after")
        siblings = self.child_ids(docid, parent_id)
        if before is not None:
            pos = siblings.index(before)
            left = siblings[pos - 1] if pos > 0 else None
            right = before
        elif after is not None:
            pos = siblings.index(after)
            left = after
            right = siblings[pos + 1] if pos + 1 < len(siblings) else None
        else:
            left = siblings[-1] if siblings else None
            right = None
        new_id = nodeid.between(left, right, parent_id)

        # Choose the anchor record: the one holding the neighbour entry, or
        # the parent's record when the parent has no children yet.
        anchor_node = right if right is not None else left
        if anchor_node is not None:
            rid, _rec, header, forest, containing, index, parent_abs = \
                self._locate(docid, anchor_node)
            if parent_abs != parent_id:  # pragma: no cover - defensive
                raise PackingError("anchor sibling has unexpected parent")
            insert_at = index if right is not None else index + 1
        else:
            rid, _rec, header, forest, containing_parent, index, _ = \
                self._locate(docid, parent_id)
            parent_entry = containing_parent[index]
            containing = parent_entry.children
            # Skip inline namespace/attribute entries.
            insert_at = len(containing)
        chunk_forest = _build_subtree(events, new_id, parent_id, self.store)
        containing[insert_at:insert_at] = chunk_forest
        self._commit(docid, rid, header, forest)
        return new_id

    def child_ids(self, docid: int, parent_id: bytes) -> list[bytes]:
        """Absolute IDs of every child-level node of ``parent_id``.

        Includes attribute and namespace nodes — they share the per-level
        ordinal space, so sibling-ID arithmetic must see them.  Proxies are
        expanded through the NodeID index.
        """
        if parent_id == nodeid.ROOT_ID:
            rid = self.store.node_index.probe(docid, b"")
            if rid is None:
                raise XmlError(f"no document with DocID {docid}")
            record = self.store.read_record(rid)
            header, forest = decode_record(record)
            entries, parent_abs = forest, header.context_id
        else:
            _rid, record, _header, _forest, containing, index, _pa = \
                self._locate(docid, parent_id)
            entries, parent_abs = containing[index].children, parent_id

        out: list[bytes] = []

        def expand(entries: list[MutEntry], parent_abs: bytes) -> None:
            for entry in entries:
                if entry.kind == fmt.EntryKind.PROXY:
                    child_rid = self.store.node_index.probe(docid, entry.rel_id)
                    if child_rid is None:
                        raise PackingError("dangling proxy")
                    child_record = self.store.read_record(child_rid)
                    child_header, child_forest = decode_record(child_record)
                    expand(child_forest, child_header.context_id)
                else:
                    out.append(parent_abs + entry.rel_id)

        expand(entries, parent_abs)
        return out


def _collect_proxies(entry: MutEntry) -> list[bytes]:
    if entry.kind == fmt.EntryKind.PROXY:
        return [entry.rel_id]
    return _collect_proxies_list(entry.children)


def _collect_proxies_list(entries: list[MutEntry]) -> list[bytes]:
    out: list[bytes] = []
    for entry in entries:
        out.extend(_collect_proxies(entry))
    return out


def _build_subtree(events: Iterable[SaxEvent], root_id: bytes,
                   parent_id: bytes, store: XmlStore) -> list[MutEntry]:
    """Encode a fragment event stream as entries rooted at ``root_id``."""
    root_rel = root_id[len(parent_id):]
    forest: list[MutEntry] = []
    stack: list[tuple[MutEntry | None, list[MutEntry], bytes, int]] = \
        [(None, forest, parent_id, 1)]
    # Each frame: (element, its child list, its absolute id, next ordinal).
    first = True
    for event in events:
        if event.kind in (EventKind.DOC_START, EventKind.DOC_END):
            continue
        _elem, siblings, parent_abs, ordinal = stack[-1]
        if first:
            rel = root_rel
        else:
            rel = nodeid.relative_from_ordinal(ordinal)
        if event.kind is EventKind.ELEM_START:
            name_id = store.names.intern_name(event.local, event.uri)
            mut = MutEntry(fmt.EntryKind.ELEMENT, rel, name_id=name_id)
            siblings.append(mut)
            stack[-1] = (_elem, siblings, parent_abs, ordinal + 1)
            stack.append((mut, mut.children, parent_abs + rel, 1))
            first = False
        elif event.kind is EventKind.ELEM_END:
            if len(stack) == 1:
                raise XmlError("unbalanced fragment stream")
            stack.pop()
        elif event.kind is EventKind.ATTR:
            name_id = store.names.intern_name(event.local, event.uri)
            siblings.append(MutEntry(fmt.EntryKind.ATTRIBUTE, rel,
                                     name_id=name_id, text=event.value))
            stack[-1] = (_elem, siblings, parent_abs, ordinal + 1)
            first = False
        elif event.kind is EventKind.NS:
            uri_id = store.names.intern_uri(event.value)
            siblings.append(MutEntry(fmt.EntryKind.NAMESPACE, rel,
                                     target=event.local, uri_id=uri_id))
            stack[-1] = (_elem, siblings, parent_abs, ordinal + 1)
            first = False
        elif event.kind is EventKind.TEXT:
            siblings.append(MutEntry(fmt.EntryKind.TEXT, rel, text=event.value))
            stack[-1] = (_elem, siblings, parent_abs, ordinal + 1)
            first = False
        elif event.kind is EventKind.COMMENT:
            siblings.append(MutEntry(fmt.EntryKind.COMMENT, rel,
                                     text=event.value))
            stack[-1] = (_elem, siblings, parent_abs, ordinal + 1)
            first = False
        elif event.kind is EventKind.PI:
            siblings.append(MutEntry(fmt.EntryKind.PI, rel,
                                     target=event.local, text=event.value))
            stack[-1] = (_elem, siblings, parent_abs, ordinal + 1)
            first = False
    if len(stack) != 1:
        raise XmlError("unterminated fragment stream")
    if len(forest) != 1:
        raise XmlError(f"fragment must have exactly one top-level node, "
                       f"got {len(forest)}")
    return forest
