"""The NodeID index (§3.1, §3.4).

Maps logical node IDs to physical record IDs: "for each contiguous interval
of node IDs for nodes within a record in document order, only one entry is in
the node ID index, which is the upper end point of the node ID interval."
A probe for any (DocID, NodeID) therefore does a B+tree ``seek >=`` and lands
on the record containing that node — "the successful search ... is attributed
to the arrangement for the NodeID index keys by using the upper end points".

Keys are ``8-byte big-endian DocID || node-ID bytes`` so byte order equals
(DocID, document order).
"""

from __future__ import annotations

from typing import Iterator

from repro.analyze import sanitize as _sanitize
from repro.rdb.btree import BTree
from repro.rdb.tablespace import Rid
from repro.xmlstore import format as fmt

_DOCID_WIDTH = 8


def index_key(docid: int, node_id: bytes) -> bytes:
    """Encode a (DocID, NodeID) probe/entry key."""
    return docid.to_bytes(_DOCID_WIDTH, "big") + node_id


def split_key(key: bytes) -> tuple[int, bytes]:
    """Decode an index key back into (DocID, NodeID)."""
    return int.from_bytes(key[:_DOCID_WIDTH], "big"), key[_DOCID_WIDTH:]


class NodeIdIndex:
    """Interval-endpoint index over one XML table."""

    #: Declared resource capture (SHARD003): the interval index is a thin
    #: façade over one B+tree; it is shard-scoped with that tree.
    _shard_scoped_ = ("tree",)

    def __init__(self, tree: BTree) -> None:
        self.tree = tree
        _sanitize.inherit_shard(self, tree)

    @property
    def entry_count(self) -> int:
        return self.tree.entry_count

    def add_record(self, docid: int, record: bytes, rid: Rid) -> int:
        """Index every node-ID interval of ``record``; returns entries added."""
        intervals = fmt.record_intervals(record)
        for _low, high in intervals:
            self.tree.insert(index_key(docid, high), rid.to_bytes())
        return len(intervals)

    def remove_record(self, docid: int, record: bytes, rid: Rid) -> int:
        """Drop the interval entries of ``record``; returns entries removed."""
        removed = 0
        for _low, high in fmt.record_intervals(record):
            if self.tree.delete(index_key(docid, high), rid.to_bytes()):
                removed += 1
        return removed

    def probe(self, docid: int, node_id: bytes) -> Rid | None:
        """RID of the record containing ``node_id`` (§3.4 probe)."""
        entry = self.tree.seek_ge(index_key(docid, node_id))
        if entry is None:
            return None
        key, rid_bytes = entry
        found_docid, _ = split_key(key)
        if found_docid != docid:
            return None
        return Rid.from_bytes(rid_bytes)

    def entries_for_document(self, docid: int) -> Iterator[tuple[bytes, Rid]]:
        """All (upper-endpoint NodeID, RID) entries of one document."""
        prefix = docid.to_bytes(_DOCID_WIDTH, "big")
        for key, rid_bytes in self.tree.scan_prefix(prefix):
            yield key[_DOCID_WIDTH:], Rid.from_bytes(rid_bytes)

    def record_rids(self, docid: int) -> list[Rid]:
        """Distinct RIDs of a document's records, in clustering order."""
        seen: dict[Rid, None] = {}
        for _node_id, rid in self.entries_for_document(docid):
            seen.setdefault(rid, None)
        return list(seen)
