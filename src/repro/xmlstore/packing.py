"""Bottom-up streaming tree packer (§3.1-§3.2).

"Assuming the tree is too big for one record, we pack a subtree or a sequence
of subtrees into a separate record, in a bottom-up fashion.  A packed subtree
is represented using a proxy node in its containing record."  During tree
construction "no separate trees of in-memory format are built; rather,
tree-packed records are generated from the bottom up in a streaming fashion"
(§3.2).

Grouping is the paper's "simple size-based grouping method": a parent
accumulates completed child subtrees; once the pending run would exceed the
record-size limit it is spilled into its own record and replaced by a proxy.
Attributes and namespace declarations always stay inline with their element.

The packer consumes virtual SAX events that already carry Dewey node IDs
(see :func:`repro.xdm.events.assign_node_ids`) and produces encoded records.
Records are emitted bottom-up; the store sorts them by ``minNodeID`` before
writing so that physical placement follows the ``(DocID, minNodeID)``
clustering order.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import PackingError
from repro.xdm import nodeid
from repro.xdm.events import EventKind, SaxEvent
from repro.xdm.names import NameTable
from repro.xmlstore import format as fmt


class _OpenContainer:
    """State for one open element (or the document node)."""

    __slots__ = ("abs_id", "rel_id", "name_id", "scope", "inline",
                 "done", "pending", "pending_size", "pending_first",
                 "no_flush")

    def __init__(self, abs_id: bytes, rel_id: bytes, name_id: int,
                 scope: dict[str, int], no_flush: bool = False) -> None:
        self.abs_id = abs_id
        self.rel_id = rel_id
        self.name_id = name_id
        self.scope = scope                      # prefix -> uri id, in scope
        self.inline: list[bytes] = []           # NS + attribute entries
        self.done: list[bytes] = []             # proxies from earlier flushes
        self.pending: list[bytes] = []          # unflushed child entries
        self.pending_size = 0
        self.pending_first: bytes | None = None  # abs id of first pending node
        #: The document container never flushes: the root record must hold
        #: the top of the tree so the (DocID, 00) probe finds it (§3.4).
        self.no_flush = no_flush


class TreePacker:
    """Packs one document's event stream into records.

    Args:
        docid: Document ID stored in every record header.
        names: Database-wide name table (names are interned during packing).
        record_limit: Size-based grouping threshold in bytes (the packing
            factor knob of experiments E1-E3).
    """

    def __init__(self, docid: int, names: NameTable, record_limit: int) -> None:
        if record_limit < 16:
            raise PackingError(f"record limit {record_limit} is too small")
        self.docid = docid
        self.names = names
        self.record_limit = record_limit
        self.records: list[bytes] = []
        self.node_count = 0
        self._stack: list[_OpenContainer] = []
        self._path: list[int] = []  # element name ids from the root down
        self._finished = False

    # -- event feed ----------------------------------------------------------

    def feed(self, events: Iterable[SaxEvent]) -> "TreePacker":
        """Consume a full (node-ID-decorated) event stream."""
        for event in events:
            self.push(event)
        return self

    def push(self, event: SaxEvent) -> None:
        """Consume one event."""
        kind = event.kind
        if kind is EventKind.DOC_START:
            if self._stack:
                raise PackingError("document start inside a document")
            self._stack.append(_OpenContainer(nodeid.ROOT_ID, b"", 0,
                                              {"": 0}, no_flush=True))
        elif kind is EventKind.DOC_END:
            self._close_document()
        elif kind is EventKind.ELEM_START:
            self._require_id(event)
            parent = self._top()
            name_id = self.names.intern_name(event.local, event.uri)
            rel_id = event.node_id[len(parent.abs_id):]  # type: ignore[index]
            container = _OpenContainer(event.node_id, rel_id, name_id,
                                       dict(parent.scope))
            self._stack.append(container)
            self._path.append(name_id)
            self.node_count += 1
        elif kind is EventKind.ELEM_END:
            self._close_element()
        elif kind is EventKind.NS:
            self._require_id(event)
            top = self._top()
            uri_id = self.names.intern_uri(event.value)
            top.scope[event.local] = uri_id
            rel_id = event.node_id[len(top.abs_id):]  # type: ignore[index]
            top.inline.append(fmt.encode_namespace(rel_id, event.local, uri_id))
            self.node_count += 1
        elif kind is EventKind.ATTR:
            self._require_id(event)
            top = self._top()
            name_id = self.names.intern_name(event.local, event.uri)
            rel_id = event.node_id[len(top.abs_id):]  # type: ignore[index]
            top.inline.append(fmt.encode_attribute(rel_id, name_id, event.value))
            self.node_count += 1
        elif kind in (EventKind.TEXT, EventKind.COMMENT, EventKind.PI):
            self._require_id(event)
            top = self._top()
            rel_id = event.node_id[len(top.abs_id):]  # type: ignore[index]
            if kind is EventKind.TEXT:
                chunk = fmt.encode_text(rel_id, event.value)
            elif kind is EventKind.COMMENT:
                chunk = fmt.encode_comment(rel_id, event.value)
            else:
                chunk = fmt.encode_pi(rel_id, event.local, event.value)
            self._add_child(top, chunk, event.node_id)  # type: ignore[arg-type]
            self.node_count += 1
        else:  # pragma: no cover - exhaustive
            raise PackingError(f"unexpected event kind {kind}")

    def finish(self) -> list[bytes]:
        """Return all records, sorted by minNodeID (clustering order)."""
        if not self._finished:
            raise PackingError("event stream did not close the document")
        return sorted(self.records, key=fmt.record_min_node_id)

    # -- internals --------------------------------------------------------------

    def _top(self) -> _OpenContainer:
        if not self._stack:
            raise PackingError("event outside a document")
        return self._stack[-1]

    @staticmethod
    def _require_id(event: SaxEvent) -> None:
        if event.node_id is None:
            raise PackingError(
                f"packer requires node IDs on events (missing on {event!r}); "
                "wrap the stream with repro.xdm.events.assign_node_ids")

    def _add_child(self, parent: _OpenContainer, chunk: bytes,
                   first_abs: bytes) -> None:
        if not parent.no_flush and parent.pending and \
                parent.pending_size + len(chunk) > self.record_limit:
            self._flush_pending(parent)
        if not parent.pending:
            parent.pending_first = first_abs
        parent.pending.append(chunk)
        parent.pending_size += len(chunk)
        if not parent.no_flush and len(chunk) > self.record_limit:
            # A single oversized subtree gets its own record.
            self._flush_pending(parent)

    def _flush_pending(self, parent: _OpenContainer) -> None:
        if not parent.pending:
            return
        header = fmt.RecordHeader(
            docid=self.docid,
            context_id=parent.abs_id,
            context_path=tuple(self._path_to(parent)),
            namespaces=tuple(sorted(parent.scope.items())),
        )
        out = bytearray()
        fmt.encode_header(out, header)
        for chunk in parent.pending:
            out.extend(chunk)
        self.records.append(bytes(out))
        assert parent.pending_first is not None
        parent.done.append(fmt.encode_proxy(parent.pending_first))
        parent.pending = []
        parent.pending_size = 0
        parent.pending_first = None

    def _path_to(self, container: _OpenContainer) -> list[int]:
        # self._path covers every open element; the container is either the
        # document (path []) or an open element at some depth.
        for depth, open_elem in enumerate(self._stack):
            if open_elem is container:
                return self._path[:depth]  # document is stack[0] with no name
        raise PackingError("container is not open")  # pragma: no cover

    def _close_element(self) -> None:
        if len(self._stack) < 2:
            raise PackingError("element end without matching start")
        elem = self._stack.pop()
        self._path.pop()
        entries = elem.inline + elem.done + elem.pending
        content = b"".join(entries)
        chunk = fmt.encode_element(elem.rel_id, elem.name_id,
                                   len(entries), content)
        self._add_child(self._stack[-1], chunk, elem.abs_id)

    def _close_document(self) -> None:
        if len(self._stack) != 1:
            raise PackingError("document end with open elements")
        doc = self._stack.pop()
        if not doc.pending and not doc.done:
            raise PackingError("empty document")
        # The root record: context is the (implicit) document node.
        header = fmt.RecordHeader(self.docid, nodeid.ROOT_ID, (), ())
        out = bytearray()
        fmt.encode_header(out, header)
        for chunk in doc.done + doc.pending:
            out.extend(chunk)
        self.records.append(bytes(out))
        self._finished = True


def pack_document(docid: int, events: Iterable[SaxEvent], names: NameTable,
                  record_limit: int) -> tuple[list[bytes], int]:
    """Pack a decorated event stream; returns ``(records, node_count)``.

    Records come back sorted by minNodeID, ready for clustered insertion.
    """
    packer = TreePacker(docid, names, record_limit)
    packer.feed(events)
    return packer.finish(), packer.node_count
