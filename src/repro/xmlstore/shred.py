"""Baseline storage: one node per row ([28], the §3.1 comparison point).

The paper's storage analysis compares tree packing against "the relational
representation of one row per node (or edge)": each XDM node becomes one
relational record ``(DocID, NodeID, kind, nameID, value)``, with a node-ID
index entry per node (``k`` entries instead of ``≈ 2k/p``).  Traversal then
needs one index lookup + record fetch per node — the "one relational join
for each node" term ``(k-1)·t`` of the analysis.

Experiments E1-E3 run both stores over identical documents and report the
measured ratios against the paper's formulas.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import DocumentNotFoundError, XmlError
from repro.rdb import codec
from repro.rdb.btree import BTree
from repro.rdb.buffer import BufferPool
from repro.rdb.tablespace import Rid, TableSpace
from repro.xdm import nodeid
from repro.xdm.events import EventKind, SaxEvent, assign_node_ids
from repro.xdm.names import NameTable

_KIND_OF_EVENT = {
    EventKind.ELEM_START: 1,
    EventKind.TEXT: 2,
    EventKind.ATTR: 3,
    EventKind.NS: 4,
    EventKind.COMMENT: 5,
    EventKind.PI: 6,
}
_EVENT_OF_KIND = {v: k for k, v in _KIND_OF_EVENT.items()}


def _encode_row(node_id: bytes, kind: int, name_id: int, value: str) -> bytes:
    out = bytearray([kind])
    codec.write_bytes(out, node_id)
    codec.write_uvarint(out, name_id)
    codec.write_str(out, value)
    return bytes(out)


def _decode_row(row: bytes) -> tuple[int, bytes, int, str]:
    kind = row[0]
    node_id, pos = codec.read_bytes(row, 1)
    name_id, pos = codec.read_uvarint(row, pos)
    value, pos = codec.read_str(row, pos)
    return kind, node_id, name_id, value


class ShreddedStore:
    """One-node-per-row XML storage (the Tian-et-al.-style baseline)."""

    #: Declared resource capture (SHARD003): the shredded rows and their
    #: node index live in the pool the store was constructed over.
    _shard_scoped_ = ("pool",)

    def __init__(self, pool: BufferPool, names: NameTable,
                 name: str = "shred") -> None:
        self.pool = pool
        self.names = names
        self.name = name
        self.space = TableSpace(pool, name=f"shredts.{name}")
        self.node_index = BTree(pool, name=f"shredix.{name}", unique=True)
        self._doc_count = 0

    @property
    def document_count(self) -> int:
        return self._doc_count

    @staticmethod
    def _key(docid: int, node_id: bytes) -> bytes:
        return docid.to_bytes(8, "big") + node_id

    # -- insertion -----------------------------------------------------------

    def insert_document_events(self, docid: int,
                               events: Iterable[SaxEvent]) -> int:
        """Store a raw event stream; returns the number of node rows."""
        rows = 0
        for event in assign_node_ids(events):
            if event.kind in (EventKind.DOC_START, EventKind.DOC_END,
                              EventKind.ELEM_END):
                continue
            kind = _KIND_OF_EVENT[event.kind]
            if event.kind in (EventKind.ELEM_START, EventKind.ATTR):
                name_id = self.names.intern_name(event.local, event.uri)
            elif event.kind in (EventKind.NS, EventKind.PI):
                name_id = self.names.intern_name(event.local)
            else:
                name_id = 0
            assert event.node_id is not None
            row = _encode_row(event.node_id, kind, name_id, event.value)
            rid = self.space.insert(row)
            self.node_index.insert(self._key(docid, event.node_id),
                                   rid.to_bytes())
            rows += 1
        self._doc_count += 1
        return rows

    # -- traversal ("one join per node", §3.1) ----------------------------------

    def document_events(self, docid: int) -> Iterator[SaxEvent]:
        """Document-order events; every node costs an index probe + fetch."""
        prefix = docid.to_bytes(8, "big")
        open_elems: list[tuple[bytes, str, str]] = []  # (id, local, uri)
        emitted_any = False
        for key, rid_bytes in self.node_index.scan_prefix(prefix):
            node_id = key[8:]
            # The per-node "join": one record fetch per node row.
            row = self.space.read(Rid.from_bytes(rid_bytes))
            kind, stored_id, name_id, value = _decode_row(row)
            if not emitted_any:
                yield SaxEvent(EventKind.DOC_START, node_id=nodeid.ROOT_ID)
                emitted_any = True
            while open_elems and not nodeid.is_ancestor(open_elems[-1][0],
                                                        node_id):
                _id, local, uri = open_elems.pop()
                yield SaxEvent(EventKind.ELEM_END, local=local, uri=uri)
            event_kind = _EVENT_OF_KIND[kind]
            if event_kind is EventKind.ELEM_START:
                local, uri = self.names.name(name_id)
                yield SaxEvent(event_kind, local=local, uri=uri,
                               node_id=stored_id)
                open_elems.append((stored_id, local, uri))
            elif event_kind is EventKind.ATTR:
                local, uri = self.names.name(name_id)
                yield SaxEvent(event_kind, local=local, uri=uri, value=value,
                               node_id=stored_id)
            elif event_kind in (EventKind.NS, EventKind.PI):
                local, _ = self.names.name(name_id)
                yield SaxEvent(event_kind, local=local, value=value,
                               node_id=stored_id)
            else:
                yield SaxEvent(event_kind, value=value, node_id=stored_id)
        if not emitted_any:
            raise DocumentNotFoundError(f"no document with DocID {docid}")
        while open_elems:
            _id, local, uri = open_elems.pop()
            yield SaxEvent(EventKind.ELEM_END, local=local, uri=uri)
        yield SaxEvent(EventKind.DOC_END)

    # -- point update (the §3.1 update-cost comparison) ----------------------------

    def replace_text(self, docid: int, node_id: bytes, new_text: str) -> None:
        """Update one node's value; touches exactly one small record."""
        rid_bytes = self.node_index.search_one(self._key(docid, node_id))
        if rid_bytes is None:
            raise XmlError(f"node {nodeid.format_id(node_id)} not found")
        rid = Rid.from_bytes(rid_bytes)
        kind, stored_id, name_id, _old = _decode_row(self.space.read(rid))
        new_rid = self.space.update(
            rid, _encode_row(stored_id, kind, name_id, new_text))
        if new_rid != rid:
            self.node_index.delete(self._key(docid, node_id), rid.to_bytes())
            self.node_index.insert(self._key(docid, node_id),
                                   new_rid.to_bytes())

    # -- introspection ----------------------------------------------------------------

    def storage_footprint(self) -> dict[str, int]:
        return {
            "data_pages": self.space.page_count,
            "data_bytes": self.space.live_bytes(),
            "record_count": self.space.record_count,
            "nodeid_index_entries": self.node_index.entry_count,
            "nodeid_index_pages": self.node_index.page_count,
        }
