"""XmlStore: the internal XML table of one XML column (Fig. 2).

Each XML column owns an internal table ``(DocID, minNodeID, XMLData)`` in its
own table space, clustered by ``(DocID, minNodeID)``, plus a NodeID index.
Insertion is the paper's streaming pipeline (§3.2): parse → token stream →
node-ID assignment → bottom-up tree packing → records + "index keys for the
node ID index and XPath value indexes ... generated per record".

XPath value indexes hook in as *key generators*: callables invoked once per
record at insert/delete time — the paper's point that per-record key
generation "fits existing infrastructure very well".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Protocol

from repro.analyze import sanitize as _sanitize
from repro.core.stats import StatsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import ShardContext
from repro.errors import DocumentNotFoundError
from repro.rdb.btree import BTree
from repro.rdb.buffer import BufferPool
from repro.rdb.tablespace import Rid, TableSpace
from repro.xdm.events import SaxEvent, assign_node_ids
from repro.xdm.names import NameTable
from repro.xdm.parser import parse as parse_xml
from repro.xmlstore.node_index import NodeIdIndex
from repro.xmlstore.packing import pack_document
from repro.xmlstore.traversal import StoredDocument


class RecordObserver(Protocol):
    """Maintenance hook invoked per stored record (value indexes, §3.3)."""

    def record_added(self, docid: int, record: bytes, rid: Rid) -> None: ...

    def record_removed(self, docid: int, record: bytes, rid: Rid) -> None: ...


@dataclass(frozen=True)
class DocumentInfo:
    """Result of a document insertion."""

    docid: int
    node_count: int
    record_count: int
    index_entries: int
    data_bytes: int


class XmlStore:
    """Native XML storage for one XML column."""

    #: Declared resource capture (SHARD003): the store's records live on
    #: the buffer pool it was built over — shard-scoped with the store.
    _shard_scoped_ = ("pool",)

    def __init__(self, pool: BufferPool, names: NameTable,
                 record_limit: int = 1024, name: str = "xmlcol",
                 context: "ShardContext | None" = None) -> None:
        self.pool = pool
        self.names = names
        self.record_limit = record_limit
        self.name = name
        self.context = context
        _sanitize.inherit_shard(self, pool)
        self.space = TableSpace(pool, name=f"xmlts.{name}", context=context)
        self.node_index = NodeIdIndex(
            BTree(pool, name=f"nix.{name}", unique=False, context=context))
        self.observers: list[RecordObserver] = []
        self._doc_count = 0
        self._docids: dict[int, int] = {}  # docid -> node count

    @property
    def stats(self) -> StatsRegistry:
        return self.pool.stats

    @property
    def document_count(self) -> int:
        return self._doc_count

    # -- insertion -----------------------------------------------------------

    def insert_document_text(self, docid: int, text: str,
                             strip_whitespace: bool = False) -> DocumentInfo:
        """Parse and store an XML string under ``docid``."""
        stream = parse_xml(text, strip_whitespace=strip_whitespace)
        return self.insert_document_events(docid, stream.events())

    def insert_document_events(self, docid: int,
                               events: Iterable[SaxEvent]) -> DocumentInfo:
        """Store a raw (undecorated) event stream under ``docid``."""
        return self.insert_packed(docid, assign_node_ids(events))

    def insert_packed(self, docid: int,
                      decorated_events: Iterable[SaxEvent]) -> DocumentInfo:
        """Store an event stream that already carries node IDs."""
        _sanitize.check_shard_mix(self.stats, "XmlStore.insert_packed",
                                  self.pool, self.space, self.node_index)
        if self.node_index.probe(docid, b"") is not None:
            raise DocumentNotFoundError(
                f"DocID {docid} already exists in {self.name!r}")
        records, node_count = pack_document(
            docid, decorated_events, self.names, self.record_limit)
        index_entries = 0
        data_bytes = 0
        for record in records:  # already in (DocID, minNodeID) order
            rid = self.space.insert(record)
            index_entries += self.node_index.add_record(docid, record, rid)
            data_bytes += len(record)
            for observer in self.observers:
                observer.record_added(docid, record, rid)
        self._doc_count += 1
        self._docids[docid] = node_count
        return DocumentInfo(docid, node_count, len(records), index_entries,
                            data_bytes)

    # -- reads --------------------------------------------------------------------

    def read_record(self, rid: Rid) -> bytes:
        return self.space.read(rid)

    def document(self, docid: int) -> StoredDocument:
        """Read-side handle on a stored document."""
        return StoredDocument(self, docid)

    def document_exists(self, docid: int) -> bool:
        return self.node_index.probe(docid, b"") is not None

    def docids(self) -> list[int]:
        """All stored DocIDs in ascending order."""
        return sorted(self._docids)

    def average_nodes_per_document(self) -> float:
        """Mean node count per stored document (planner heuristic input)."""
        if not self._docids:
            return 0.0
        return sum(self._docids.values()) / len(self._docids)

    # -- deletion -----------------------------------------------------------------

    def delete_document(self, docid: int) -> int:
        """Remove a document; returns the number of records dropped."""
        _sanitize.check_shard_mix(self.stats, "XmlStore.delete_document",
                                  self.pool, self.space, self.node_index)
        rids = self.node_index.record_rids(docid)
        if not rids:
            raise DocumentNotFoundError(f"no document with DocID {docid}")
        for rid in rids:
            record = self.space.read(rid)
            for observer in self.observers:
                observer.record_removed(docid, record, rid)
            self.node_index.remove_record(docid, record, rid)
            self.space.delete(rid)
        self._doc_count -= 1
        self._docids.pop(docid, None)
        return len(rids)

    # -- record replacement (used by subdocument updates) ---------------------------

    def replace_record(self, docid: int, rid: Rid, new_record: bytes) -> Rid:
        """Swap a record's contents, repointing index entries if it moves."""
        old_record = self.space.read(rid)
        for observer in self.observers:
            observer.record_removed(docid, old_record, rid)
        self.node_index.remove_record(docid, old_record, rid)
        new_rid = self.space.update(rid, new_record)
        self.node_index.add_record(docid, new_record, new_rid)
        for observer in self.observers:
            observer.record_added(docid, new_record, new_rid)
        return new_rid

    # -- introspection ---------------------------------------------------------------

    def storage_footprint(self) -> dict[str, int]:
        """Sizes the experiments report (E1)."""
        return {
            "data_pages": self.space.page_count,
            "data_bytes": self.space.live_bytes(),
            "record_count": self.space.record_count,
            "nodeid_index_entries": self.node_index.entry_count,
            "nodeid_index_pages": self.node_index.tree.page_count,
        }


def record_observer(on_added: Callable[[int, bytes, Rid], None],
                    on_removed: Callable[[int, bytes, Rid], None]
                    ) -> RecordObserver:
    """Build an observer from two plain callables."""

    class _Observer:
        def record_added(self, docid: int, record: bytes, rid: Rid) -> None:
            on_added(docid, record, rid)

        def record_removed(self, docid: int, record: bytes, rid: Rid) -> None:
            on_removed(docid, record, rid)

    return _Observer()
