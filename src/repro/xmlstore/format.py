"""Packed-record binary format (Fig. 3).

One stored record ("XMLData") holds a single subtree or a sequence of
subtrees sharing a common parent — the *context node*.  The record layout is

* a **record header** with "the context path information, including the
  absolute node ID, the path from the root (a list of name IDs), and
  in-scope namespaces for the context node" (§3.1), plus the DocID;
* a **node stream**: structure nesting represents parent-child relationships;
  each element entry carries its relative node ID, name ID, the number of
  nested entries, and its encoded subtree length "to support efficient tree
  traversal by using the firstChild and nextSibling operations";
* **proxy nodes** stand for packed-out subtrees and carry only the (absolute)
  node ID of the first packed node — no physical links between records.

All names are integers from the database-wide name table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import PackingError
from repro.rdb import codec


class EntryKind:
    """Node-entry kind bytes in the packed stream."""

    ELEMENT = 1
    TEXT = 2
    ATTRIBUTE = 3
    NAMESPACE = 4
    COMMENT = 5
    PI = 6
    PROXY = 7


@dataclass(frozen=True)
class RecordHeader:
    """Decoded record header."""

    docid: int
    context_id: bytes              # absolute node ID of the context node
    context_path: tuple[int, ...]  # element name IDs from the root down
    namespaces: tuple[tuple[str, int], ...]  # in-scope (prefix, uri-id)


def encode_header(out: bytearray, header: RecordHeader) -> None:
    """Append the record header to ``out``."""
    codec.write_uvarint(out, header.docid)
    codec.write_bytes(out, header.context_id)
    codec.write_uvarint(out, len(header.context_path))
    for name_id in header.context_path:
        codec.write_uvarint(out, name_id)
    codec.write_uvarint(out, len(header.namespaces))
    for prefix, uri_id in header.namespaces:
        codec.write_str(out, prefix)
        codec.write_uvarint(out, uri_id)


def decode_header(buf: bytes | memoryview, pos: int = 0
                  ) -> tuple[RecordHeader, int]:
    """Read a record header; returns ``(header, node_stream_start)``."""
    docid, pos = codec.read_uvarint(buf, pos)
    context_id, pos = codec.read_bytes(buf, pos)
    n_path, pos = codec.read_uvarint(buf, pos)
    path = []
    for _ in range(n_path):
        name_id, pos = codec.read_uvarint(buf, pos)
        path.append(name_id)
    n_ns, pos = codec.read_uvarint(buf, pos)
    namespaces = []
    for _ in range(n_ns):
        prefix, pos = codec.read_str(buf, pos)
        uri_id, pos = codec.read_uvarint(buf, pos)
        namespaces.append((prefix, uri_id))
    return RecordHeader(docid, context_id, tuple(path), tuple(namespaces)), pos


# ---------------------------------------------------------------------------
# Entry encoders (bottom-up: children are already-encoded chunks)
# ---------------------------------------------------------------------------

def encode_element(rel_id: bytes, name_id: int, entry_count: int,
                   content: bytes) -> bytes:
    """Encode an element entry wrapping already-encoded nested entries."""
    out = bytearray([EntryKind.ELEMENT])
    codec.write_bytes(out, rel_id)
    codec.write_uvarint(out, name_id)
    codec.write_uvarint(out, entry_count)
    codec.write_bytes(out, content)  # length prefix == subtree length
    return bytes(out)


def encode_text(rel_id: bytes, text: str) -> bytes:
    out = bytearray([EntryKind.TEXT])
    codec.write_bytes(out, rel_id)
    codec.write_str(out, text)
    return bytes(out)


def encode_attribute(rel_id: bytes, name_id: int, value: str) -> bytes:
    out = bytearray([EntryKind.ATTRIBUTE])
    codec.write_bytes(out, rel_id)
    codec.write_uvarint(out, name_id)
    codec.write_str(out, value)
    return bytes(out)


def encode_namespace(rel_id: bytes, prefix: str, uri_id: int) -> bytes:
    out = bytearray([EntryKind.NAMESPACE])
    codec.write_bytes(out, rel_id)
    codec.write_str(out, prefix)
    codec.write_uvarint(out, uri_id)
    return bytes(out)


def encode_comment(rel_id: bytes, text: str) -> bytes:
    out = bytearray([EntryKind.COMMENT])
    codec.write_bytes(out, rel_id)
    codec.write_str(out, text)
    return bytes(out)


def encode_pi(rel_id: bytes, target: str, data: str) -> bytes:
    out = bytearray([EntryKind.PI])
    codec.write_bytes(out, rel_id)
    codec.write_str(out, target)
    codec.write_str(out, data)
    return bytes(out)


def encode_proxy(first_abs_id: bytes) -> bytes:
    """Encode a proxy for a packed-out record.

    The proxy stores the *absolute* node ID of the first node in the packed
    record; traversal probes the NodeID index with (DocID, this id) (§3.4).
    """
    out = bytearray([EntryKind.PROXY])
    codec.write_bytes(out, first_abs_id)
    return bytes(out)


# ---------------------------------------------------------------------------
# Entry decoding
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Entry:
    """One decoded node entry (children left as an encoded span)."""

    kind: int
    rel_id: bytes           # absolute id for PROXY entries
    name_id: int = 0        # ELEMENT / ATTRIBUTE
    text: str = ""          # TEXT / COMMENT / ATTRIBUTE value / PI data
    target: str = ""        # PI target / NAMESPACE prefix
    uri_id: int = 0         # NAMESPACE
    entry_count: int = 0    # ELEMENT: nested entry count
    content_start: int = 0  # ELEMENT: nested entries span
    content_end: int = 0
    next_pos: int = 0       # position just past this entry (nextSibling)


def parse_entry(buf: bytes | memoryview, pos: int) -> Entry:
    """Decode the entry at ``pos``.

    For elements the nested content is *not* decoded — ``content_start`` /
    ``content_end`` delimit it, giving O(1) firstChild and nextSibling
    (subtree skipping, §3.4).
    """
    kind = buf[pos]
    pos += 1
    if kind == EntryKind.ELEMENT:
        rel_id, pos = codec.read_bytes(buf, pos)
        name_id, pos = codec.read_uvarint(buf, pos)
        entry_count, pos = codec.read_uvarint(buf, pos)
        length, pos = codec.read_uvarint(buf, pos)
        return Entry(kind, rel_id, name_id=name_id, entry_count=entry_count,
                     content_start=pos, content_end=pos + length,
                     next_pos=pos + length)
    if kind == EntryKind.TEXT or kind == EntryKind.COMMENT:
        rel_id, pos = codec.read_bytes(buf, pos)
        text, pos = codec.read_str(buf, pos)
        return Entry(kind, rel_id, text=text, next_pos=pos)
    if kind == EntryKind.ATTRIBUTE:
        rel_id, pos = codec.read_bytes(buf, pos)
        name_id, pos = codec.read_uvarint(buf, pos)
        value, pos = codec.read_str(buf, pos)
        return Entry(kind, rel_id, name_id=name_id, text=value, next_pos=pos)
    if kind == EntryKind.NAMESPACE:
        rel_id, pos = codec.read_bytes(buf, pos)
        prefix, pos = codec.read_str(buf, pos)
        uri_id, pos = codec.read_uvarint(buf, pos)
        return Entry(kind, rel_id, target=prefix, uri_id=uri_id, next_pos=pos)
    if kind == EntryKind.PI:
        rel_id, pos = codec.read_bytes(buf, pos)
        target, pos = codec.read_str(buf, pos)
        data, pos = codec.read_str(buf, pos)
        return Entry(kind, rel_id, target=target, text=data, next_pos=pos)
    if kind == EntryKind.PROXY:
        abs_id, pos = codec.read_bytes(buf, pos)
        return Entry(kind, abs_id, next_pos=pos)
    raise PackingError(f"corrupt packed record (entry kind {kind})")


def iter_entries(buf: bytes | memoryview, start: int, end: int
                 ) -> Iterator[Entry]:
    """Yield sibling entries in ``buf[start:end]`` without descending."""
    pos = start
    while pos < end:
        entry = parse_entry(buf, pos)
        yield entry
        pos = entry.next_pos
    if pos != end:
        raise PackingError("packed record entries overrun their span")


def record_node_stream(record: bytes
                       ) -> Iterator[tuple[Entry, bytes, int]]:
    """Pre-order walk of a whole record.

    Yields ``(entry, absolute_node_id, depth)`` for every entry, including
    proxies (whose ``rel_id`` already is absolute).  Depth 0 is a top-level
    subtree root (a child of the context node).
    """
    header, body_start = decode_header(record)
    view = memoryview(record)

    def walk(start: int, end: int, parent_abs: bytes, depth: int
             ) -> Iterator[tuple[Entry, bytes, int]]:
        for entry in iter_entries(view, start, end):
            if entry.kind == EntryKind.PROXY:
                yield entry, entry.rel_id, depth
                continue
            abs_id = parent_abs + entry.rel_id
            yield entry, abs_id, depth
            if entry.kind == EntryKind.ELEMENT:
                yield from walk(entry.content_start, entry.content_end,
                                abs_id, depth + 1)

    yield from walk(body_start, len(record), header.context_id, 0)


def record_intervals(record: bytes) -> list[tuple[bytes, bytes]]:
    """Contiguous document-order node-ID intervals stored in this record.

    "For each contiguous interval of node IDs for nodes within a record in
    document order, only one entry is in the node ID index, which is the
    upper end point" (§3.1).  A proxy interrupts a run (the packed-out nodes
    sort strictly between their neighbours); returns ``(low, high)`` pairs.
    """
    intervals: list[tuple[bytes, bytes]] = []
    run_low: bytes | None = None
    run_high: bytes | None = None
    for entry, abs_id, _depth in record_node_stream(record):
        if entry.kind == EntryKind.PROXY:
            if run_low is not None:
                intervals.append((run_low, run_high))  # type: ignore[arg-type]
                run_low = run_high = None
            continue
        if run_low is None:
            run_low = abs_id
        run_high = abs_id
    if run_low is not None:
        intervals.append((run_low, run_high))  # type: ignore[arg-type]
    return intervals


def record_min_node_id(record: bytes) -> bytes:
    """The ``minNodeID`` clustering column value for this record."""
    for entry, abs_id, _depth in record_node_stream(record):
        if entry.kind != EntryKind.PROXY:
            return abs_id
    raise PackingError("packed record contains no nodes")
