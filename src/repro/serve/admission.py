"""Admission control and overload shedding for the serving layer.

The admission path is DB2 z/OS connection governance in miniature: a fixed
pool of worker threads is the set of *concurrency tokens* (CTHREAD — how
many requests may execute at once), a bounded FIFO queue is the *wait
queue* (queued allied threads), and everything beyond the queue is shed
immediately with :class:`~repro.errors.ServerOverloadedError` instead of
being allowed to pile up.  Shedding at the door keeps the tail bounded: a
request the server cannot start soon is cheaper to reject now — the client
still holds its timeout budget — than to time out after queueing.

On top of the structural bound sits the :class:`OverloadGuard`: a cheap
health check over live engine signals (:meth:`repro.obs.monitor.Monitor.
health`) that starts shedding *before* the queue fills when the engine
itself is the bottleneck — many lock waiters means admitted work would
mostly sit in lock-wait loops, and a collapsed buffer hit ratio means the
working set no longer fits and more concurrency only adds eviction churn.
The verdict is recomputed every ``serve_shed_check_interval`` admissions
and cached in between, so the guard costs one counter bump per request.
"""

from __future__ import annotations

import queue
from typing import TYPE_CHECKING

from repro.analyze import sanitize as _sanitize
from repro.errors import ServerOverloadedError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import EngineConfig
    from repro.core.stats import StatsRegistry
    from repro.obs.monitor import Monitor


class OverloadGuard:
    """Cached engine-health verdict driving pre-queue load shedding.

    ``check`` returns ``None`` (healthy) or a human-readable reason to
    shed.  The underlying signals are re-read only every ``interval``-th
    call (guarded by a lock so concurrent submitters cannot double-read);
    thresholds come from ``EngineConfig.serve_shed_*`` and are off by
    default, so a server without explicit shed configuration only sheds on
    queue overflow.
    """

    #: Declared resource capture (SHARD003): shed decisions are charged to
    #: the stats sink the guard was constructed over.
    _shard_scoped_ = ("_stats",)

    def __init__(self, monitor: "Monitor", config: "EngineConfig",
                 stats: "StatsRegistry") -> None:
        self._monitor = monitor
        self._stats = stats
        self._max_waiters = config.serve_shed_lock_waiters
        self._min_hit_ratio = config.serve_shed_min_hit_ratio
        self._min_touches = config.serve_shed_min_touches
        self._interval = max(1, config.serve_shed_check_interval)
        self._lock = _sanitize.TrackedLock("guard._lock")
        self._calls = 0
        self._verdict: str | None = None

    def check(self) -> str | None:
        """Current shed reason, re-evaluating health every Nth call."""
        with self._lock:
            if _sanitize.enabled():
                _sanitize.shared_access(self._stats, "OverloadGuard",
                                        "_verdict", write=True)
            self._calls += 1
            if self._calls % self._interval == 1 or self._interval == 1:
                self._verdict = self._evaluate()
            return self._verdict

    def _evaluate(self) -> str | None:
        if self._max_waiters <= 0 and self._min_hit_ratio <= 0:
            return None
        self._stats.add("serve.overload_checks")
        health = self._monitor.health()
        if 0 < self._max_waiters < health["lock_waiters"]:
            return (f"lock table congested: {health['lock_waiters']} "
                    f"waiting transactions (limit {self._max_waiters})")
        if self._min_hit_ratio > 0 and \
                health["buffer_touches"] >= self._min_touches and \
                health["buffer_hit_ratio"] < self._min_hit_ratio:
            return (f"buffer pool thrashing: hit ratio "
                    f"{health['buffer_hit_ratio']:.2%} below "
                    f"{self._min_hit_ratio:.2%}")
        return None


class AdmissionController:
    """Bounded wait queue plus overload guard in front of the worker pool.

    :meth:`admit` either enqueues the request or raises
    :class:`~repro.errors.ServerOverloadedError`; it never blocks the
    caller.  Counters tell the story: every attempt bumps
    ``serve.requests`` and ends in exactly one of ``serve.admitted``,
    ``serve.shed_overload`` (guard verdict) or ``serve.shed_queue_full``.
    """

    #: Declared resource capture (SHARD003): admission verdicts are charged
    #: to the stats sink the controller was constructed over.
    _shard_scoped_ = ("_stats",)

    def __init__(self, guard: OverloadGuard, queue_limit: int,
                 stats: "StatsRegistry") -> None:
        self.queue: queue.Queue = queue.Queue(maxsize=max(1, queue_limit))
        self.guard = guard
        self._stats = stats

    def admit(self, request: object) -> None:
        """Enqueue ``request`` or shed it (raises, never blocks)."""
        self._stats.add("serve.requests")
        reason = self.guard.check()
        if reason is not None:
            self._stats.add("serve.shed_overload")
            self._shed_event("overload", reason)
            raise ServerOverloadedError(
                f"request shed before any work started: {reason} — "
                f"safe to retry after backoff")
        try:
            self.queue.put_nowait(request)
        except queue.Full:
            self._stats.add("serve.shed_queue_full")
            self._shed_event("queue_full",
                             f"wait queue full ({self.queue.maxsize})")
            raise ServerOverloadedError(
                f"request shed before any work started: wait queue full "
                f"({self.queue.maxsize} waiting) — safe to retry after "
                f"backoff") from None
        self._stats.add("serve.admitted")

    def _shed_event(self, kind: str, reason: str) -> None:
        """PERFORMANCE trace record for a shed decision (if tracing on)."""
        events = getattr(self._stats, "events", None)
        if events is not None:
            events.performance("serve.shed", kind=kind, reason=reason)

    def depth(self) -> int:
        """Approximate number of queued (admitted, unstarted) requests."""
        return self.queue.qsize()
