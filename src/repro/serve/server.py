"""The multi-client server: worker pool, engine latch, and request lifecycle.

:class:`DatabaseServer` turns a single-threaded
:class:`~repro.core.engine.Database` into a multi-client service the way
DB2 for z/OS fronts its data engine with a thread pool: N worker threads
(the concurrency tokens), a bounded admission queue, and per-client
:class:`~repro.serve.session.Session` state.  The engine's internals stay
single-threaded — every engine entry happens under ``Database.latch`` —
and concurrency comes from *yielding* that latch exactly where a session
sleeps anyway:

* between lock-wait backoff steps (``TransactionManager.lock_wait_yield``),
  so the session *holding* the contested lock can run on another worker
  and release it; and
* during victim-retry backoff (``Database.backoff_sleep``), so a backoff
  never stalls unrelated sessions.

Those are the only waits in the engine and both are bounded (wait budget,
retry limit, request deadline), so workers can never deadlock against each
other: every request finishes with a result or a typed error.

The request lifecycle is fully accounted: ``serve.requests`` →
(``serve.admitted`` | ``serve.shed_*``) → exactly one of
``serve.completed`` / ``serve.failed`` / ``serve.deadline_expired``, with
``serve.queue_wait_us`` and ``serve.request_us`` histograms for the
latency report.  On drain the server rolls back abandoned session
transactions and (with sanitizers armed) cross-checks that per-transaction
accounting never over-charged the global counters — the invariant the
thread-local accounting sinks exist to protect.
"""

from __future__ import annotations

import itertools
import queue as _queue
import threading
import time
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Callable

from repro.analyze import sanitize as _sanitize
from repro.core.deadline import Deadline
from repro.errors import (DeadlineExceededError, DeadlockError,
                          FaultInjectionError, LockTimeoutError,
                          ServerClosedError, ServerOverloadedError)
from repro.fault.injector import SimulatedCrash
from repro.rdb.txn import TxnState
from repro.obs.monitor import Monitor
from repro.serve.admission import AdmissionController, OverloadGuard
from repro.serve.session import Session

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import Database


class _Request:
    """One admitted unit of work and its completion state."""

    __slots__ = ("session", "work", "label", "deadline", "submitted_ns",
                 "done", "result", "error")

    def __init__(self, session: Session | None,
                 work: Callable[["Database"], Any], label: str,
                 deadline: Deadline | None, submitted_ns: int) -> None:
        self.session = session
        self.work = work
        self.label = label
        self.deadline = deadline
        self.submitted_ns = submitted_ns
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None

    def finish(self, result: Any = None,
               error: BaseException | None = None) -> None:
        self.result = result
        self.error = error
        self.done.set()

    def wait(self) -> Any:
        """Block until a worker finishes this request; raise its error."""
        self.done.wait()
        if self.error is not None:
            raise self.error
        return self.result


class DatabaseServer:
    """Thread-pool serving layer over one :class:`Database` (see module doc).

    Use as a context manager (``with DatabaseServer(db) as server``) or
    call :meth:`start` / :meth:`shutdown` explicitly.  Clients obtain a
    :class:`Session` from :meth:`session` and issue requests through it;
    each blocks its calling thread until the request completes or is shed.
    """

    #: Errors after which resubmitting the same request is sound: the
    #: transaction was aborted cleanly (victim) or never started (shed).
    RETRYABLE = (DeadlockError, LockTimeoutError, ServerOverloadedError)

    #: Declared resource capture (SHARD003): the serving layer sits above
    #: the shard boundary and reports into the engine-global registry —
    #: a deliberate cross-shard sink (requests span shards once
    #: scatter-gather lands), captured once at construction.
    _shard_scoped_ = ("stats",)

    def __init__(self, db: "Database",
                 monitor: Monitor | None = None) -> None:
        self.db = db
        self.stats = db.stats
        config = db.config
        self.monitor = monitor if monitor is not None else Monitor(db)
        self.monitor.server = self
        self.workers = max(1, config.serve_workers)
        self.admission = AdmissionController(
            OverloadGuard(self.monitor, config, self.stats),
            config.serve_queue_limit, self.stats)
        self._threads: list[threading.Thread] = []
        self._state = "new"  # new -> serving -> draining -> closed
        #: Guards the server's own shared mutable state: ``_state``,
        #: ``_busy``, ``_sessions`` and ``_crashed``.  Tracked so the
        #: lockset sanitizer witnesses it on every guarded access.  Never
        #: acquired while holding ``db.latch``-ordered engine locks except
        #: as latch -> _state_lock (shutdown's crash note); the reverse
        #: nesting is forbidden.
        self._state_lock = _sanitize.TrackedLock("server._state_lock")
        self._busy = 0
        self._session_ids = itertools.count(1)
        self._sessions: dict[int, Session] = {}
        self._lock_yield = config.serve_lock_yield
        #: Background checkpointer/lazy writer (``config.ckpt_background``):
        #: started with the pool, wired to ``txns.checkpoint_async`` so
        #: commit-threshold checkpoints stop stalling request threads.
        self.checkpointer = None
        if config.ckpt_background:
            from repro.core.checkpointer import Checkpointer
            self.checkpointer = Checkpointer(
                db, interval=config.ckpt_interval_seconds,
                trickle_pages=config.ckpt_trickle_pages)
        #: First :class:`SimulatedCrash` a worker hit, if any (a crash
        #: plan fired mid-request): the server stops admitting and the
        #: harness re-raises it from :meth:`shutdown`.  Workers and the
        #: shutdown path race to record it, so all access goes through
        #: ``_state_lock`` (:meth:`_note_crash` / :attr:`crashed`).
        self._crashed: SimulatedCrash | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "DatabaseServer":
        """Install the engine yield hooks and start the worker pool."""
        with self._state_lock:
            self._witness("_state", write=True)
            if self._state != "new":
                raise ServerClosedError(
                    f"server cannot start from state {self._state!r}")
            self._state = "serving"
        self.db.txns.lock_wait_yield = self._yield_latch
        self.db.backoff_sleep = self._latch_sleep
        if self.db.group_commit is not None:
            # The leader's collection window and the followers' ticket
            # waits sleep through the same latch-releasing hook as lock
            # waits — that is what lets companion committers actually
            # reach the log while a leader collects.
            self.db.group_commit.yield_wait = self._latch_sleep
        if self.checkpointer is not None:
            self.db.txns.checkpoint_async = \
                self.checkpointer.request_checkpoint
            self.checkpointer.start()
        for index in range(self.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"serve-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def shutdown(self, drain: bool = True) -> None:
        """Stop the server; with ``drain`` finish queued work first.

        Without ``drain`` every queued request fails immediately with
        :class:`~repro.errors.ServerClosedError`.  Either way all workers
        are joined, abandoned session transactions are rolled back, the
        engine yield hooks are uninstalled (the database is usable
        single-threaded again) and — with sanitizers armed — the
        accounting over-charge cross-check runs.  Idempotent.
        """
        with self._state_lock:
            self._witness("_state", write=True)
            if self._state in ("closed", "new"):
                self._state = "closed"
                return
            self._state = "draining" if drain else "closed"
        if not drain:
            self._purge_queue()
        for _ in self._threads:
            self.admission.queue.put(None)
        for thread in self._threads:
            thread.join()
        self._threads.clear()
        self._purge_queue()  # requests admitted after the sentinels
        with self._state_lock:
            self._witness("_sessions", write=True)
            abandoned = list(self._sessions.values())
            self._sessions.clear()
        with self.db.latch:
            for session in abandoned:
                session.closed = True
                try:
                    self._rollback_abandoned(session)
                except SimulatedCrash as crash:
                    # A halted log (crash mid group force) makes the
                    # abort's ABORT append re-raise the crash; keep
                    # tearing down — shutdown re-raises it at the end.
                    self._note_crash(crash)
        ckpt_error: BaseException | None = None
        if self.checkpointer is not None:
            self.checkpointer.stop()
            self.db.txns.checkpoint_async = None
            ckpt_error = self.checkpointer.error
            if isinstance(ckpt_error, SimulatedCrash):
                self._note_crash(ckpt_error)
                ckpt_error = None
        self.db.txns.lock_wait_yield = None
        self.db.backoff_sleep = None
        if self.db.group_commit is not None:
            self.db.group_commit.yield_wait = None
        with self._state_lock:
            self._witness("_state", write=True)
            if self._state != "closed":
                self._state = "closed"
        if _sanitize.enabled():
            _sanitize.check_accounting_caps(
                self.stats, self.db.txns.accounting.records())
        crashed = self.crashed
        if crashed is not None:
            raise crashed
        if ckpt_error is not None:
            # A real bug killed the lazy writer: surface it rather than
            # finish a "clean" shutdown over a dead background thread.
            raise ckpt_error

    def __enter__(self) -> "DatabaseServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    @property
    def state(self) -> str:
        with self._state_lock:
            self._witness("_state", write=False)
            return self._state

    @property
    def crashed(self) -> SimulatedCrash | None:
        with self._state_lock:
            self._witness("_crashed", write=False)
            return self._crashed

    def _note_crash(self, crash: SimulatedCrash) -> None:
        """Record the first simulated crash; later ones lose the race."""
        with self._state_lock:
            self._witness("_crashed", write=True)
            if self._crashed is None:
                self._crashed = crash

    def _witness(self, field: str, write: bool) -> None:
        """Report one shared-field access to the lockset sanitizer."""
        if _sanitize.enabled():
            _sanitize.shared_access(self.stats, "DatabaseServer", field,
                                    write)

    # -- sessions ----------------------------------------------------------

    def session(self) -> Session:
        """Open a new client session."""
        session = Session(self, next(self._session_ids))
        with self._state_lock:
            self._witness("_sessions", write=True)
            if self._state != "serving":
                raise ServerClosedError(
                    f"server is {self._state}, not accepting sessions")
            # Registered in the same critical section as the state check:
            # a session admitted here is either rolled back by its owner
            # or captured by shutdown's copy of the map — never lost to a
            # serving->draining flip between check and insert.
            self._sessions[session.session_id] = session
        self.stats.add("serve.sessions_opened")
        return session

    def _release_session(self, session: Session) -> None:
        """Session close: roll back its open txn directly under the latch.

        Runs on the client's thread (not through the admission queue) so
        sessions can still be closed while the server drains.
        """
        with self._state_lock:
            self._witness("_sessions", write=True)
            self._sessions.pop(session.session_id, None)
        with self.db.latch:
            self._rollback_abandoned(session)
        self.stats.add("serve.sessions_closed")

    @staticmethod
    def _rollback_abandoned(session: Session) -> None:
        txn = session.txn
        session.txn = None
        if txn is not None and txn.state is TxnState.ACTIVE:
            txn.abort()

    # -- request path ------------------------------------------------------

    def resolve_deadline(self, deadline: "Deadline | float | None"
                         ) -> Deadline | None:
        """Normalize a client deadline: seconds → :class:`Deadline`,
        ``None`` → the configured default (``serve_default_deadline``)."""
        if deadline is None:
            default = self.db.config.serve_default_deadline
            return Deadline.after(default) if default > 0 else None
        if isinstance(deadline, Deadline):
            return deadline
        return Deadline.after(float(deadline))

    def submit(self, session: Session | None,
               work: Callable[["Database"], Any], label: str,
               deadline: Deadline | None) -> _Request:
        """Admit one request (or shed it); returns without waiting."""
        state = self.state
        if state != "serving":
            self.stats.add("serve.requests")
            self.stats.add("serve.shed_closed")
            raise ServerClosedError(
                f"server is {state}; request {label!r} rejected")
        request = _Request(session, work, label, deadline,
                           time.monotonic_ns())
        self.admission.admit(request)
        return request

    def call(self, session: Session | None,
             work: Callable[["Database"], Any], label: str,
             deadline: Deadline | None) -> Any:
        """Admit one request and block until its outcome."""
        return self.submit(session, work, label, deadline).wait()

    @classmethod
    def is_retryable(cls, error: BaseException) -> bool:
        """Whether resubmitting after ``error`` is sound (victim/shed)."""
        return isinstance(error, cls.RETRYABLE)

    # -- worker internals --------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            request = self.admission.queue.get()
            if request is None:
                return
            with self._state_lock:
                self._witness("_busy", write=True)
                self._busy += 1
            try:
                if not self._process(request):
                    return
            finally:
                with self._state_lock:
                    self._witness("_busy", write=True)
                    self._busy -= 1

    def _process(self, request: _Request) -> bool:
        """Run one request; False tells the worker to stop (crash).

        The whole lifecycle runs under a wait clock backdated to the
        submit timestamp, so the request's elapsed time decomposes as
        ``elapsed = cpuish + Σ waits``: the admission-queue wait charged
        up front, the engine-latch acquisition as ``latch.wait``, and
        every suspension the work itself hits (lock waits, group commit,
        buffer I/O, retry backoff) through the engine's own wait timers.
        With an event trace installed the worker also stamps its records
        with the request label, which is how ``repro.obs.perf``
        reassembles per-request span trees from a trace.
        """
        queue_wait_us = (time.monotonic_ns() - request.submitted_ns) // 1000
        self.stats.observe("serve.queue_wait_us", queue_wait_us)
        events = self.stats.events
        ctx = (events.context(request=request.label)
               if events is not None else nullcontext())
        with ctx, self.stats.request_clock(
                started_ns=request.submitted_ns) as waits:
            self.stats.charge_wait("admission.queue", queue_wait_us)
            if request.deadline is not None and request.deadline.expired():
                self.stats.add("serve.deadline_expired")
                request.finish(error=DeadlineExceededError(
                    f"request {request.label!r} spent its deadline in the "
                    f"admission queue ({queue_wait_us}us)"))
                self._observe_request(request, waits)
                return True
            try:
                latch_wait_from = time.monotonic_ns()
                with self.db.latch:
                    # Charged inside the region (from a timestamp taken
                    # before it) so the latch stays a plain ``with`` block
                    # for the static latch-inference checkers.
                    self.stats.charge_wait(
                        "latch.wait",
                        (time.monotonic_ns() - latch_wait_from) // 1000)
                    result = request.work(self.db)
            except SimulatedCrash as crash:
                # A crash plan fired on this worker: the simulated process
                # is dead.  Record it, stop admitting, and let shutdown
                # re-raise.
                self._note_crash(crash)
                with self._state_lock:
                    self._witness("_state", write=True)
                    if self._state == "serving":
                        self._state = "draining"
                request.finish(error=crash)
                self._observe_request(request, waits)
                return False
            except BaseException as error:
                # The server/client boundary: every failure is marshalled
                # to the waiting client thread, which re-raises it from
                # ``_Request.wait`` — nothing is swallowed.
                # Non-``Exception`` escapees (KeyboardInterrupt,
                # SystemExit) additionally propagate here to take the
                # worker down.
                if not isinstance(error, Exception):
                    request.finish(error=error)
                    raise
                if isinstance(error, DeadlineExceededError):
                    self.stats.add("serve.deadline_expired")
                else:
                    self.stats.add("serve.failed")
                    if isinstance(error, FaultInjectionError):
                        self.stats.add("serve.chaos_faults")
                request.finish(error=error)
            else:
                self.stats.add("serve.completed")
                request.finish(result=result)
            self._observe_request(request, waits)
            return True

    def _observe_request(self, request: _Request,
                         waits: dict[str, int] | None = None) -> None:
        elapsed_us = (time.monotonic_ns() - request.submitted_ns) // 1000
        self.stats.observe("serve.request_us", elapsed_us)
        events = self.stats.events
        if events is not None:
            error = request.error
            events.accounting(
                "serve.request", request=request.label,
                elapsed_us=elapsed_us,
                outcome=("ok" if error is None else type(error).__name__),
                waits=dict(waits) if waits else {})

    def _purge_queue(self) -> None:
        while True:
            try:
                request = self.admission.queue.get_nowait()
            except _queue.Empty:
                return
            if request is None:
                continue
            self.stats.add("serve.shed_closed")
            request.finish(error=ServerClosedError(
                f"server shut down before request {request.label!r} ran"))

    # -- latch yielding ----------------------------------------------------

    def _yield_latch(self) -> None:
        """Between lock-wait backoff steps: let the lock holder run."""
        self._latch_sleep(self._lock_yield)

    def _latch_sleep(self, delay: float) -> None:
        """Sleep ``delay`` seconds with the engine latch released.

        Called from engine code on a worker thread that holds the latch
        exactly once.  Falls back to a plain sleep if the calling thread
        does not own the latch (an engine used directly while a server is
        attached — supported but single-threaded).
        """
        try:
            self.db.latch.release()
        except RuntimeError:
            if delay > 0:
                time.sleep(delay)
            return
        try:
            if delay > 0:
                time.sleep(delay)
            else:
                time.sleep(0)
        finally:
            self.db.latch.acquire()

    # -- monitoring --------------------------------------------------------

    def view(self) -> dict:
        """Live server state for ``Monitor`` (DISPLAY THREAD analogue)."""
        stats = self.stats
        with self._state_lock:
            self._witness("_state", write=False)
            self._witness("_busy", write=False)
            self._witness("_sessions", write=False)
            state = self._state
            busy = self._busy
            sessions_open = len(self._sessions)
        return {
            "state": state,
            "workers": self.workers,
            "busy": busy,
            "queue_depth": self.admission.depth(),
            "queue_limit": self.admission.queue.maxsize,
            "sessions_open": sessions_open,
            "requests": stats.get("serve.requests"),
            "admitted": stats.get("serve.admitted"),
            "completed": stats.get("serve.completed"),
            "failed": stats.get("serve.failed"),
            "deadline_expired": stats.get("serve.deadline_expired"),
            "shed": (stats.get("serve.shed_queue_full")
                     + stats.get("serve.shed_overload")
                     + stats.get("serve.shed_closed")),
        }
