"""Concurrent load harness for the serving layer, plus its CLI.

:class:`LoadHarness` drives a :class:`~repro.serve.server.DatabaseServer`
with N real client threads running a seeded mixed workload:

* **inserts** — auto-commit document inserts, each with a unique key; the
  client records the key only when the server *acknowledged* the commit;
* **hot updates** — explicit begin / X-lock one of a small set of hot
  DocIDs / commit across three requests, holding the lock between
  requests: this is where genuine multi-session contention (lock waits,
  deadlock victims, retries) comes from;
* **queries** — prepared-statement XPath reads over the seeded corpus.

Every client classifies its failures with the typed taxonomy
(:class:`~repro.errors.ServerOverloadedError` → shed, backoff and move on;
:class:`~repro.errors.DeadlineExceededError` → out of time;
deadlock/timeout → retryable) and the harness then **verifies the
no-lost-no-duplicated-commit invariant** two independent ways: the base
table must contain exactly the acknowledged keys (each once), and the
accounting log must hold exactly one committed insert record per
acknowledged key.  The report carries p50/p99 request and queue-wait
latency read from the ``serve.*`` histograms.

CLI (used by the CI concurrency job to produce the latency artifact)::

    PYTHONPATH=src python -m repro.serve.loadgen \\
        --clients 100 --ops 5 --seed 7 --out latency-report.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.engine import Database
from repro.errors import (DeadlineExceededError, ReproError,
                          ServerClosedError, ServerOverloadedError)
from repro.obs.events import EventTrace, StatsCollector
from repro.obs.waits import wait_breakdown
from repro.rdb.locks import LockMode
from repro.serve.server import DatabaseServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.session import Session

TABLE = "docs"
COLUMN = "doc"
QUERY_PATH = "/Product/Name"

_DOC = ("<Product id=\"{key}\"><Name>item {key}</Name>"
        "<Price>{price}</Price></Product>")


def serving_config(clients: int, ops_per_client: int,
                   base: EngineConfig = DEFAULT_CONFIG,
                   **overrides) -> EngineConfig:
    """A config sized for a load run.

    The accounting ring must hold every transaction the run can produce
    (the verification pass reads it back), and the lock-wait budget is
    kept small so contention resolves in bounded time.
    """
    sized = {
        "accounting_ring_size": max(1024, clients * ops_per_client * 4),
        "checkpoint_interval": 0,
        # Hot locks are held across queued requests, so waiters need more
        # simulated budget than the single-threaded default before they
        # declare a timeout (each backoff step yields the latch for
        # ``serve_lock_yield`` real seconds).
        "lock_wait_budget": 512,
    }
    sized.update(overrides)
    return replace(base, **sized)


def build_database(config: EngineConfig, hot_docs: int = 8,
                   injector: object | None = None) -> tuple[Database, list]:
    """Fresh engine with the load schema and ``hot_docs`` seeded rows.

    Returns the database and the seeded hot DocIDs (the rows hot-update
    clients fight over).
    """
    db = Database(config, injector=injector)
    db.create_table(TABLE, [("key", "varchar"), (COLUMN, "xml")])

    def seed(db: Database, txn) -> list:
        rids = [db.insert(TABLE, (f"hot-{i}",
                                  _DOC.format(key=f"hot-{i}", price=i)),
                          txn_id=txn.txn_id)
                for i in range(hot_docs)]
        return rids

    db.run_in_txn(seed)
    hot_ids = list(range(hot_docs))
    return db, hot_ids


@dataclass
class ClientStats:
    """One simulated client's outcome tally."""

    client_id: int
    committed_keys: list = field(default_factory=list)
    queries: int = 0
    hot_commits: int = 0
    shed: int = 0
    deadline_expired: int = 0
    retried: int = 0
    #: retryable contention errors (deadlock/lock timeout) that survived
    #: every retry — expected under overload, not an invariant breach.
    timed_out: int = 0
    failures: list = field(default_factory=list)


@dataclass
class LoadReport:
    """Aggregated outcome of one load run (JSON-safe via ``to_dict``)."""

    clients: int
    ops_per_client: int
    wall_seconds: float
    committed_inserts: int
    queries: int
    hot_commits: int
    shed: int
    deadline_expired: int
    retried: int
    timed_out: int
    failures: list
    p50_request_us: int
    p99_request_us: int
    p50_queue_wait_us: int
    p99_queue_wait_us: int
    verified: bool
    verify_errors: list
    counters: dict
    #: group-commit shape: how many txns each log force hardened (0s when
    #: group commit is off — every commit forces alone).
    wal_flushes: int = 0
    wal_group_commits: int = 0
    group_size_p50: int = 0
    group_size_max: int = 0
    #: class-3-style wait profile: per-class totals plus the per-request
    #: total-wait distribution (`waits.request_wait_us`).
    waits_by_class: dict = field(default_factory=dict)
    wait_total_us: int = 0
    p50_request_wait_us: int = 0
    p99_request_wait_us: int = 0

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "ops_per_client": self.ops_per_client,
            "wall_seconds": round(self.wall_seconds, 3),
            "committed_inserts": self.committed_inserts,
            "queries": self.queries,
            "hot_commits": self.hot_commits,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "retried": self.retried,
            "timed_out": self.timed_out,
            "failures": self.failures,
            "latency_us": {
                "request_p50": self.p50_request_us,
                "request_p99": self.p99_request_us,
                "queue_wait_p50": self.p50_queue_wait_us,
                "queue_wait_p99": self.p99_queue_wait_us,
            },
            "verified": self.verified,
            "verify_errors": self.verify_errors,
            "group_commit": {
                "wal_flushes": self.wal_flushes,
                "group_commits": self.wal_group_commits,
                "group_size_p50": self.group_size_p50,
                "group_size_max": self.group_size_max,
            },
            "waits": {
                "total_us": self.wait_total_us,
                "request_wait_p50_us": self.p50_request_wait_us,
                "request_wait_p99_us": self.p99_request_wait_us,
                "by_class": self.waits_by_class,
            },
            "counters": self.counters,
        }


class LoadHarness:
    """Drives one :class:`DatabaseServer` with concurrent client threads."""

    def __init__(self, db: Database, server: DatabaseServer,
                 hot_ids: list) -> None:
        self.db = db
        self.server = server
        self.hot_ids = hot_ids

    def run(self, clients: int, ops_per_client: int, seed: int = 0,
            deadline: float = 5.0, retry_limit: int = 3,
            seeded_insert_txns: int = 1) -> LoadReport:
        """Run the workload and verify the commit invariant.

        Each client gets a deterministic RNG derived from ``seed`` (thread
        *interleaving* stays nondeterministic — that is the point — but
        each client's op stream is reproducible).
        """
        tallies = [ClientStats(i) for i in range(clients)]
        threads = [
            threading.Thread(target=self._client,
                             args=(tallies[i], ops_per_client,
                                   seed * 1_000_003 + i, deadline,
                                   retry_limit),
                             name=f"client-{i}")
            for i in range(clients)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.monotonic() - started
        self.server.shutdown(drain=True)
        return self._report(tallies, ops_per_client, wall,
                            seeded_insert_txns)

    # -- the client ----------------------------------------------------------

    def _client(self, tally: ClientStats, ops: int, seed: int,
                deadline: float, retry_limit: int) -> None:
        rng = random.Random(seed)
        try:
            with self.server.session() as session:
                for op_index in range(ops):
                    self._one_op(session, tally, rng, op_index, deadline,
                                 retry_limit)
        except ReproError as error:  # pragma: no cover - unexpected
            tally.failures.append(f"session: {type(error).__name__}: "
                                  f"{error}")

    def _one_op(self, session: "Session", tally: ClientStats,
                rng, op_index: int, deadline: float,
                retry_limit: int) -> None:
        roll = rng.random()
        for attempt in range(retry_limit + 1):
            try:
                if roll < 0.4:
                    key = f"c{tally.client_id}-op{op_index}"
                    doc = _DOC.format(key=key, price=op_index)
                    session.insert(TABLE, (key, doc), deadline=deadline)
                    tally.committed_keys.append(key)
                elif roll < 0.7:
                    self._hot_update(session, rng, deadline)
                    tally.hot_commits += 1
                else:
                    session.query(TABLE, COLUMN, QUERY_PATH,
                                  deadline=deadline)
                    tally.queries += 1
                return
            except ServerOverloadedError:
                tally.shed += 1
                # Client-side shed backoff burns the op's deadline budget
                # without touching the engine — charged as deadline.sleep.
                with self.db.stats.wait_timer("deadline.sleep"):
                    time.sleep(0.001 * (attempt + 1))
            except DeadlineExceededError:
                tally.deadline_expired += 1
                return
            except ReproError as error:
                if self.server.is_retryable(error):
                    if attempt < retry_limit:
                        tally.retried += 1
                        continue
                    tally.timed_out += 1  # contention outlasted the retries
                    return
                tally.failures.append(
                    f"client {tally.client_id} op {op_index}: "
                    f"{type(error).__name__}: {error}")
                return
        tally.shed += 1  # every attempt was shed: give up on this op

    def _hot_update(self, session: "Session", rng,
                    deadline: float) -> None:
        """Explicit txn holding an X lock on a hot DocID across requests."""
        docid = rng.choice(self.hot_ids)
        session.begin(deadline=deadline)
        try:
            session.lock(("doc", TABLE, docid), LockMode.X,
                         deadline=deadline)
            session.commit(deadline=deadline)
        except ReproError:
            # A failed lock/execute already aborted the txn; a commit
            # whose deadline expired in the queue did not — make sure the
            # session is clean before the error is classified upstream.
            self._ensure_rolled_back(session)
            raise

    def _ensure_rolled_back(self, session: "Session") -> None:
        """Best-effort rollback of a leaked explicit transaction."""
        while session.txn is not None and not session.closed:
            try:
                session.rollback()
            except ServerOverloadedError:
                with self.db.stats.wait_timer("deadline.sleep"):
                    time.sleep(0.001)
            except ServerClosedError:
                return

    # -- verification and reporting ------------------------------------------

    def _report(self, tallies: list, ops_per_client: int, wall: float,
                seeded_insert_txns: int) -> LoadReport:
        verify_errors = self.verify_commits(tallies, seeded_insert_txns)
        stats = self.db.stats
        snapshot = stats.counters()
        # A sanitized run is only verified if no runtime witness tripped:
        # a non-zero sanitize.race.* counter is a found data race, a
        # non-zero sanitize.waits.* one a wait clock that charged more
        # suspension time than the interval it measured contained, and a
        # non-zero sanitize.shard.* one a cross-shard resource mix the
        # static footprints promised could not happen.
        for name, value in sorted(snapshot.items()):
            if name.startswith(("sanitize.race", "sanitize.waits",
                                "sanitize.shard")) \
                    and value:
                verify_errors.append(
                    f"runtime sanitizer tripped: {name} = {value}")
        # Attribution soundness for the wait clocks, same shape as the
        # accounting-caps check: summed per-transaction wait charges can
        # never exceed the global per-class counter they flowed through.
        acct_waits: dict = {}
        for record in self.db.txns.accounting.records():
            for name, value in record.counters.items():
                if name.startswith("waits."):
                    acct_waits[name] = acct_waits.get(name, 0) + value
        for name, total in sorted(acct_waits.items()):
            if total > snapshot.get(name, 0):
                verify_errors.append(
                    f"accounting over-charged wait counter {name}: "
                    f"records sum to {total}, global is "
                    f"{snapshot.get(name, 0)}")
        request_hist = stats.histogram("serve.request_us")
        queue_hist = stats.histogram("serve.queue_wait_us")
        wait_hist = stats.histogram("waits.request_wait_us")
        waits_by_class = wait_breakdown(snapshot)
        failures = [f for tally in tallies for f in tally.failures]
        counters = {name: value for name, value in snapshot.items()
                    if name.startswith(("serve.", "txn.", "lock.", "wal.",
                                        "ckpt.", "waits.", "sanitize."))}
        group_hist = stats.histogram("wal.group_size")
        return LoadReport(
            clients=len(tallies),
            ops_per_client=ops_per_client,
            wall_seconds=wall,
            committed_inserts=sum(len(t.committed_keys) for t in tallies),
            queries=sum(t.queries for t in tallies),
            hot_commits=sum(t.hot_commits for t in tallies),
            shed=sum(t.shed for t in tallies),
            deadline_expired=sum(t.deadline_expired for t in tallies),
            retried=sum(t.retried for t in tallies),
            timed_out=sum(t.timed_out for t in tallies),
            failures=failures,
            p50_request_us=request_hist.quantile(0.5) if request_hist
            else 0,
            p99_request_us=request_hist.quantile(0.99) if request_hist
            else 0,
            p50_queue_wait_us=queue_hist.quantile(0.5) if queue_hist else 0,
            p99_queue_wait_us=queue_hist.quantile(0.99) if queue_hist
            else 0,
            verified=not verify_errors and not failures,
            verify_errors=verify_errors,
            counters=counters,
            wal_flushes=counters.get("wal.flushes", 0),
            wal_group_commits=counters.get("wal.group_commits", 0),
            group_size_p50=group_hist.quantile(0.5) if group_hist else 0,
            group_size_max=group_hist.max if group_hist else 0,
            waits_by_class=waits_by_class,
            wait_total_us=sum(waits_by_class.values()),
            p50_request_wait_us=wait_hist.quantile(0.5)
            if wait_hist and wait_hist.count else 0,
            p99_request_wait_us=wait_hist.quantile(0.99)
            if wait_hist and wait_hist.count else 0,
        )

    def verify_commits(self, tallies: list,
                       seeded_insert_txns: int = 1) -> list:
        """No-lost-no-duplicated-commits check (two independent views).

        1. The base table holds exactly the acknowledged keys plus the
           seeded rows, each exactly once: a key acknowledged but absent
           is a *lost* commit, present twice a *duplicated* one, and a
           non-acknowledged client key present means an abort leaked.
        2. The accounting log holds exactly one committed record with
           inserted rows per acknowledged insert (plus the seed txns):
           the attribution view must agree with the storage view.
        """
        errors: list = []
        acknowledged: dict = {}
        for tally in tallies:
            for key in tally.committed_keys:
                if key in acknowledged:
                    errors.append(f"key {key!r} acknowledged twice")
                acknowledged[key] = tally.client_id
        seed_keys = set()
        seen: dict = {}
        for _rid, row in self.db.tables[TABLE].scan_rids():
            key = row[0]
            seen[key] = seen.get(key, 0) + 1
            if key.startswith("hot-"):
                seed_keys.add(key)
        for key, count in sorted(seen.items()):
            if count > 1:
                errors.append(f"key {key!r} stored {count} times "
                              f"(duplicated commit)")
            if key not in acknowledged and key not in seed_keys:
                errors.append(f"key {key!r} stored but never acknowledged "
                              f"(aborted insert leaked)")
        for key in sorted(acknowledged):
            if key not in seen:
                errors.append(f"key {key!r} acknowledged but not stored "
                              f"(lost commit)")
        committed_insert_records = sum(
            1 for record in self.db.txns.accounting.records()
            if record.outcome == "committed"
            and record.counters.get("ts.records_inserted", 0) > 0
            and record.counters.get("wal.records", 0) > 0)
        expected = len(acknowledged) + seeded_insert_txns
        if committed_insert_records != expected:
            errors.append(
                f"accounting shows {committed_insert_records} committed "
                f"insert transactions, clients acknowledged "
                f"{len(acknowledged)} (+{seeded_insert_txns} seed)")
        return errors


def run_load(clients: int = 100, ops_per_client: int = 5, seed: int = 0,
             workers: int = 8, queue_limit: int = 64,
             deadline: float = 5.0, trace: EventTrace | None = None,
             stats_interval: float = 0.0,
             **config_overrides) -> LoadReport:
    """Build engine + server, run the workload, tear down, report.

    Passing ``trace`` installs the structured event trace on the engine's
    registry for the duration of the run (IFCID-style records: accounting
    per request/transaction, performance per suspension); a positive
    ``stats_interval`` additionally runs the statistics-interval collector
    thread against it.  The caller owns the trace — export it with
    :meth:`~repro.obs.events.EventTrace.write_jsonl` afterwards.
    """
    config = serving_config(clients, ops_per_client,
                            serve_workers=workers,
                            serve_queue_limit=queue_limit,
                            **config_overrides)
    db, hot_ids = build_database(config)
    collector = None
    if trace is not None:
        trace.install(db.stats)
        if stats_interval > 0:
            collector = StatsCollector(db.stats, trace,
                                       interval=stats_interval).start()
    try:
        server = DatabaseServer(db).start()
        harness = LoadHarness(db, server, hot_ids)
        report = harness.run(clients, ops_per_client, seed=seed,
                             deadline=deadline)
    finally:
        if collector is not None:
            collector.stop()
        if trace is not None:
            trace.uninstall(db.stats)
    db.close()
    return report


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="serving-layer load harness (latency + invariant "
                    "verification)")
    parser.add_argument("--clients", type=int, default=100)
    parser.add_argument("--ops", type=int, default=5,
                        help="operations per client")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--deadline", type=float, default=5.0,
                        help="per-request deadline in seconds")
    parser.add_argument("--group-commit", action="store_true",
                        help="batch COMMIT hardening across sessions "
                             "(one log force per group)")
    parser.add_argument("--background-checkpointer", action="store_true",
                        help="run checkpoints and dirty-page trickling on "
                             "a background thread")
    parser.add_argument("--out", type=str, default="",
                        help="write the JSON report here")
    parser.add_argument("--trace-out", type=str, default="",
                        help="record a structured event trace during the "
                             "run and write it here as JSONL (feed it to "
                             "python -m repro.obs.perf)")
    parser.add_argument("--stats-interval", type=float, default=0.0,
                        help="with --trace-out: emit STATISTICS interval "
                             "records every this many seconds")
    options = parser.parse_args(argv)
    trace = EventTrace() if options.trace_out else None
    report = run_load(clients=options.clients, ops_per_client=options.ops,
                      seed=options.seed, workers=options.workers,
                      queue_limit=options.queue_limit,
                      deadline=options.deadline,
                      trace=trace,
                      stats_interval=options.stats_interval,
                      txn_group_commit=options.group_commit,
                      ckpt_background=options.background_checkpointer)
    if trace is not None:
        count = trace.write_jsonl(options.trace_out)
        print(f"# wrote {count} trace records to {options.trace_out}",
              file=sys.stderr)
    rendered = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    print(rendered)
    if options.out:
        with open(options.out, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
    return 0 if report.verified else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
