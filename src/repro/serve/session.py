"""Per-client sessions: transaction state and a prepared-statement cache.

A :class:`Session` is the serving layer's unit of client state — the
analogue of a DB2 *thread* bound to one connection.  It owns

* the session's **transaction state**: at most one explicit transaction at
  a time, begun with :meth:`Session.begin`, operated on across requests
  with :meth:`Session.execute`, and ended with :meth:`Session.commit` /
  :meth:`Session.rollback`.  Locks are held *between* requests, which is
  where real multi-session contention comes from; and
* a bounded LRU **statement cache**: :meth:`Session.prepare` interns a
  (table, column, path, namespaces) statement, and the first execution
  plans it once through :meth:`~repro.core.engine.Database.plan_xpath`
  (whose parse/compile steps already hit the global caches in
  :mod:`repro.xpath.cache`); later executions replay the stored
  :class:`~repro.query.plan.AccessPlan` via ``Database.execute_plan``.

A session object is *not* itself thread-safe — it models one client
connection, and one client issues one request at a time.  All engine work
happens on server worker threads; the session only builds closures and
waits on the request outcome.

Every request body fires the ``serve.request`` fault point when the engine
carries an injector, so chaos plans (``FaultPlan.fail_at``) can kill
exactly one session's transaction mid-flight while the rest keep serving.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ServerClosedError, TransactionError
from repro.rdb.locks import LockMode
from repro.rdb.txn import IsolationLevel, Transaction, TxnState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.deadline import Deadline
    from repro.core.engine import Database, XPathResult
    from repro.query.plan import AccessPlan
    from repro.serve.server import DatabaseServer


@dataclass
class PreparedStatement:
    """One cached statement: identity plus its lazily built access plan."""

    table: str
    column: str
    path: str
    namespaces: tuple[tuple[str, str], ...] = ()
    #: Built under the engine latch on first execution; dropped by
    #: :meth:`Session.invalidate` after DDL.
    plan: "AccessPlan | None" = field(default=None, compare=False)

    @property
    def namespace_map(self) -> dict[str, str] | None:
        return dict(self.namespaces) if self.namespaces else None


class Session:
    """One client's server-side state (see module docstring)."""

    #: deliberate resource capture (see repro.analyze.resources SHARD003):
    #: the session charges statement-cache counters on every prepare and
    #: must not reach them through the server on the hot path.
    _shard_scoped_ = ("_stats",)

    def __init__(self, server: "DatabaseServer", session_id: int) -> None:
        self._server = server
        self._stats = server.stats
        self.session_id = session_id
        self.closed = False
        #: The session's explicit transaction, if one is open.  Only
        #: touched by worker threads while they hold the engine latch.
        self.txn: Transaction | None = None
        self._stmts: OrderedDict[tuple, PreparedStatement] = OrderedDict()
        self._stmt_limit = max(1, server.db.config.serve_stmt_cache_size)

    # -- statement cache ---------------------------------------------------

    def prepare(self, table: str, column: str, path: str,
                namespaces: dict[str, str] | None = None
                ) -> PreparedStatement:
        """Intern a statement in the session's LRU cache (no engine work)."""
        ns = tuple(sorted((namespaces or {}).items()))
        key = (table, column, path, ns)
        stats = self._stats
        stmt = self._stmts.get(key)
        if stmt is not None:
            self._stmts.move_to_end(key)
            stats.add("serve.stmt_hits")
            return stmt
        stats.add("serve.stmt_misses")
        stmt = PreparedStatement(table, column, path, ns)
        self._stmts[key] = stmt
        while len(self._stmts) > self._stmt_limit:
            self._stmts.popitem(last=False)
        return stmt

    def invalidate(self) -> None:
        """Drop cached plans (call after DDL; statements re-plan lazily)."""
        for stmt in self._stmts.values():
            stmt.plan = None

    # -- auto-commit requests ----------------------------------------------

    def run(self, body: Callable[["Database", Transaction], Any],
            isolation: IsolationLevel | None = None,
            deadline: "Deadline | float | None" = None,
            label: str = "run") -> Any:
        """One auto-commit request: ``body(db, txn)`` via ``run_in_txn``.

        The engine's victim-retry machinery applies (with jittered
        backoff); the request deadline caps both lock waits and retry
        backoff.  Blocks until the request finishes or is shed.
        """
        self._check_open()
        resolved = self._server.resolve_deadline(deadline)

        def work(db: "Database") -> Any:
            return db.run_in_txn(self._chaos_wrap(body),
                                 isolation=isolation, deadline=resolved)

        return self._server.call(self, work, label, resolved)

    def query(self, table: str, column: str, path: str,
              namespaces: dict[str, str] | None = None,
              deadline: "Deadline | float | None" = None
              ) -> "list[XPathResult]":
        """Auto-commit XPath query through the prepared-statement cache.

        Takes a table-level IS intent lock (readers coexist with other
        readers and with IX writers; DocID-level conflicts are left to the
        caller's explicit locks, as in §5.1's granular scheme).
        """
        stmt = self.prepare(table, column, path, namespaces)

        def body(db: "Database", txn: Transaction) -> "list[XPathResult]":
            txn.lock(("table", stmt.table), LockMode.IS)
            if stmt.plan is None:
                stmt.plan = db.plan_xpath(stmt.table, stmt.column, stmt.path,
                                          stmt.namespace_map)
            return db.execute_plan(stmt.table, stmt.column, stmt.plan)

        return self.run(body, deadline=deadline,
                        label=f"query:{stmt.path}")

    def insert(self, table: str, row: tuple,
               deadline: "Deadline | float | None" = None) -> Any:
        """Auto-commit insert under a table-level IX intent lock."""

        def body(db: "Database", txn: Transaction) -> Any:
            txn.lock(("table", table), LockMode.IX)
            return db.insert(table, row, txn_id=txn.txn_id)

        return self.run(body, deadline=deadline, label=f"insert:{table}")

    # -- explicit transactions ---------------------------------------------

    def begin(self, isolation: IsolationLevel | None = None,
              deadline: "Deadline | float | None" = None) -> int:
        """Open the session's explicit transaction; returns its txn id.

        The transaction's locks persist across requests until
        :meth:`commit` / :meth:`rollback` — each subsequent
        :meth:`execute` carries its own deadline for its own lock waits.
        """
        self._check_open()
        resolved = self._server.resolve_deadline(deadline)

        def work(db: "Database") -> int:
            if self.txn is not None:
                raise TransactionError(
                    f"session {self.session_id} already has txn "
                    f"{self.txn.txn_id} open")
            self.txn = db.txns.begin(
                isolation or IsolationLevel.READ_COMMITTED)
            return self.txn.txn_id

        return self._server.call(self, work, "begin", resolved)

    def execute(self, body: Callable[["Database", Transaction], Any],
                deadline: "Deadline | float | None" = None,
                label: str = "execute") -> Any:
        """One request inside the session's explicit transaction.

        Any engine error (deadlock, lock timeout, expired deadline,
        injected fault, ...) aborts the transaction — its locks are gone
        and the session has no open transaction afterwards; the error
        propagates so the client can classify it (see
        :meth:`DatabaseServer.is_retryable`) and re-begin if appropriate.
        """
        self._check_open()
        resolved = self._server.resolve_deadline(deadline)

        def work(db: "Database") -> Any:
            txn = self._require_txn()
            txn.deadline = resolved
            try:
                with txn.charging():
                    return self._chaos_wrap(body)(db, txn)
            except BaseException:
                self._abandon_txn()
                raise
            finally:
                txn.deadline = None

        return self._server.call(self, work, label, resolved)

    def lock(self, resource: object, mode: LockMode = LockMode.X,
             deadline: "Deadline | float | None" = None) -> None:
        """Explicitly lock ``resource`` inside the open transaction."""
        self.execute(lambda db, txn: txn.lock(resource, mode),
                     deadline=deadline, label=f"lock:{resource!r}")

    def commit(self, deadline: "Deadline | float | None" = None) -> None:
        """Commit the session's explicit transaction."""
        self._check_open()
        resolved = self._server.resolve_deadline(deadline)

        def work(db: "Database") -> None:
            txn = self._require_txn()
            self.txn = None
            try:
                txn.commit()
            except BaseException:
                # A commit that failed mid-flight (e.g. an injected log
                # fault) must not leak an active transaction holding
                # locks: abort it, then report the original failure.
                if txn.state is TxnState.ACTIVE:
                    txn.abort()
                raise

        self._server.call(self, work, "commit", resolved)

    def rollback(self, deadline: "Deadline | float | None" = None) -> None:
        """Abort the session's explicit transaction (no-op if none open)."""
        self._check_open()
        resolved = self._server.resolve_deadline(deadline)

        def work(db: "Database") -> None:
            txn = self.txn
            self.txn = None
            if txn is not None:
                txn.abort()

        self._server.call(self, work, "rollback", resolved)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the session: roll back any open transaction.

        Idempotent; also callable while the server drains (rollback runs
        engine-side during shutdown, not through the admission queue).
        """
        if self.closed:
            return
        self.closed = True
        self._server._release_session(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _chaos_wrap(self, body: Callable[["Database", Transaction], Any]
                    ) -> Callable[["Database", Transaction], Any]:
        """Fire the ``serve.request`` fault point before the real body."""

        def wrapped(db: "Database", txn: Transaction) -> Any:
            if db.injector is not None:
                db.injector.hit("serve.request")
            return body(db, txn)

        return wrapped

    def _require_txn(self) -> Transaction:
        if self.txn is None:
            raise TransactionError(
                f"session {self.session_id} has no open transaction")
        return self.txn

    def _abandon_txn(self) -> None:
        """Abort and forget the explicit txn after a failed request."""
        txn = self.txn
        self.txn = None
        if txn is not None and txn.state is TxnState.ACTIVE:
            txn.abort()

    def _check_open(self) -> None:
        if self.closed:
            raise ServerClosedError(
                f"session {self.session_id} is closed")

    def __repr__(self) -> str:
        state = "closed" if self.closed else \
            (f"txn {self.txn.txn_id}" if self.txn else "idle")
        return f"Session({self.session_id}, {state})"
