"""The multi-client serving layer (DB2-style thread/connection governance).

``repro.serve`` fronts a single-threaded
:class:`~repro.core.engine.Database` with a worker thread pool, per-client
sessions, admission control with bounded queueing, request deadlines, and
graceful overload shedding — see :mod:`repro.serve.server` for the
architecture and DESIGN.md's "Serving layer" section for the DB2 mapping.

Run a load experiment from the command line::

    PYTHONPATH=src python -m repro.serve.loadgen --clients 100 --ops 5
"""

from repro.serve.admission import AdmissionController, OverloadGuard
from repro.serve.server import DatabaseServer
from repro.serve.session import PreparedStatement, Session


def __getattr__(name: str):
    # Lazy: loadgen is also a ``python -m`` entry point, and importing it
    # here eagerly would shadow that module-run with the package import.
    if name in ("LoadHarness", "LoadReport"):
        from repro.serve import loadgen
        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AdmissionController",
    "DatabaseServer",
    "LoadHarness",
    "LoadReport",
    "OverloadGuard",
    "PreparedStatement",
    "Session",
]
