"""Validation runtime: the VM that executes compiled schemas (Fig. 4).

"At the execution time, the binary schema is loaded and executed by a
validation runtime to generate a token stream."  The VM walks the input
events, driving one content-model DFA per open element, checking attribute
presence and lexical form, and emits a *typed* token stream: ELEM_START
tokens carry their schema type annotation — the validating-parser output the
storage layer consumes.
"""

from __future__ import annotations

import datetime as _dt
from decimal import Decimal, InvalidOperation
from typing import Iterable

from repro.errors import XmlValidationError
from repro.xdm.events import EventKind, SaxEvent
from repro.xdm.parser import parse as parse_xml
from repro.xdm.tokens import TokenStream
from repro.xschema.compiler import (CompiledSchema, CompiledType,
                                    deserialize_compiled)


def check_lexical(simple_type: str, text: str) -> bool:
    """Lexical validity of ``text`` for a built-in simple type."""
    text = text.strip()
    if simple_type == "string" or simple_type == "":
        return True
    if simple_type == "integer":
        try:
            int(text)
            return True
        except ValueError:
            return False
    if simple_type in ("decimal", "double"):
        try:
            if simple_type == "decimal":
                Decimal(text)
            else:
                float(text)
            return True
        except (ValueError, InvalidOperation):
            return False
    if simple_type == "date":
        try:
            _dt.date.fromisoformat(text)
            return True
        except ValueError:
            return False
    if simple_type == "boolean":
        return text in ("true", "false", "0", "1")
    raise XmlValidationError(f"unknown simple type {simple_type!r}")


class _Frame:
    __slots__ = ("name", "ctype", "state", "text", "seen_child",
                 "seen_attrs")

    def __init__(self, name: str, ctype: CompiledType) -> None:
        self.name = name
        self.ctype = ctype
        self.state = ctype.dfa.start if ctype.dfa is not None else 0
        self.text: list[str] = []
        self.seen_child = False
        self.seen_attrs: set[str] = set()


class ValidationVM:
    """Table-driven validator producing annotated token streams."""

    def __init__(self, compiled: CompiledSchema | bytes) -> None:
        if isinstance(compiled, bytes):
            compiled = deserialize_compiled(compiled)
        self.schema = compiled

    def validate_events(self, events: Iterable[SaxEvent]) -> TokenStream:
        """Validate a raw event stream; returns the typed token stream."""
        out = TokenStream()
        stack: list[_Frame] = []
        for event in events:
            kind = event.kind
            if kind is EventKind.DOC_START or kind is EventKind.DOC_END:
                out.append_event(event)
            elif kind is EventKind.ELEM_START:
                self._enter_child(stack, event)
                ctype = self._type_for(event.local, stack)
                frame = _Frame(event.local, ctype)
                stack.append(frame)
                out.append(EventKind.ELEM_START, event.local, event.uri,
                           annotation=ctype.name)
            elif kind is EventKind.ATTR:
                frame = stack[-1]
                declared = {name: (stype, required)
                            for name, stype, required
                            in frame.ctype.attributes}
                if event.local not in declared:
                    raise XmlValidationError(
                        f"undeclared attribute {event.local!r} on "
                        f"<{frame.name}>")
                stype, _required = declared[event.local]
                if not check_lexical(stype, event.value):
                    raise XmlValidationError(
                        f"attribute {event.local!r}={event.value!r} is not "
                        f"a valid {stype}")
                frame.seen_attrs.add(event.local)
                out.append(EventKind.ATTR, event.local, event.uri,
                           event.value, annotation=stype)
            elif kind is EventKind.TEXT:
                if stack:
                    frame = stack[-1]
                    if frame.ctype.dfa is not None and event.value.strip():
                        raise XmlValidationError(
                            f"text content not allowed in <{frame.name}>")
                    frame.text.append(event.value)
                out.append_event(event)
            elif kind is EventKind.ELEM_END:
                frame = stack.pop()
                self._leave(frame)
                out.append_event(event)
            else:  # NS / COMMENT / PI pass through unvalidated
                out.append_event(event)
        return out

    def _type_for(self, name: str, stack: list[_Frame]) -> CompiledType:
        ctype = self.schema.type_of_element(name)
        if ctype is None:
            raise XmlValidationError(f"element {name!r} is not declared")
        return ctype

    def _enter_child(self, stack: list[_Frame], event: SaxEvent) -> None:
        if not stack:
            if event.local not in self.schema.elements:
                raise XmlValidationError(
                    f"root element {event.local!r} is not declared")
            return
        frame = stack[-1]
        frame.seen_child = True
        if frame.ctype.dfa is None:
            raise XmlValidationError(
                f"<{frame.name}> ({frame.ctype.name}) does not allow "
                f"child elements")
        next_state = frame.ctype.dfa.step(frame.state, event.local)
        if next_state is None:
            allowed = sorted(frame.ctype.dfa.transitions[frame.state])
            raise XmlValidationError(
                f"unexpected <{event.local}> inside <{frame.name}>; "
                f"expected one of: {', '.join(allowed) or '(end)'}")
        frame.state = next_state

    def _leave(self, frame: _Frame) -> None:
        for attr_name, _stype, required in frame.ctype.attributes:
            if required and attr_name not in frame.seen_attrs:
                raise XmlValidationError(
                    f"<{frame.name}> is missing required attribute "
                    f"{attr_name!r}")
        if frame.ctype.dfa is not None:
            if not frame.ctype.dfa.accepts_empty_tail(frame.state):
                raise XmlValidationError(
                    f"<{frame.name}> ended before its content model "
                    f"was satisfied")
        else:
            stype = frame.ctype.simple_content or ""
            if stype and not check_lexical(stype, "".join(frame.text)):
                raise XmlValidationError(
                    f"content of <{frame.name}> is not a valid {stype}")
            if stype == "" and frame.ctype.simple_content == "" and \
                    "".join(frame.text).strip():
                raise XmlValidationError(
                    f"<{frame.name}> must be empty")


def validate_text(compiled: CompiledSchema | bytes,
                  xml_text: str) -> TokenStream:
    """Validating-parse pipeline: parse → VM → typed token stream."""
    vm = ValidationVM(compiled)
    raw = parse_xml(xml_text, strip_whitespace=True)
    return vm.validate_events(raw.events())
