"""XML Schema object model (the subset the engine registers, Fig. 4).

Supported constructs — the data-centric core of XSD:

* global ``xs:element`` declarations with named or inline types;
* ``xs:complexType`` with ``xs:sequence`` / ``xs:choice`` content (arbitrary
  nesting, ``minOccurs``/``maxOccurs``) and ``xs:attribute`` declarations;
* built-in simple types: string, integer, decimal, double, date, boolean.

The model is parsed from schema text by :func:`parse_schema` using the
engine's own XML parser, then compiled to the binary format by
:mod:`repro.xschema.compiler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.xdm.events import build_tree
from repro.xdm.nodes import ElementNode
from repro.xdm.parser import parse

XSD_NS = "http://www.w3.org/2001/XMLSchema"

#: Built-in simple types and their lexical validators.
SIMPLE_TYPES = ("string", "integer", "decimal", "double", "date", "boolean")


@dataclass(frozen=True)
class AttributeDecl:
    name: str
    simple_type: str = "string"
    required: bool = False


@dataclass
class Particle:
    """A term with occurrence bounds."""

    term: "ElementRef | Sequence | Choice"
    min_occurs: int = 1
    max_occurs: int | None = 1  # None = unbounded


@dataclass
class ElementRef:
    name: str


@dataclass
class Sequence:
    particles: list[Particle] = field(default_factory=list)


@dataclass
class Choice:
    particles: list[Particle] = field(default_factory=list)


@dataclass
class ComplexType:
    name: str
    attributes: list[AttributeDecl] = field(default_factory=list)
    #: None content means empty; a str names a simple type (simple content);
    #: otherwise a content-model particle.
    content: Particle | str | None = None


@dataclass
class ElementDecl:
    name: str
    type_name: str  # a simple type name or a complex type name


@dataclass
class Schema:
    """A parsed schema: global elements plus named types."""

    elements: dict[str, ElementDecl] = field(default_factory=dict)
    types: dict[str, ComplexType] = field(default_factory=dict)

    def element_type(self, name: str) -> str:
        decl = self.elements.get(name)
        if decl is None:
            raise SchemaError(f"no global element declaration for {name!r}")
        return decl.type_name


def _strip_xs(type_text: str) -> str:
    name = type_text.split(":")[-1]
    aliases = {"int": "integer", "long": "integer", "short": "integer",
               "float": "double", "token": "string",
               "normalizedString": "string"}
    return aliases.get(name, name)


def parse_schema(text: str) -> Schema:
    """Parse schema text into the object model."""
    tree = build_tree(parse(text, strip_whitespace=True))
    root = tree.document_element()  # type: ignore[union-attr]
    if (root.local, root.uri) != ("schema", XSD_NS):
        raise SchemaError("document element must be xs:schema")
    schema = Schema()
    anonymous = 0

    def parse_particle_children(container: ElementNode) -> list[Particle]:
        particles = []
        for child in container.elements():
            if child.uri != XSD_NS:
                raise SchemaError(f"unexpected element {child.local!r}")
            if child.local == "element":
                particles.append(_occurs(child, Particle(ElementRef(
                    _require(child, "name") if child.get_attribute("name")
                    else _require(child, "ref")))))
                # Inline declarations register globally too.
                if child.get_attribute("name"):
                    declare_element(child)
            elif child.local == "sequence":
                particles.append(_occurs(child, Particle(
                    Sequence(parse_particle_children(child)))))
            elif child.local == "choice":
                particles.append(_occurs(child, Particle(
                    Choice(parse_particle_children(child)))))
            else:
                raise SchemaError(
                    f"unsupported content construct xs:{child.local}")
        return particles

    def parse_complex_type(node: ElementNode, name: str) -> ComplexType:
        ctype = ComplexType(name)
        for child in node.elements():
            if child.local == "attribute":
                type_attr = child.get_attribute("type")
                use_attr = child.get_attribute("use")
                ctype.attributes.append(AttributeDecl(
                    _require(child, "name"),
                    _simple(type_attr.value if type_attr else "string"),
                    required=(use_attr is not None
                              and use_attr.value == "required")))
            elif child.local == "sequence":
                ctype.content = Particle(
                    Sequence(parse_particle_children(child)))
            elif child.local == "choice":
                ctype.content = Particle(
                    Choice(parse_particle_children(child)))
            elif child.local == "simpleContent":
                ext = child.elements("extension")
                base = _simple(_require(ext[0], "base")) if ext else "string"
                ctype.content = base
                if ext:
                    for attr in ext[0].elements("attribute"):
                        ctype.attributes.append(AttributeDecl(
                            _require(attr, "name"),
                            _simple(attr.get_attribute("type").value
                                    if attr.get_attribute("type")
                                    else "string"),
                            required=(attr.get_attribute("use") is not None
                                      and attr.get_attribute("use").value
                                      == "required")))
            else:
                raise SchemaError(f"unsupported xs:{child.local} "
                                  f"in complexType")
        return ctype

    def declare_element(node: ElementNode) -> None:
        nonlocal anonymous
        name = _require(node, "name")
        type_attr = node.get_attribute("type")
        inline = node.elements("complexType")
        if type_attr is not None:
            schema.elements[name] = ElementDecl(name,
                                                _strip_xs(type_attr.value))
        elif inline:
            anonymous += 1
            type_name = f"#anon{anonymous}.{name}"
            schema.types[type_name] = parse_complex_type(inline[0], type_name)
            schema.elements[name] = ElementDecl(name, type_name)
        else:
            schema.elements[name] = ElementDecl(name, "string")

    for child in root.elements():
        if child.uri != XSD_NS:
            raise SchemaError(f"unexpected element {child.local!r}")
        if child.local == "element":
            declare_element(child)
        elif child.local == "complexType":
            name = _require(child, "name")
            schema.types[name] = parse_complex_type(child, name)
        else:
            raise SchemaError(f"unsupported top-level xs:{child.local}")

    # Referential integrity: every element's type must resolve.
    for decl in schema.elements.values():
        if decl.type_name not in schema.types and \
                decl.type_name not in SIMPLE_TYPES:
            raise SchemaError(
                f"element {decl.name!r} references unknown type "
                f"{decl.type_name!r}")
    return schema


def _require(node: ElementNode, attr: str) -> str:
    found = node.get_attribute(attr)
    if found is None:
        raise SchemaError(f"xs:{node.local} needs a {attr!r} attribute")
    return found.value


def _simple(type_text: str | None) -> str:
    name = _strip_xs(type_text or "string")
    if name not in SIMPLE_TYPES:
        raise SchemaError(f"unsupported simple type {type_text!r}")
    return name


def _occurs(node: ElementNode, particle: Particle) -> Particle:
    min_attr = node.get_attribute("minOccurs")
    max_attr = node.get_attribute("maxOccurs")
    if min_attr is not None:
        particle.min_occurs = int(min_attr.value)
    if max_attr is not None:
        particle.max_occurs = (None if max_attr.value == "unbounded"
                               else int(max_attr.value))
    if particle.max_occurs is not None and \
            particle.max_occurs < particle.min_occurs:
        raise SchemaError("maxOccurs below minOccurs")
    return particle
