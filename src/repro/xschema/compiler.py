"""Schema compiler: content models → DFAs → binary format (Fig. 4).

"During the registration, it is compiled into a binary format like a parsing
table and stored in the catalog."  Each complex type's content model is a
regular expression over child element names; the compiler builds a Thompson
NFA, determinizes it, and serializes the resulting transition tables together
with attribute/type metadata.  The validation VM (:mod:`validator`) executes
these tables directly — the LALR-parser-generator analogy the paper draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.rdb import codec
from repro.xschema.model import (Choice, ComplexType, ElementRef, Particle,
                                 Schema, Sequence, parse_schema)

_MAX_BOUNDED_OCCURS = 64


# -- NFA construction --------------------------------------------------------

class _Nfa:
    def __init__(self) -> None:
        self.transitions: list[dict[str, set[int]]] = []
        self.epsilon: list[set[int]] = []

    def new_state(self) -> int:
        self.transitions.append({})
        self.epsilon.append(set())
        return len(self.epsilon) - 1

    def link(self, src: int, symbol: str, dst: int) -> None:
        self.transitions[src].setdefault(symbol, set()).add(dst)

    def eps(self, src: int, dst: int) -> None:
        self.epsilon[src].add(dst)


def _build_fragment(nfa: _Nfa, term) -> tuple[int, int]:
    """Thompson construction; returns (start, end) states."""
    if isinstance(term, ElementRef):
        start, end = nfa.new_state(), nfa.new_state()
        nfa.link(start, term.name, end)
        return start, end
    if isinstance(term, Sequence):
        start = nfa.new_state()
        current = start
        for particle in term.particles:
            frag_start, frag_end = _build_particle(nfa, particle)
            nfa.eps(current, frag_start)
            current = frag_end
        end = nfa.new_state()
        nfa.eps(current, end)
        return start, end
    if isinstance(term, Choice):
        start, end = nfa.new_state(), nfa.new_state()
        if not term.particles:
            raise SchemaError("empty xs:choice")
        for particle in term.particles:
            frag_start, frag_end = _build_particle(nfa, particle)
            nfa.eps(start, frag_start)
            nfa.eps(frag_end, end)
        return start, end
    raise SchemaError(f"unknown content term {term!r}")


def _build_particle(nfa: _Nfa, particle: Particle) -> tuple[int, int]:
    lo, hi = particle.min_occurs, particle.max_occurs
    if hi is not None and hi > _MAX_BOUNDED_OCCURS:
        raise SchemaError(
            f"maxOccurs {hi} exceeds the supported bound "
            f"{_MAX_BOUNDED_OCCURS}")
    start = nfa.new_state()
    current = start
    # Mandatory copies.
    for _ in range(lo):
        frag_start, frag_end = _build_fragment(nfa, particle.term)
        nfa.eps(current, frag_start)
        current = frag_end
    end = nfa.new_state()
    if hi is None:
        # One looping copy: current --frag--> current, skippable.
        frag_start, frag_end = _build_fragment(nfa, particle.term)
        nfa.eps(current, frag_start)
        nfa.eps(frag_end, frag_start)
        nfa.eps(frag_end, end)
        nfa.eps(current, end)
    else:
        nfa.eps(current, end)
        for _ in range(hi - lo):
            frag_start, frag_end = _build_fragment(nfa, particle.term)
            nfa.eps(current, frag_start)
            nfa.eps(frag_end, end)
            current = frag_end
    return start, end


# -- determinization ------------------------------------------------------------

@dataclass
class Dfa:
    """Deterministic content-model automaton."""

    start: int
    accepting: set[int]
    #: transitions[state] maps child element name -> next state
    transitions: list[dict[str, int]] = field(default_factory=list)

    def step(self, state: int, symbol: str) -> int | None:
        return self.transitions[state].get(symbol)

    def accepts_empty_tail(self, state: int) -> bool:
        return state in self.accepting


def _determinize(nfa: _Nfa, start: int, end: int) -> Dfa:
    def closure(states: frozenset[int]) -> frozenset[int]:
        out = set(states)
        work = list(states)
        while work:
            state = work.pop()
            for nxt in nfa.epsilon[state]:
                if nxt not in out:
                    out.add(nxt)
                    work.append(nxt)
        return frozenset(out)

    start_set = closure(frozenset({start}))
    index: dict[frozenset[int], int] = {start_set: 0}
    dfa = Dfa(0, set(), [{}])
    if end in start_set:
        dfa.accepting.add(0)
    work = [start_set]
    while work:
        current = work.pop()
        current_no = index[current]
        symbols: dict[str, set[int]] = {}
        for state in current:
            for symbol, targets in nfa.transitions[state].items():
                symbols.setdefault(symbol, set()).update(targets)
        for symbol, targets in sorted(symbols.items()):
            target_set = closure(frozenset(targets))
            if target_set not in index:
                index[target_set] = len(dfa.transitions)
                dfa.transitions.append({})
                if end in target_set:
                    dfa.accepting.add(index[target_set])
                work.append(target_set)
            dfa.transitions[current_no][symbol] = index[target_set]
    return dfa


# -- compiled schema ---------------------------------------------------------------

@dataclass
class CompiledType:
    name: str
    #: "" for empty content, a simple-type name for simple content, or None
    #: when ``dfa`` drives element content.
    simple_content: str | None
    attributes: list[tuple[str, str, bool]]  # (name, simple type, required)
    dfa: Dfa | None


@dataclass
class CompiledSchema:
    """The loaded binary schema the validation VM executes."""

    elements: dict[str, str]          # element name -> type name
    types: dict[str, CompiledType]

    def type_of_element(self, name: str) -> CompiledType | None:
        type_name = self.elements.get(name)
        if type_name is None:
            return None
        found = self.types.get(type_name)
        if found is None:
            # A simple-typed element: synthesize a text-only type.
            return CompiledType(type_name, type_name, [], None)
        return found


def compile_parsed(schema: Schema) -> CompiledSchema:
    """Compile a parsed schema to its executable form."""
    compiled = CompiledSchema(
        {name: decl.type_name for name, decl in schema.elements.items()},
        {})
    for name, ctype in schema.types.items():
        compiled.types[name] = _compile_type(ctype)
    return compiled


def _compile_type(ctype: ComplexType) -> CompiledType:
    attributes = [(a.name, a.simple_type, a.required)
                  for a in ctype.attributes]
    if ctype.content is None:
        return CompiledType(ctype.name, "", attributes, None)
    if isinstance(ctype.content, str):
        return CompiledType(ctype.name, ctype.content, attributes, None)
    nfa = _Nfa()
    start, end = _build_particle(nfa, ctype.content)
    dfa = _determinize(nfa, start, end)
    return CompiledType(ctype.name, None, attributes, dfa)


# -- binary format ----------------------------------------------------------------------

_MAGIC = b"RXSC\x01"


def serialize_compiled(compiled: CompiledSchema) -> bytes:
    out = bytearray(_MAGIC)
    codec.write_uvarint(out, len(compiled.elements))
    for name, type_name in sorted(compiled.elements.items()):
        codec.write_str(out, name)
        codec.write_str(out, type_name)
    codec.write_uvarint(out, len(compiled.types))
    for name, ctype in sorted(compiled.types.items()):
        codec.write_str(out, name)
        codec.write_str(out, "" if ctype.simple_content is None
                        else "S" + ctype.simple_content)
        codec.write_uvarint(out, len(ctype.attributes))
        for attr_name, attr_type, required in ctype.attributes:
            codec.write_str(out, attr_name)
            codec.write_str(out, attr_type)
            out.append(1 if required else 0)
        if ctype.dfa is None:
            out.append(0)
            continue
        out.append(1)
        dfa = ctype.dfa
        codec.write_uvarint(out, len(dfa.transitions))
        codec.write_uvarint(out, dfa.start)
        codec.write_uvarint(out, len(dfa.accepting))
        for state in sorted(dfa.accepting):
            codec.write_uvarint(out, state)
        for transitions in dfa.transitions:
            codec.write_uvarint(out, len(transitions))
            for symbol, target in sorted(transitions.items()):
                codec.write_str(out, symbol)
                codec.write_uvarint(out, target)
    return bytes(out)


def deserialize_compiled(data: bytes) -> CompiledSchema:
    if not data.startswith(_MAGIC):
        raise SchemaError("not a compiled schema blob")
    pos = len(_MAGIC)
    n_elements, pos = codec.read_uvarint(data, pos)
    elements = {}
    for _ in range(n_elements):
        name, pos = codec.read_str(data, pos)
        type_name, pos = codec.read_str(data, pos)
        elements[name] = type_name
    n_types, pos = codec.read_uvarint(data, pos)
    types: dict[str, CompiledType] = {}
    for _ in range(n_types):
        name, pos = codec.read_str(data, pos)
        content_tag, pos = codec.read_str(data, pos)
        # "S<type>" marks simple (or empty, "S") content; "" means the DFA
        # drives element content.
        simple_content = content_tag[1:] if content_tag.startswith("S") \
            else None
        n_attrs, pos = codec.read_uvarint(data, pos)
        attributes = []
        for _ in range(n_attrs):
            attr_name, pos = codec.read_str(data, pos)
            attr_type, pos = codec.read_str(data, pos)
            required = bool(data[pos])
            pos += 1
            attributes.append((attr_name, attr_type, required))
        has_dfa = data[pos]
        pos += 1
        dfa = None
        if has_dfa:
            n_states, pos = codec.read_uvarint(data, pos)
            start, pos = codec.read_uvarint(data, pos)
            n_accepting, pos = codec.read_uvarint(data, pos)
            accepting = set()
            for _ in range(n_accepting):
                state, pos = codec.read_uvarint(data, pos)
                accepting.add(state)
            transitions: list[dict[str, int]] = []
            for _ in range(n_states):
                n_edges, pos = codec.read_uvarint(data, pos)
                edges = {}
                for _ in range(n_edges):
                    symbol, pos = codec.read_str(data, pos)
                    target, pos = codec.read_uvarint(data, pos)
                    edges[symbol] = target
                transitions.append(edges)
            dfa = Dfa(start, accepting, transitions)
        types[name] = CompiledType(name, simple_content, attributes, dfa)
    return CompiledSchema(elements, types)


def compile_schema(text: str) -> bytes:
    """Registration-time pipeline: parse → compile → binary blob."""
    return serialize_compiled(compile_parsed(parse_schema(text)))
