"""XPath value index definitions (§3.3).

"Users can create XPath value indexes on frequently searched elements or
attributes by specifying a simple XPath expression without predicates, such
as ``/catalog//productname``, and a data type for the key values."  Key
values are converted from the *string values* of the nodes the path
identifies; entries are ``(keyval, DocID, NodeID, RID)``.

Numeric indexes use DECFLOAT — "we use decimal floating-point number based on
the new IEEE 754r for numeric value indexing, which provides precise values
within its range" (§4.3) — through the relational key encodings of
:mod:`repro.rdb.values`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TypeError_, XPathUnsupportedError
from repro.lang import ast
from repro.lang.parser import parse_path
from repro.rdb.tablespace import Rid
from repro.rdb.values import SqlType, key_encode

#: SQL types usable as value-index key types.
KEY_TYPES = {
    "double": SqlType.DOUBLE,
    "decfloat": SqlType.DECFLOAT,
    "string": SqlType.VARCHAR,
    "varchar": SqlType.VARCHAR,
    "date": SqlType.DATE,
    "bigint": SqlType.BIGINT,
}


@dataclass(frozen=True)
class IndexHit:
    """One decoded value-index entry (sans key)."""

    docid: int
    node_id: bytes
    rid: Rid


class XPathIndexDefinition:
    """A validated XPath value index definition."""

    def __init__(self, name: str, path_text: str, key_type: str,
                 namespaces: dict[str, str] | None = None) -> None:
        self.name = name
        self.path_text = path_text
        type_key = key_type.strip().lower()
        if type_key not in KEY_TYPES:
            raise TypeError_(
                f"index key type {key_type!r}; expected one of "
                f"{sorted(KEY_TYPES)}")
        self.key_type_name = type_key
        self.key_type = KEY_TYPES[type_key]
        self.path = parse_path(path_text, namespaces)
        self._validate_path(self.path)

    @staticmethod
    def _validate_path(path: ast.LocationPath) -> None:
        if not path.absolute:
            raise XPathUnsupportedError(
                "index paths must be absolute (start with / or //)")
        if not path.steps:
            raise XPathUnsupportedError("index paths need at least one step")
        for step in path.steps:
            if step.predicates:
                raise XPathUnsupportedError(
                    "index paths must not contain predicates (§3.3)")
            if step.axis not in (ast.Axis.CHILD, ast.Axis.DESCENDANT,
                                 ast.Axis.ATTRIBUTE,
                                 ast.Axis.DESCENDANT_OR_SELF):
                raise XPathUnsupportedError(
                    f"axis {step.axis.value!r} in an index path")
            if isinstance(step.test, ast.KindTest):
                raise XPathUnsupportedError(
                    "kind tests are not allowed in index paths")

    def convert_key(self, string_value: str) -> bytes | None:
        """Convert a node string value to its memcomparable key.

        Values that do not convert to the key type (e.g. non-numeric text
        under a ``double`` index) yield ``None`` and are skipped — indexed
        per the engine's "index what converts" policy.
        """
        try:
            return key_encode(self.key_type, string_value)
        except TypeError_:
            return None

    def spec(self) -> dict[str, str]:
        """Catalog representation."""
        return {"path": self.path_text, "type": self.key_type_name}

    def __repr__(self) -> str:
        return (f"XPathIndexDefinition({self.name!r}, {self.path_text!r}, "
                f"{self.key_type_name})")


def encode_entry_value(docid: int, node_id: bytes, rid: Rid) -> bytes:
    """Entry payload: DocID(8) || NodeID || RID(6).

    RID is fixed-width at the tail, so the variable-length NodeID decodes
    unambiguously; byte order of payloads equals (DocID, document order).
    """
    return docid.to_bytes(8, "big") + node_id + rid.to_bytes()


def decode_entry_value(payload: bytes) -> IndexHit:
    docid = int.from_bytes(payload[:8], "big")
    rid = Rid.from_bytes(payload[-6:])
    return IndexHit(docid, payload[8:-6], rid)
