"""XPath value index manager (§3.3).

"Initial XPath index support in System R/X uses and extends the same B+tree
infrastructure for relational indexes" — each value index is one B+tree whose
entries are ``(keyval, DocID, NodeID, RID)``.  Unlike relational indexes
"there may be zero, one or more index entries per record"; the manager plugs
into the XML store as a :class:`~repro.xmlstore.store.RecordObserver` so keys
are generated per record at insert/update/delete time.
"""

from __future__ import annotations

import datetime as _dt
from decimal import Decimal
from typing import TYPE_CHECKING, Iterator

from repro.errors import DuplicateKeyError
from repro.rdb.btree import BTree
from repro.rdb.buffer import BufferPool
from repro.rdb.tablespace import Rid
from repro.rdb.values import key_encode
from repro.xdm.names import NameTable
from repro.xmlstore.store import XmlStore

from repro.indexes.definition import (IndexHit, XPathIndexDefinition,
                                      decode_entry_value, encode_entry_value)
from repro.indexes.keygen import generate_keys

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import ShardContext


class XPathValueIndex:
    """One XPath value index attached to an :class:`XmlStore`."""

    def __init__(self, definition: XPathIndexDefinition, pool: BufferPool,
                 names: NameTable,
                 context: "ShardContext | None" = None) -> None:
        self.definition = definition
        self.names = names
        self.tree = BTree(pool, name=f"vix.{definition.name}", unique=False,
                          context=context)
        self.keys_generated = 0

    # -- RecordObserver protocol --------------------------------------------

    def record_added(self, docid: int, record: bytes, rid: Rid) -> None:
        for key, item in generate_keys(self.definition, record, self.names):
            assert item.node_id is not None
            try:
                self.tree.insert(
                    key, encode_entry_value(docid, item.node_id, rid))
            except DuplicateKeyError:  # pragma: no cover - ids are unique
                pass
            self.keys_generated += 1

    def record_removed(self, docid: int, record: bytes, rid: Rid) -> None:
        for key, item in generate_keys(self.definition, record, self.names):
            assert item.node_id is not None
            self.tree.delete(
                key, encode_entry_value(docid, item.node_id, rid))

    # -- attach / backfill -------------------------------------------------------

    def attach(self, store: XmlStore) -> "XPathValueIndex":
        """Register for maintenance and backfill from existing records."""
        for docid in store.docids():
            for rid in store.node_index.record_rids(docid):
                self.record_added(docid, store.read_record(rid), rid)
        store.observers.append(self)
        return self

    # -- search -----------------------------------------------------------------

    def _encode_probe(self, value: object) -> bytes:
        return key_encode(self.definition.key_type, self._coerce(value))

    def _coerce(self, value: object) -> object:
        if isinstance(value, (str, bytes, int, float, Decimal, _dt.date)):
            return value
        return str(value)

    def lookup_eq(self, value: object) -> Iterator[IndexHit]:
        """All entries with key == value, in (DocID, NodeID) order."""
        key = self._encode_probe(value)
        for _key, payload in self.tree.scan(low=key, high=key,
                                            high_inclusive=True):
            yield decode_entry_value(payload)

    def lookup_range(self, low: object | None = None,
                     high: object | None = None,
                     low_inclusive: bool = True,
                     high_inclusive: bool = True) -> Iterator[IndexHit]:
        """Range scan by key value."""
        low_key = self._encode_probe(low) if low is not None else None
        high_key = self._encode_probe(high) if high is not None else None
        for _key, payload in self.tree.scan(low=low_key, high=high_key,
                                            low_inclusive=low_inclusive,
                                            high_inclusive=high_inclusive):
            yield decode_entry_value(payload)

    def lookup_op(self, op: str, value: object) -> Iterator[IndexHit]:
        """Entries satisfying ``key op value`` for a comparison operator."""
        if op == "=":
            return self.lookup_eq(value)
        if op == "<":
            return self.lookup_range(high=value, high_inclusive=False)
        if op == "<=":
            return self.lookup_range(high=value, high_inclusive=True)
        if op == ">":
            return self.lookup_range(low=value, low_inclusive=False)
        if op == ">=":
            return self.lookup_range(low=value, low_inclusive=True)
        raise ValueError(f"operator {op!r} is not index-sargable")

    # -- introspection ---------------------------------------------------------------

    @property
    def entry_count(self) -> int:
        return self.tree.entry_count

    def size_stats(self) -> dict[str, int]:
        return {
            "entries": self.tree.entry_count,
            "pages": self.tree.page_count,
            "height": self.tree.height(),
        }
