"""Path containment test for index matching (§4.3).

"Since we do not keep complete path information in an XPath value index, when
the XPath expression of the index *contains* a query XPath expression but is
not equivalent to it, we use the index for filtering, and re-evaluation of
the query XPath expression on the document data is necessary."

For the linear child/descendant/attribute paths that index definitions allow,
containment is decided by a containment mapping (a homomorphism) computed by
dynamic programming.  The mapping is a sound witness — if one exists,
containment holds; the handful of wildcard corner cases where homomorphism is
incomplete only cost a missed index opportunity, never a wrong answer.
"""

from __future__ import annotations

import enum
from functools import lru_cache

from repro.errors import XPathUnsupportedError
from repro.lang import ast


class PathRelation(enum.Enum):
    """How an index path relates to a query value path (Table 2)."""

    EXACT = "exact"          # same path language: DocID/NodeID list access
    CONTAINS = "contains"    # index ⊇ query: filtering access
    NONE = "none"            # index unusable for this predicate


def _linear_steps(path: ast.LocationPath, shrink_ok: bool = True) -> tuple:
    """Normalize a predicate-free linear path into (edge, name) pairs.

    Edges: "child" | "descendant" (attribute steps keep a marker so an
    element step never matches an attribute step).

    A ``//`` surviving rewrite before an attribute step (descendant-OR-SELF)
    is folded to a plain descendant edge.  That *shrinks* the language
    (drops the self-attribute case), which is sound only for the index side
    of a containment check; with ``shrink_ok=False`` (the query side) the
    construct is rejected instead, so the planner falls back to a scan.
    """
    steps = []
    pending_descendant = False
    for step in path.steps:
        if step.predicates:
            raise XPathUnsupportedError(
                "containment test requires predicate-free paths")
        if step.axis is ast.Axis.DESCENDANT_OR_SELF and \
                isinstance(step.test, ast.KindTest) and \
                step.test.kind == "node":
            if not shrink_ok:
                raise XPathUnsupportedError(
                    "descendant-or-self before an attribute step cannot be "
                    "index-matched on the query side")
            pending_descendant = True
            continue
        if not isinstance(step.test, ast.NameTest):
            raise XPathUnsupportedError(
                "containment test requires name tests")
        if step.axis is ast.Axis.CHILD:
            edge, kind = "child", "element"
        elif step.axis is ast.Axis.DESCENDANT:
            edge, kind = "descendant", "element"
        elif step.axis is ast.Axis.ATTRIBUTE:
            edge, kind = "child", "attribute"
        elif step.axis is ast.Axis.DESCENDANT_OR_SELF:
            edge, kind = "descendant", "element"
        else:
            raise XPathUnsupportedError(
                f"axis {step.axis.value!r} in a linear path")
        if pending_descendant:
            edge = "descendant"
            pending_descendant = False
        name = (step.test.local, step.test.uri)
        steps.append((edge, kind, name))
    if pending_descendant:
        raise XPathUnsupportedError("trailing // in a linear path")
    return tuple(steps)


def _name_covers(index_name: tuple[str, str | None],
                 query_name: tuple[str, str | None]) -> bool:
    """Does the index step's name test match everything the query's does?"""
    i_local, i_uri = index_name
    q_local, q_uri = query_name
    if i_local == "*":
        # Bare * covers any name; p:* covers only its own namespace.
        return i_uri is None or i_uri == "*" or i_uri == q_uri
    return i_local == q_local and i_uri == q_uri


def contains(index_path: ast.LocationPath,
             query_path: ast.LocationPath) -> bool:
    """Does ``index_path`` match a superset of ``query_path``'s matches?"""
    index_steps = _linear_steps(index_path, shrink_ok=True)
    query_steps = _linear_steps(query_path, shrink_ok=False)
    if not index_steps or not query_steps:
        return False

    @lru_cache(maxsize=None)
    def mapped(i: int, j: int) -> bool:
        """Can index step i map to query step j (suffixes align to ends)?"""
        i_edge, i_kind, i_name = index_steps[i]
        q_edge, q_kind, q_name = query_steps[j]
        if i_kind != q_kind:
            return False
        if not _name_covers(i_name, q_name):
            return False
        if i == len(index_steps) - 1:
            return j == len(query_steps) - 1  # leaves must align
        next_edge = index_steps[i + 1][0]
        if next_edge == "child":
            # Consecutive in the instance: the query's next step must be an
            # immediate-child step too.
            return (j + 1 < len(query_steps)
                    and query_steps[j + 1][0] == "child"
                    and mapped(i + 1, j + 1))
        # Descendant: any later query step may host the next index step.
        return any(mapped(i + 1, j2)
                   for j2 in range(j + 1, len(query_steps)))

    first_edge = index_steps[0][0]
    if first_edge == "child":
        return query_steps[0][0] == "child" and mapped(0, 0)
    return any(mapped(0, j) for j in range(len(query_steps)))


def relate(index_path: ast.LocationPath,
           query_path: ast.LocationPath) -> PathRelation:
    """Classify the index/query path relationship (Table 2 cases)."""
    try:
        forward = contains(index_path, query_path)
    except XPathUnsupportedError:
        return PathRelation.NONE
    if not forward:
        return PathRelation.NONE
    try:
        backward = contains(query_path, index_path)
    except XPathUnsupportedError:
        backward = False
    return PathRelation.EXACT if backward else PathRelation.CONTAINS


def child_only_suffix_depth(query_path: ast.LocationPath,
                            anchor_steps: int) -> int | None:
    """Levels between the anchor step and the value node, when computable.

    NodeID-level access derives the anchor node's ID from the value node's ID
    by stripping that many levels — possible only when every step after the
    anchor uses the child or attribute axis.  Returns ``None`` otherwise.
    """
    suffix = query_path.steps[anchor_steps:]
    for step in suffix:
        if step.axis not in (ast.Axis.CHILD, ast.Axis.ATTRIBUTE):
            return None
    return len(suffix)
