"""Per-record index key generation (§3.2-§3.3).

"Index keys for the node ID index and XPath value indexes are generated per
record, which fits existing infrastructure very well."  A record is
self-contained: its header carries the context path (ancestor element names)
and in-scope namespaces, so the index path can be evaluated against a single
record — ancestors are replayed as synthetic events, proxies are *not*
followed (packed-out subtrees produce their keys when their own records are
processed).  "A simplified version of our streaming XPath algorithm
(QuickXScan) is used to evaluate the XPath on each record."

Known simplification (documented in DESIGN.md): a matched element whose text
was split into a packed-out record contributes only the text present in its
own record to the key value; the packer keeps text with its parent, so this
arises only for oversized subtrees.
"""

from __future__ import annotations

from typing import Iterator

from repro.xdm.events import EventKind, SaxEvent
from repro.xdm.names import NameTable
from repro.xmlstore import format as fmt
from repro.xpath.qtree import QueryTree, compile_query
from repro.xpath.quickxscan import QuickXScan
from repro.xpath.values import Item

from repro.indexes.definition import XPathIndexDefinition


def record_local_events(record: bytes, names: NameTable
                        ) -> Iterator[SaxEvent]:
    """Virtual SAX events for one record only (ancestors synthesized,
    proxies skipped)."""
    header, body_start = fmt.decode_header(record)
    yield SaxEvent(EventKind.DOC_START)
    ancestors = [names.name(name_id) for name_id in header.context_path]
    for local, uri in ancestors:
        yield SaxEvent(EventKind.ELEM_START, local=local, uri=uri)
    # In-scope namespaces of the context node apply to the whole record.
    for prefix, uri_id in header.namespaces:
        uri = names.uri(uri_id)
        if uri:
            yield SaxEvent(EventKind.NS, local=prefix, value=uri)

    stack: list[tuple] = [("span", body_start, len(record),
                           header.context_id)]
    view = memoryview(record)
    while stack:
        item = stack.pop()
        if item[0] == "end":
            yield SaxEvent(EventKind.ELEM_END, local=item[1], uri=item[2])
            continue
        _, pos, end, parent = item
        if pos >= end:
            continue
        entry = fmt.parse_entry(view, pos)
        if entry.next_pos < end:
            stack.append(("span", entry.next_pos, end, parent))
        if entry.kind == fmt.EntryKind.PROXY:
            continue  # per-record generation: never follow proxies
        abs_id = parent + entry.rel_id
        if entry.kind == fmt.EntryKind.ELEMENT:
            local, uri = names.name(entry.name_id)
            yield SaxEvent(EventKind.ELEM_START, local=local, uri=uri,
                           node_id=abs_id)
            stack.append(("end", local, uri))
            stack.append(("span", entry.content_start, entry.content_end,
                          abs_id))
        elif entry.kind == fmt.EntryKind.TEXT:
            yield SaxEvent(EventKind.TEXT, value=entry.text, node_id=abs_id)
        elif entry.kind == fmt.EntryKind.ATTRIBUTE:
            local, uri = names.name(entry.name_id)
            yield SaxEvent(EventKind.ATTR, local=local, uri=uri,
                           value=entry.text, node_id=abs_id)
        elif entry.kind == fmt.EntryKind.NAMESPACE:
            yield SaxEvent(EventKind.NS, local=entry.target,
                           value=names.uri(entry.uri_id), node_id=abs_id)
        elif entry.kind == fmt.EntryKind.COMMENT:
            yield SaxEvent(EventKind.COMMENT, value=entry.text,
                           node_id=abs_id)
        else:  # PI
            yield SaxEvent(EventKind.PI, local=entry.target,
                           value=entry.text, node_id=abs_id)

    for local, uri in reversed(ancestors):
        yield SaxEvent(EventKind.ELEM_END, local=local, uri=uri)
    yield SaxEvent(EventKind.DOC_END)


def generate_keys(definition: XPathIndexDefinition, record: bytes,
                  names: NameTable) -> list[tuple[bytes, Item]]:
    """Evaluate the index path over one record.

    Returns ``(encoded_key, item)`` pairs — zero, one or more per record
    (the extended-index property the index manager must support, §3.3).
    Nodes whose value does not convert to the key type are skipped.
    """
    query = _query_for(definition)
    items = QuickXScan(query).run(record_local_events(record, names))
    out = []
    for item in items:
        if item.node_id is None:
            continue  # a synthesized ancestor matched; it has no identity here
        key = definition.convert_key(item.string_value())
        if key is not None:
            out.append((key, item))
    return out


def _query_for(definition: XPathIndexDefinition) -> QueryTree:
    # Compile once per definition and cache on the definition itself.
    query = getattr(definition, "_compiled_query", None)
    if query is None:
        query = compile_query(definition.path, collect_result_values=True)
        definition._compiled_query = query  # type: ignore[attr-defined]
    return query
