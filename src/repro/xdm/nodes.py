"""In-memory XQuery-data-model trees.

"There are seven kinds of nodes in the XQuery data model" (§3.1): document,
element, attribute, text, namespace, processing-instruction and comment — all
seven are represented here.  In-memory trees are *not* the storage format
(the engine packs records directly from token streams, §3.2); they serve as
query results, constructed values, the DOM-baseline representation, and test
fixtures.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional

from repro.errors import XmlError


class NodeKind(enum.Enum):
    """The seven XQuery-data-model node kinds."""

    DOCUMENT = "document"
    ELEMENT = "element"
    ATTRIBUTE = "attribute"
    TEXT = "text"
    NAMESPACE = "namespace"
    PROCESSING_INSTRUCTION = "processing-instruction"
    COMMENT = "comment"


class Node:
    """Base class of all tree nodes."""

    kind: NodeKind

    def __init__(self) -> None:
        self.parent: Optional[Node] = None
        #: Dewey absolute node ID once assigned (stored trees / results).
        self.node_id: bytes | None = None

    # -- XDM accessors ------------------------------------------------------

    def string_value(self) -> str:
        """The XDM string value (concatenated descendant text for
        documents/elements; the literal value otherwise)."""
        raise NotImplementedError

    def children(self) -> list["Node"]:
        """Child nodes in document order (empty for leaves)."""
        return []

    def descendants_or_self(self) -> Iterator["Node"]:
        """Pre-order walk: self, then attributes/namespaces, then children."""
        yield self
        for child in self._ordered_members():
            yield from child.descendants_or_self()

    def _ordered_members(self) -> list["Node"]:
        return self.children()

    @property
    def name(self) -> tuple[str, str] | None:
        """``(local, uri)`` for named kinds, else None."""
        return None

    def root(self) -> "Node":
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def __repr__(self) -> str:
        name = self.name
        label = name[0] if name else ""
        return f"<{self.kind.value} {label}>"


class DocumentNode(Node):
    kind = NodeKind.DOCUMENT

    def __init__(self) -> None:
        super().__init__()
        self._children: list[Node] = []

    def append(self, child: "Node") -> "Node":
        if child.kind in (NodeKind.ATTRIBUTE, NodeKind.NAMESPACE):
            raise XmlError(f"{child.kind.value} cannot be a document child")
        child.parent = self
        self._children.append(child)
        return child

    def children(self) -> list[Node]:
        return list(self._children)

    def document_element(self) -> "ElementNode":
        for child in self._children:
            if isinstance(child, ElementNode):
                return child
        raise XmlError("document has no element child")

    def string_value(self) -> str:
        return "".join(c.string_value() for c in self._children
                       if c.kind in (NodeKind.ELEMENT, NodeKind.TEXT))


class ElementNode(Node):
    kind = NodeKind.ELEMENT

    def __init__(self, local: str, uri: str = "") -> None:
        super().__init__()
        self.local = local
        self.uri = uri
        self.attributes: list[AttributeNode] = []
        self.namespaces: list[NamespaceNode] = []
        self._children: list[Node] = []
        #: Type annotation (name id of the schema type) when validated.
        self.type_annotation: str | None = None

    @property
    def name(self) -> tuple[str, str]:
        return (self.local, self.uri)

    def set_attribute(self, local: str, value: str, uri: str = "") -> "AttributeNode":
        for attr in self.attributes:
            if (attr.local, attr.uri) == (local, uri):
                raise XmlError(f"duplicate attribute {local!r}")
        attr = AttributeNode(local, value, uri)
        attr.parent = self
        self.attributes.append(attr)
        return attr

    def get_attribute(self, local: str, uri: str = "") -> Optional["AttributeNode"]:
        for attr in self.attributes:
            if (attr.local, attr.uri) == (local, uri):
                return attr
        return None

    def declare_namespace(self, prefix: str, uri: str) -> "NamespaceNode":
        ns = NamespaceNode(prefix, uri)
        ns.parent = self
        self.namespaces.append(ns)
        return ns

    def append(self, child: "Node") -> "Node":
        if child.kind is NodeKind.ATTRIBUTE:
            raise XmlError("attributes are not element children; use set_attribute")
        if child.kind is NodeKind.DOCUMENT:
            raise XmlError("a document node cannot be nested")
        child.parent = self
        self._children.append(child)
        return child

    def children(self) -> list[Node]:
        return list(self._children)

    def _ordered_members(self) -> list[Node]:
        # Attributes precede children in the traversal order the storage
        # layer uses for node-ID assignment.
        return [*self.namespaces, *self.attributes, *self._children]

    def string_value(self) -> str:
        return "".join(c.string_value() for c in self._children
                       if c.kind in (NodeKind.ELEMENT, NodeKind.TEXT))

    def elements(self, local: str | None = None) -> list["ElementNode"]:
        """Child elements, optionally filtered by local name."""
        return [c for c in self._children
                if isinstance(c, ElementNode) and (local is None or c.local == local)]

    def text(self) -> str:
        """Shortcut for the concatenated text value."""
        return self.string_value()


class AttributeNode(Node):
    kind = NodeKind.ATTRIBUTE

    def __init__(self, local: str, value: str, uri: str = "") -> None:
        super().__init__()
        self.local = local
        self.uri = uri
        self.value = value

    @property
    def name(self) -> tuple[str, str]:
        return (self.local, self.uri)

    def string_value(self) -> str:
        return self.value


class TextNode(Node):
    kind = NodeKind.TEXT

    def __init__(self, value: str) -> None:
        super().__init__()
        self.value = value

    def string_value(self) -> str:
        return self.value


class NamespaceNode(Node):
    kind = NodeKind.NAMESPACE

    def __init__(self, prefix: str, uri: str) -> None:
        super().__init__()
        self.prefix = prefix
        self.uri = uri

    @property
    def name(self) -> tuple[str, str]:
        return (self.prefix, "")

    def string_value(self) -> str:
        return self.uri


class ProcessingInstructionNode(Node):
    kind = NodeKind.PROCESSING_INSTRUCTION

    def __init__(self, target: str, value: str) -> None:
        super().__init__()
        self.target = target
        self.value = value

    @property
    def name(self) -> tuple[str, str]:
        return (self.target, "")

    def string_value(self) -> str:
        return self.value


class CommentNode(Node):
    kind = NodeKind.COMMENT

    def __init__(self, value: str) -> None:
        super().__init__()
        self.value = value

    def string_value(self) -> str:
        return self.value


# -- convenience constructors used heavily by tests and examples -------------

def element(local: str, attrs: dict[str, str] | None = None,
            children: list[Node | str] | None = None,
            uri: str = "") -> ElementNode:
    """Build an element with attributes and children in one call."""
    node = ElementNode(local, uri)
    for name, value in (attrs or {}).items():
        node.set_attribute(name, value)
    for child in children or []:
        node.append(TextNode(child) if isinstance(child, str) else child)
    return node


def document(root: ElementNode) -> DocumentNode:
    """Wrap ``root`` in a document node."""
    doc = DocumentNode()
    doc.append(root)
    return doc


def node_count(node: Node) -> int:
    """Number of nodes in the subtree (self + attributes + descendants)."""
    return sum(1 for _ in node.descendants_or_self())
