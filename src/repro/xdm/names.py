"""Database-wide integer encoding of XML names.

"In the stored XML data, all the names for elements, attributes, and
namespaces are encoded using integers across the entire database" (§3.1).
The :class:`NameTable` interns ``(namespace-uri, local-name)`` pairs and
namespace URIs, and is persisted through the catalog so name ids are stable
across restarts.
"""

from __future__ import annotations

from repro.errors import CatalogError
from repro.rdb import codec

#: Reserved URI id meaning "no namespace".
NO_NAMESPACE = 0


class NameTable:
    """Bidirectional mapping between names and small integers."""

    def __init__(self) -> None:
        self._uri_to_id: dict[str, int] = {"": NO_NAMESPACE}
        self._uris: list[str] = [""]
        self._name_to_id: dict[tuple[int, str], int] = {}
        self._names: list[tuple[int, str]] = []

    # -- namespace URIs ----------------------------------------------------

    def intern_uri(self, uri: str) -> int:
        """Intern a namespace URI, returning its id."""
        found = self._uri_to_id.get(uri)
        if found is not None:
            return found
        uri_id = len(self._uris)
        self._uris.append(uri)
        self._uri_to_id[uri] = uri_id
        return uri_id

    def uri(self, uri_id: int) -> str:
        """The URI string for ``uri_id``."""
        try:
            return self._uris[uri_id]
        except IndexError:
            raise CatalogError(f"unknown namespace-uri id {uri_id}") from None

    # -- qualified names -----------------------------------------------------

    def intern_name(self, local: str, uri: str = "") -> int:
        """Intern a qualified name, returning its id."""
        uri_id = self.intern_uri(uri)
        key = (uri_id, local)
        found = self._name_to_id.get(key)
        if found is not None:
            return found
        name_id = len(self._names)
        self._names.append(key)
        self._name_to_id[key] = name_id
        return name_id

    def lookup_name(self, local: str, uri: str = "") -> int | None:
        """Id of an already-interned name, or None."""
        uri_id = self._uri_to_id.get(uri)
        if uri_id is None:
            return None
        return self._name_to_id.get((uri_id, local))

    def name(self, name_id: int) -> tuple[str, str]:
        """``(local, uri)`` for ``name_id``."""
        try:
            uri_id, local = self._names[name_id]
        except IndexError:
            raise CatalogError(f"unknown name id {name_id}") from None
        return local, self._uris[uri_id]

    def local_name(self, name_id: int) -> str:
        """Just the local part of ``name_id``."""
        return self.name(name_id)[0]

    @property
    def name_count(self) -> int:
        return len(self._names)

    # -- persistence ----------------------------------------------------------

    def encode(self) -> bytes:
        out = bytearray()
        codec.write_uvarint(out, len(self._uris))
        for uri in self._uris:
            codec.write_str(out, uri)
        codec.write_uvarint(out, len(self._names))
        for uri_id, local in self._names:
            codec.write_uvarint(out, uri_id)
            codec.write_str(out, local)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes | memoryview) -> "NameTable":
        table = cls.__new__(cls)
        pos = 0
        n_uris, pos = codec.read_uvarint(data, pos)
        table._uris = []
        table._uri_to_id = {}
        for uri_id in range(n_uris):
            uri, pos = codec.read_str(data, pos)
            table._uris.append(uri)
            table._uri_to_id[uri] = uri_id
        n_names, pos = codec.read_uvarint(data, pos)
        table._names = []
        table._name_to_id = {}
        for name_id in range(n_names):
            uri_id, pos = codec.read_uvarint(data, pos)
            local, pos = codec.read_str(data, pos)
            table._names.append((uri_id, local))
            table._name_to_id[(uri_id, local)] = name_id
        return table
