"""Virtual SAX: the one event vocabulary every runtime component speaks.

Figure 8's runtime attaches an *iterator* to whatever form the XML data is in
(token stream, persistent records, constructed data, in-memory sequence) and
converts each item into "a virtual SAX-like event, which is a set of
parameters required by the routines performing the task" (§4.4).  Tree
construction, serialization and XPath evaluation are all written against
:class:`SaxEvent` streams, so no unified in-memory tree is ever materialized.

Adapters provided here cover in-memory trees; the token-stream adapter lives
in :mod:`repro.xdm.tokens` and the persistent-record adapter in
:mod:`repro.xmlstore.traversal`.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator

from repro.errors import XmlError
from repro.xdm.nodes import (AttributeNode, CommentNode, DocumentNode,
                             ElementNode, Node,
                             ProcessingInstructionNode, TextNode)


class EventKind(enum.IntEnum):
    """Virtual SAX event kinds (one per token/storage item kind)."""

    DOC_START = 0
    DOC_END = 1
    ELEM_START = 2
    ELEM_END = 3
    ATTR = 4
    TEXT = 5
    NS = 6
    COMMENT = 7
    PI = 8


class SaxEvent:
    """One virtual SAX event.

    Attributes:
        kind: The :class:`EventKind`.
        local: Element/attribute local name, PI target, or namespace prefix.
        uri: Namespace URI for named events.
        value: Attribute value, text content, comment text, PI data, or the
            declared URI for NS events.
        node_id: Dewey absolute node ID when the source assigns them
            (persistent data, tree construction); ``None`` for raw streams.
    """

    __slots__ = ("kind", "local", "uri", "value", "node_id")

    def __init__(self, kind: EventKind, local: str = "", uri: str = "",
                 value: str = "", node_id: bytes | None = None) -> None:
        self.kind = kind
        self.local = local
        self.uri = uri
        self.value = value
        self.node_id = node_id

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SaxEvent):
            return NotImplemented
        return (self.kind, self.local, self.uri, self.value, self.node_id) == \
            (other.kind, other.local, other.uri, other.value, other.node_id)

    def __repr__(self) -> str:
        bits = [self.kind.name]
        if self.local:
            bits.append(self.local)
        if self.value:
            bits.append(repr(self.value[:24]))
        return f"SaxEvent({' '.join(bits)})"


def events_from_tree(node: Node, emit_document: bool = True
                     ) -> Iterator[SaxEvent]:
    """Iterator adapter for in-memory XDM trees (Fig. 8, "constructed data").

    Iterative (explicit stack) so arbitrarily deep trees do not overflow the
    Python recursion limit.
    """
    if isinstance(node, DocumentNode):
        if emit_document:
            yield SaxEvent(EventKind.DOC_START, node_id=node.node_id)
        for child in node.children():
            yield from events_from_tree(child, emit_document=False)
        if emit_document:
            yield SaxEvent(EventKind.DOC_END)
        return

    # (node, phase) stack; phase 0 = enter, 1 = leave.
    stack: list[tuple[Node, int]] = [(node, 0)]
    while stack:
        current, phase = stack.pop()
        if phase == 1:
            yield SaxEvent(EventKind.ELEM_END,
                           local=current.local, uri=current.uri)  # type: ignore[attr-defined]
            continue
        if isinstance(current, ElementNode):
            yield SaxEvent(EventKind.ELEM_START, local=current.local,
                           uri=current.uri, node_id=current.node_id)
            for ns in current.namespaces:
                yield SaxEvent(EventKind.NS, local=ns.prefix, value=ns.uri,
                               node_id=ns.node_id)
            for attr in current.attributes:
                yield SaxEvent(EventKind.ATTR, local=attr.local, uri=attr.uri,
                               value=attr.value, node_id=attr.node_id)
            stack.append((current, 1))
            for child in reversed(current.children()):
                stack.append((child, 0))
        elif isinstance(current, TextNode):
            yield SaxEvent(EventKind.TEXT, value=current.value,
                           node_id=current.node_id)
        elif isinstance(current, CommentNode):
            yield SaxEvent(EventKind.COMMENT, value=current.value,
                           node_id=current.node_id)
        elif isinstance(current, ProcessingInstructionNode):
            yield SaxEvent(EventKind.PI, local=current.target,
                           value=current.value, node_id=current.node_id)
        elif isinstance(current, AttributeNode):
            yield SaxEvent(EventKind.ATTR, local=current.local,
                           uri=current.uri, value=current.value,
                           node_id=current.node_id)
        else:
            raise XmlError(f"cannot stream node kind {current.kind}")


def build_tree(events: Iterable[SaxEvent]) -> Node:
    """Tree-construction task (Fig. 8): assemble an XDM tree from events.

    Returns the :class:`DocumentNode` when the stream is document-wrapped,
    otherwise the single top-level node.
    """
    doc: DocumentNode | None = None
    stack: list[Node] = []
    roots: list[Node] = []

    def attach(node: Node) -> None:
        if stack:
            container = stack[-1]
            if isinstance(container, (DocumentNode, ElementNode)):
                container.append(node)
            else:
                raise XmlError(f"cannot attach children to {container.kind}")
        else:
            roots.append(node)

    for event in events:
        if event.kind is EventKind.DOC_START:
            if doc is not None or stack:
                raise XmlError("unexpected document start")
            doc = DocumentNode()
            doc.node_id = event.node_id
            stack.append(doc)
        elif event.kind is EventKind.DOC_END:
            if len(stack) != 1 or stack[0] is not doc:
                raise XmlError("unbalanced document end")
            stack.pop()
        elif event.kind is EventKind.ELEM_START:
            elem = ElementNode(event.local, event.uri)
            elem.node_id = event.node_id
            attach(elem)
            stack.append(elem)
        elif event.kind is EventKind.ELEM_END:
            if not stack or not isinstance(stack[-1], ElementNode):
                raise XmlError("unbalanced element end")
            stack.pop()
        elif event.kind is EventKind.ATTR:
            if not stack or not isinstance(stack[-1], ElementNode):
                raise XmlError("attribute outside an element start")
            attr = stack[-1].set_attribute(event.local, event.value, event.uri)
            attr.node_id = event.node_id
        elif event.kind is EventKind.NS:
            if not stack or not isinstance(stack[-1], ElementNode):
                raise XmlError("namespace outside an element start")
            ns = stack[-1].declare_namespace(event.local, event.value)
            ns.node_id = event.node_id
        elif event.kind is EventKind.TEXT:
            node = TextNode(event.value)
            node.node_id = event.node_id
            attach(node)
        elif event.kind is EventKind.COMMENT:
            node = CommentNode(event.value)
            node.node_id = event.node_id
            attach(node)
        elif event.kind is EventKind.PI:
            node = ProcessingInstructionNode(event.local, event.value)
            node.node_id = event.node_id
            attach(node)
        else:  # pragma: no cover - exhaustive
            raise XmlError(f"unknown event kind {event.kind}")

    if stack:
        raise XmlError("unterminated elements in event stream")
    if doc is not None:
        return doc
    if len(roots) == 1:
        return roots[0]
    raise XmlError(f"event stream produced {len(roots)} top-level nodes")


def assign_node_ids(events: Iterable[SaxEvent]) -> Iterator[SaxEvent]:
    """Decorate a raw event stream with Dewey node IDs (insertion path).

    Namespace nodes, attributes and children of an element share one ordinal
    sequence, in the order the events arrive (NS, then attributes, then
    children) — matching the traversal order of ``Node.descendants_or_self``.
    """
    from repro.xdm import nodeid

    path: list[bytes] = []        # absolute id of each open container
    counters: list[int] = []      # next child ordinal per open container
    for event in events:
        if event.kind is EventKind.DOC_START:
            path.append(nodeid.ROOT_ID)
            counters.append(1)
            yield SaxEvent(event.kind, node_id=nodeid.ROOT_ID)
        elif event.kind is EventKind.DOC_END:
            path.pop()
            counters.pop()
            yield event
        elif event.kind is EventKind.ELEM_START:
            if not path:  # fragment without document wrapper
                path.append(nodeid.ROOT_ID)
                counters.append(1)
            abs_id = nodeid.child_id(path[-1], counters[-1])
            counters[-1] += 1
            path.append(abs_id)
            counters.append(1)
            yield SaxEvent(event.kind, event.local, event.uri,
                           node_id=abs_id)
        elif event.kind is EventKind.ELEM_END:
            path.pop()
            counters.pop()
            yield event
        elif event.kind in (EventKind.ATTR, EventKind.NS, EventKind.TEXT,
                            EventKind.COMMENT, EventKind.PI):
            abs_id = nodeid.child_id(path[-1], counters[-1])
            counters[-1] += 1
            yield SaxEvent(event.kind, event.local, event.uri, event.value,
                           node_id=abs_id)
        else:  # pragma: no cover - exhaustive
            raise XmlError(f"unknown event kind {event.kind}")
