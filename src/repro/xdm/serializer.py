"""XML serialization (Fig. 8, "serialization services").

The serializer is one of the three shared runtime tasks: it consumes virtual
SAX events from *any* iterator (token stream, persistent records, constructed
data) and produces the textual XML string, generating namespace declarations
on demand.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import XmlError
from repro.xdm.events import EventKind, SaxEvent
from repro.xdm.nodes import Node
from repro.xdm.events import events_from_tree

_XML_NS = "http://www.w3.org/XML/1998/namespace"


def _escape_text(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _escape_attr(text: str) -> str:
    return (_escape_text(text).replace('"', "&quot;")
            .replace("\n", "&#10;").replace("\t", "&#9;"))


class _PendingElement:
    __slots__ = ("local", "uri", "attrs", "declarations")

    def __init__(self, local: str, uri: str) -> None:
        self.local = local
        self.uri = uri
        self.attrs: list[tuple[str, str, str]] = []
        self.declarations: list[tuple[str, str]] = []


class Serializer:
    """Event-stream to XML text."""

    def __init__(self, omit_declaration: bool = True) -> None:
        self.omit_declaration = omit_declaration

    def serialize(self, events: Iterable[SaxEvent]) -> str:
        out: list[str] = []
        if not self.omit_declaration:
            out.append('<?xml version="1.0" encoding="UTF-8"?>')
        # Namespace scopes: prefix -> uri.
        scopes: list[dict[str, str]] = [{"": "", "xml": _XML_NS}]
        open_names: list[tuple[str, str]] = []  # (prefix, local) of open tags
        pending: _PendingElement | None = None
        generated = 0

        def flush_pending(self_closing: bool = False) -> None:
            nonlocal pending, generated
            if pending is None:
                return
            scope = dict(scopes[-1])
            declarations = list(pending.declarations)
            for prefix, uri in declarations:
                scope[prefix] = uri

            def prefix_for(uri: str, for_attribute: bool) -> str:
                nonlocal generated
                if uri == _XML_NS:
                    return "xml"
                if not for_attribute and scope.get("") == uri:
                    return ""
                if uri:
                    for known_prefix, known_uri in scope.items():
                        if known_uri == uri and known_prefix not in ("", "xml"):
                            return known_prefix
                if not for_attribute:
                    # (Re)declare the default namespace for this element.
                    declarations.append(("", uri))
                    scope[""] = uri
                    return ""
                # An attribute in a namespace needs a real prefix.
                generated += 1
                prefix = f"ns{generated}"
                declarations.append((prefix, uri))
                scope[prefix] = uri
                return prefix

            elem_prefix = prefix_for(pending.uri, for_attribute=False)
            tag = f"{elem_prefix}:{pending.local}" if elem_prefix else pending.local
            parts = [f"<{tag}"]
            attr_texts = []
            for local, uri, value in pending.attrs:
                if uri:
                    a_prefix = prefix_for(uri, for_attribute=True)
                    attr_texts.append(f'{a_prefix}:{local}="{_escape_attr(value)}"')
                else:
                    attr_texts.append(f'{local}="{_escape_attr(value)}"')
            for prefix, uri in sorted(set(declarations)):
                name = f"xmlns:{prefix}" if prefix else "xmlns"
                parts.append(f' {name}="{_escape_attr(uri)}"')
            for text in attr_texts:
                parts.append(" " + text)
            if self_closing:
                parts.append("/>")
            else:
                parts.append(">")
                scopes.append(scope)
                open_names.append((elem_prefix, pending.local))
            out.append("".join(parts))
            pending = None

        for event in events:
            if event.kind is EventKind.DOC_START or event.kind is EventKind.DOC_END:
                flush_pending()
            elif event.kind is EventKind.ELEM_START:
                flush_pending()
                pending = _PendingElement(event.local, event.uri)
            elif event.kind is EventKind.NS:
                if pending is None:
                    raise XmlError("namespace event outside an element start")
                pending.declarations.append((event.local, event.value))
            elif event.kind is EventKind.ATTR:
                if pending is None:
                    raise XmlError("attribute event outside an element start")
                pending.attrs.append((event.local, event.uri, event.value))
            elif event.kind is EventKind.ELEM_END:
                if pending is not None:
                    flush_pending(self_closing=True)
                else:
                    if not open_names:
                        raise XmlError("unbalanced element end event")
                    prefix, local = open_names.pop()
                    scopes.pop()
                    tag = f"{prefix}:{local}" if prefix else local
                    out.append(f"</{tag}>")
            elif event.kind is EventKind.TEXT:
                flush_pending()
                out.append(_escape_text(event.value))
            elif event.kind is EventKind.COMMENT:
                flush_pending()
                out.append(f"<!--{event.value}-->")
            elif event.kind is EventKind.PI:
                flush_pending()
                body = f" {event.value}" if event.value else ""
                out.append(f"<?{event.local}{body}?>")
            else:  # pragma: no cover - exhaustive
                raise XmlError(f"unknown event kind {event.kind}")
        flush_pending()
        if open_names:
            raise XmlError("unterminated elements in event stream")
        return "".join(out)


def serialize(source: Node | Iterable[SaxEvent],
              omit_declaration: bool = True) -> str:
    """Serialize an XDM tree or an event stream to XML text."""
    if isinstance(source, Node):
        source = events_from_tree(source)
    return Serializer(omit_declaration=omit_declaration).serialize(source)
