"""Non-validating XML parser (Fig. 4, right-hand path).

A from-scratch, namespace-aware parser "custom-made for high-performance"
(§3.2): a single left-to-right scan with no intermediate DOM.  Two output
interfaces are provided:

* :func:`parse` — the engine's own interface: a buffered
  :class:`~repro.xdm.tokens.TokenStream` with prefixes resolved and
  namespace/attribute order adjusted;
* :func:`parse_sax` — a per-event callback interface, kept as the baseline
  the paper argues *against* ("significant overhead of excessive procedure
  calls for event handling"); experiment E4 compares the two.

The recognized grammar covers the XML 1.0 constructs the engine stores:
prolog, DOCTYPE (skipped), elements, attributes, character data with the five
predefined entities and numeric character references, CDATA sections,
comments, and processing instructions.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import XmlParseError
from repro.xdm.events import EventKind, SaxEvent
from repro.xdm.tokens import TokenStream

_PREDEFINED_ENTITIES = {
    "amp": "&", "lt": "<", "gt": ">", "apos": "'", "quot": '"',
}

_XML_NS = "http://www.w3.org/XML/1998/namespace"

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-·")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA or ord(ch) > 0x7F


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA or ord(ch) > 0x7F


class _Scanner:
    """Cursor over the document text with positioned error reporting."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def error(self, message: str) -> XmlParseError:
        line = self.text.count("\n", 0, self.pos) + 1
        col = self.pos - (self.text.rfind("\n", 0, self.pos) + 1) + 1
        return XmlParseError(f"{message} at line {line}, column {col}")

    def eof(self) -> bool:
        return self.pos >= self.length

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_ws(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_until(self, token: str, what: str) -> str:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        chunk = self.text[self.pos:end]
        self.pos = end + len(token)
        return chunk

    def read_name(self) -> str:
        start = self.pos
        if self.eof() or not _is_name_start(self.text[self.pos]):
            raise self.error("expected a name")
        self.pos += 1
        while self.pos < self.length and _is_name_char(self.text[self.pos]):
            self.pos += 1
        return self.text[start:self.pos]


class XmlParser:
    """Namespace-aware streaming parser.

    Args:
        strip_whitespace: Drop text nodes that are entirely whitespace
            (boundary whitespace), the common data-centric configuration.
    """

    def __init__(self, strip_whitespace: bool = False) -> None:
        self.strip_whitespace = strip_whitespace

    # -- public interfaces ----------------------------------------------------

    def parse(self, text: str) -> TokenStream:
        """Parse into a buffered token stream (the engine path)."""
        stream = TokenStream()
        self._run(text, stream.append_event)
        return stream

    def parse_sax(self, text: str, handler: Callable[[SaxEvent], None]) -> None:
        """Parse invoking ``handler`` once per event (the baseline path)."""
        self._run(text, handler)

    # -- scanning core -----------------------------------------------------------

    def _run(self, text: str, emit: Callable[[SaxEvent], None]) -> None:
        scanner = _Scanner(text)
        if scanner.startswith("﻿"):
            scanner.pos += 1
        emit(SaxEvent(EventKind.DOC_START))
        self._prolog(scanner, emit)
        if scanner.eof() or scanner.peek() != "<":
            raise scanner.error("expected the document element")
        # ns_stack maps prefix -> uri; "" is the default namespace.
        ns_stack: list[dict[str, str]] = [{"": "", "xml": _XML_NS}]
        self._element(scanner, emit, ns_stack)
        self._misc(scanner, emit)
        if not scanner.eof():
            raise scanner.error("content after the document element")
        emit(SaxEvent(EventKind.DOC_END))

    def _prolog(self, scanner: _Scanner, emit) -> None:
        scanner.skip_ws()
        if scanner.startswith("<?xml"):
            scanner.read_until("?>", "XML declaration")
        while True:
            scanner.skip_ws()
            if scanner.startswith("<!--"):
                scanner.pos += 4
                self._comment(scanner, emit)
            elif scanner.startswith("<!DOCTYPE"):
                self._doctype(scanner)
            elif scanner.startswith("<?"):
                scanner.pos += 2
                self._pi(scanner, emit)
            else:
                return

    def _misc(self, scanner: _Scanner, emit) -> None:
        while True:
            scanner.skip_ws()
            if scanner.startswith("<!--"):
                scanner.pos += 4
                self._comment(scanner, emit)
            elif scanner.startswith("<?"):
                scanner.pos += 2
                self._pi(scanner, emit)
            else:
                return

    def _doctype(self, scanner: _Scanner) -> None:
        scanner.pos += len("<!DOCTYPE")
        depth = 0
        while not scanner.eof():
            ch = scanner.peek()
            scanner.pos += 1
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth == 0:
                return
        raise scanner.error("unterminated DOCTYPE")

    def _comment(self, scanner: _Scanner, emit) -> None:
        body = scanner.read_until("-->", "comment")
        if "--" in body:
            raise scanner.error("'--' inside a comment")
        emit(SaxEvent(EventKind.COMMENT, value=body))

    def _pi(self, scanner: _Scanner, emit) -> None:
        target = scanner.read_name()
        if target.lower() == "xml":
            raise scanner.error("processing instruction target 'xml' is reserved")
        body = scanner.read_until("?>", "processing instruction")
        emit(SaxEvent(EventKind.PI, local=target, value=body.lstrip()))

    def _element(self, scanner: _Scanner, emit,
                 ns_stack: list[dict[str, str]]) -> None:
        scanner.expect("<")
        qname = scanner.read_name()
        raw_attrs: list[tuple[str, str]] = []
        while True:
            scanner.skip_ws()
            ch = scanner.peek()
            if ch == ">" or scanner.startswith("/>"):
                break
            if scanner.eof():
                raise scanner.error(f"unterminated start tag <{qname}>")
            attr_name = scanner.read_name()
            scanner.skip_ws()
            scanner.expect("=")
            scanner.skip_ws()
            quote = scanner.peek()
            if quote not in "'\"":
                raise scanner.error("attribute value must be quoted")
            scanner.pos += 1
            raw_value = scanner.read_until(quote, "attribute value")
            if "<" in raw_value:
                raise scanner.error("'<' in attribute value")
            if any(name == attr_name for name, _ in raw_attrs):
                raise scanner.error(f"duplicate attribute {attr_name!r}")
            raw_attrs.append((attr_name, self._expand_entities(scanner, raw_value)))

        # Namespace processing: collect declarations first.
        scope = dict(ns_stack[-1])
        declarations: list[tuple[str, str]] = []
        plain_attrs: list[tuple[str, str]] = []
        for name, value in raw_attrs:
            if name == "xmlns":
                scope[""] = value
                declarations.append(("", value))
            elif name.startswith("xmlns:"):
                prefix = name[6:]
                if not prefix:
                    raise scanner.error("empty namespace prefix")
                scope[prefix] = value
                declarations.append((prefix, value))
            else:
                plain_attrs.append((name, value))
        ns_stack.append(scope)

        local, uri = self._resolve(scanner, qname, scope, is_attribute=False)
        emit(SaxEvent(EventKind.ELEM_START, local=local, uri=uri))
        # "namespace and attribute order adjusted" (§3.2): declarations by
        # prefix, attributes by (uri, local).
        for prefix, value in sorted(declarations):
            emit(SaxEvent(EventKind.NS, local=prefix, value=value))
        resolved_attrs = []
        seen: set[tuple[str, str]] = set()
        for name, value in plain_attrs:
            a_local, a_uri = self._resolve(scanner, name, scope, is_attribute=True)
            if (a_uri, a_local) in seen:
                raise scanner.error(
                    f"attribute {a_local!r} bound twice in namespace {a_uri!r}")
            seen.add((a_uri, a_local))
            resolved_attrs.append((a_uri, a_local, value))
        for a_uri, a_local, value in sorted(resolved_attrs):
            emit(SaxEvent(EventKind.ATTR, local=a_local, uri=a_uri, value=value))

        if scanner.startswith("/>"):
            scanner.pos += 2
            emit(SaxEvent(EventKind.ELEM_END, local=local, uri=uri))
            ns_stack.pop()
            return
        scanner.expect(">")
        self._content(scanner, emit, ns_stack)
        scanner.expect("</")
        end_qname = scanner.read_name()
        if end_qname != qname:
            raise scanner.error(
                f"mismatched end tag </{end_qname}> for <{qname}>")
        scanner.skip_ws()
        scanner.expect(">")
        emit(SaxEvent(EventKind.ELEM_END, local=local, uri=uri))
        ns_stack.pop()

    def _content(self, scanner: _Scanner, emit,
                 ns_stack: list[dict[str, str]]) -> None:
        text_parts: list[str] = []

        def flush_text() -> None:
            if not text_parts:
                return
            text = "".join(text_parts)
            text_parts.clear()
            if self.strip_whitespace and not text.strip():
                return
            emit(SaxEvent(EventKind.TEXT, value=text))

        while True:
            if scanner.eof():
                raise scanner.error("unterminated element content")
            ch = scanner.peek()
            if ch == "<":
                if scanner.startswith("</"):
                    flush_text()
                    return
                if scanner.startswith("<!--"):
                    flush_text()
                    scanner.pos += 4
                    self._comment(scanner, emit)
                elif scanner.startswith("<![CDATA["):
                    scanner.pos += 9
                    text_parts.append(scanner.read_until("]]>", "CDATA section"))
                elif scanner.startswith("<?"):
                    flush_text()
                    scanner.pos += 2
                    self._pi(scanner, emit)
                else:
                    flush_text()
                    self._element(scanner, emit, ns_stack)
            elif ch == "&":
                text_parts.append(self._entity(scanner))
            else:
                start = scanner.pos
                while (scanner.pos < scanner.length
                       and scanner.text[scanner.pos] not in "<&"):
                    scanner.pos += 1
                text_parts.append(scanner.text[start:scanner.pos])

    # -- helpers --------------------------------------------------------------

    def _resolve(self, scanner: _Scanner, qname: str, scope: dict[str, str],
                 is_attribute: bool) -> tuple[str, str]:
        if ":" in qname:
            prefix, _, local = qname.partition(":")
            if not local or ":" in local:
                raise scanner.error(f"malformed qualified name {qname!r}")
            uri = scope.get(prefix)
            if uri is None:
                raise scanner.error(f"unbound namespace prefix {prefix!r}")
            return local, uri
        if is_attribute:
            return qname, ""  # unprefixed attributes have no namespace
        return qname, scope.get("", "")

    def _entity(self, scanner: _Scanner) -> str:
        scanner.expect("&")
        body = scanner.read_until(";", "entity reference")
        return self._decode_entity(scanner, body)

    def _expand_entities(self, scanner: _Scanner, raw: str) -> str:
        if "&" not in raw:
            return raw
        parts: list[str] = []
        pos = 0
        while True:
            amp = raw.find("&", pos)
            if amp < 0:
                parts.append(raw[pos:])
                return "".join(parts)
            parts.append(raw[pos:amp])
            semi = raw.find(";", amp)
            if semi < 0:
                raise scanner.error("unterminated entity in attribute value")
            parts.append(self._decode_entity(scanner, raw[amp + 1:semi]))
            pos = semi + 1

    def _decode_entity(self, scanner: _Scanner, body: str) -> str:
        if body.startswith("#x") or body.startswith("#X"):
            try:
                return chr(int(body[2:], 16))
            except ValueError:
                raise scanner.error(f"bad character reference &{body};") from None
        if body.startswith("#"):
            try:
                return chr(int(body[1:]))
            except ValueError:
                raise scanner.error(f"bad character reference &{body};") from None
        expansion = _PREDEFINED_ENTITIES.get(body)
        if expansion is None:
            raise scanner.error(f"unknown entity &{body};")
        return expansion


def parse(text: str, strip_whitespace: bool = False) -> TokenStream:
    """Parse ``text`` into a buffered token stream."""
    return XmlParser(strip_whitespace=strip_whitespace).parse(text)


def parse_sax(text: str, handler: Callable[[SaxEvent], None],
              strip_whitespace: bool = False) -> None:
    """Parse ``text`` calling ``handler`` per event (baseline interface)."""
    XmlParser(strip_whitespace=strip_whitespace).parse_sax(text, handler)
