"""Buffered token streams (§3.2).

"To reduce the overhead, we use a proprietary parsing and validation
interface, which is the buffered token stream.  The token stream is a binary
stream of tokens with namespace prefixes resolved, namespace and attribute
order adjusted, and optionally with type annotation if a document is
Schema-validated."  (§3.2; similar to the BEA/XQRL stream [10].)

A :class:`TokenStream` is a single ``bytes`` buffer; producers append encoded
tokens, consumers decode them in one pass.  Compared to the per-event SAX
interface this amortizes call overhead — experiment E4 measures exactly this
difference.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import XmlError
from repro.rdb import codec
from repro.xdm.events import EventKind, SaxEvent

#: Token kinds are the event kinds; annotations ride on ELEM_START/ATTR.
TokenKind = EventKind

_HAS_ANNOTATION = 0x80


class TokenStream:
    """An append-only binary buffer of XML tokens."""

    def __init__(self, data: bytes | bytearray | None = None) -> None:
        self._buf = bytearray(data) if data is not None else bytearray()
        self.token_count = 0 if data is None else sum(1 for _ in self)

    # -- producing ----------------------------------------------------------

    def append(self, kind: TokenKind, local: str = "", uri: str = "",
               value: str = "", annotation: str | None = None) -> None:
        """Encode one token onto the buffer."""
        flags = int(kind)
        if annotation is not None:
            flags |= _HAS_ANNOTATION
        self._buf.append(flags)
        if kind in (TokenKind.ELEM_START, TokenKind.ELEM_END,
                    TokenKind.ATTR, TokenKind.PI, TokenKind.NS):
            codec.write_str(self._buf, local)
        if kind in (TokenKind.ELEM_START, TokenKind.ATTR):
            codec.write_str(self._buf, uri)
        if kind in (TokenKind.ATTR, TokenKind.TEXT, TokenKind.COMMENT,
                    TokenKind.PI, TokenKind.NS):
            codec.write_str(self._buf, value)
        if annotation is not None:
            codec.write_str(self._buf, annotation)
        self.token_count += 1

    def append_event(self, event: SaxEvent) -> None:
        """Append a virtual SAX event as a token."""
        self.append(event.kind, event.local, event.uri, event.value)

    # -- consuming -----------------------------------------------------------

    def __iter__(self) -> Iterator[SaxEvent]:
        return self.events()

    def events(self) -> Iterator[SaxEvent]:
        """Decode the buffer into virtual SAX events (Fig. 8 iterator)."""
        buf = self._buf
        pos = 0
        end = len(buf)
        while pos < end:
            flags = buf[pos]
            pos += 1
            annotated = bool(flags & _HAS_ANNOTATION)
            try:
                kind = TokenKind(flags & ~_HAS_ANNOTATION)
            except ValueError:
                raise XmlError(f"corrupt token stream (kind byte {flags})") from None
            local = uri = value = ""
            if kind in (TokenKind.ELEM_START, TokenKind.ELEM_END,
                        TokenKind.ATTR, TokenKind.PI, TokenKind.NS):
                local, pos = codec.read_str(buf, pos)
            if kind in (TokenKind.ELEM_START, TokenKind.ATTR):
                uri, pos = codec.read_str(buf, pos)
            if kind in (TokenKind.ATTR, TokenKind.TEXT, TokenKind.COMMENT,
                        TokenKind.PI, TokenKind.NS):
                value, pos = codec.read_str(buf, pos)
            if annotated:
                _annotation, pos = codec.read_str(buf, pos)
            yield SaxEvent(kind, local, uri, value)

    def annotated_events(self) -> Iterator[tuple[SaxEvent, str | None]]:
        """Like :meth:`events` but exposing schema type annotations."""
        buf = self._buf
        pos = 0
        end = len(buf)
        while pos < end:
            flags = buf[pos]
            pos += 1
            annotated = bool(flags & _HAS_ANNOTATION)
            kind = TokenKind(flags & ~_HAS_ANNOTATION)
            local = uri = value = ""
            if kind in (TokenKind.ELEM_START, TokenKind.ELEM_END,
                        TokenKind.ATTR, TokenKind.PI, TokenKind.NS):
                local, pos = codec.read_str(buf, pos)
            if kind in (TokenKind.ELEM_START, TokenKind.ATTR):
                uri, pos = codec.read_str(buf, pos)
            if kind in (TokenKind.ATTR, TokenKind.TEXT, TokenKind.COMMENT,
                        TokenKind.PI, TokenKind.NS):
                value, pos = codec.read_str(buf, pos)
            annotation: str | None = None
            if annotated:
                annotation, pos = codec.read_str(buf, pos)
            yield SaxEvent(kind, local, uri, value), annotation

    # -- introspection --------------------------------------------------------

    @property
    def byte_size(self) -> int:
        """Encoded size of the buffer."""
        return len(self._buf)

    def to_bytes(self) -> bytes:
        return bytes(self._buf)

    @classmethod
    def from_events(cls, events) -> "TokenStream":
        stream = cls()
        for event in events:
            stream.append_event(event)
        return stream

    def __len__(self) -> int:
        return self.token_count
