"""Prefix-encoded Dewey node IDs (§3.1).

Encoding rules straight from the paper:

* a **relative** node ID is a byte string whose last byte is even and whose
  other bytes are all odd ("any odd-numbered byte means that the relative ID
  is extended to the next byte");
* the **absolute** node ID is the concatenation of the relative IDs along the
  path from the root; the root's own ID is always ``00`` and therefore
  implicit — here the document node's absolute ID is ``b""``;
* plain byte-string comparison of absolute IDs gives document order;
* "there is always space for insertion in the middle by extending the node
  ID length when necessary" — :func:`between_relative` realizes this;
* ancestry is a prefix test (§5.2): because an even byte always terminates a
  level, a valid absolute ID that is a string prefix of another is exactly an
  ancestor-or-self, so ``descendant.startswith(ancestor)`` is sound.

Byte 0 is never used (the implicit root owns ``00``), so relative IDs use
even bytes ``2..254`` and odd bytes ``1..255``.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import NodeIdError

#: Absolute node ID of the document (root) node.
ROOT_ID = b""

_MAX_EVEN = 254
_MAX_SINGLE_ORDINAL = _MAX_EVEN // 2  # 127


def is_valid_relative(rel: bytes) -> bool:
    """Whether ``rel`` is a well-formed relative node ID."""
    if not rel or rel[-1] % 2 or rel[-1] == 0:
        return False
    return all(b % 2 for b in rel[:-1])


def validate_absolute(abs_id: bytes) -> None:
    """Raise :class:`NodeIdError` unless ``abs_id`` parses into levels."""
    for _ in split_levels(abs_id):
        pass


def relative_from_ordinal(ordinal: int) -> bytes:
    """Relative ID for the ``ordinal``-th child slot (1-based).

    Ordinals 1..127 get the single even byte ``2*ordinal``; larger ordinals
    prepend ``0xFF`` continuation bytes (one per 127 slots), which preserves
    allocation order because ``0xFF`` sorts after every even byte.
    """
    if ordinal < 1:
        raise NodeIdError(f"child ordinal must be positive, got {ordinal}")
    prefix = b""
    while ordinal > _MAX_SINGLE_ORDINAL:
        prefix += b"\xff"
        ordinal -= _MAX_SINGLE_ORDINAL
    return prefix + bytes([2 * ordinal])


def split_levels(abs_id: bytes) -> list[bytes]:
    """Split an absolute ID into its per-level relative IDs."""
    levels = []
    start = 0
    for pos, byte in enumerate(abs_id):
        if byte == 0:
            raise NodeIdError(f"zero byte in node ID {abs_id.hex()}")
        if byte % 2 == 0:
            levels.append(abs_id[start:pos + 1])
            start = pos + 1
    if start != len(abs_id):
        raise NodeIdError(f"dangling continuation bytes in node ID {abs_id.hex()}")
    return levels


def depth(abs_id: bytes) -> int:
    """Number of levels below the root (root itself has depth 0)."""
    return len(split_levels(abs_id))


def parent(abs_id: bytes) -> bytes:
    """Absolute ID of the parent node (the root's parent is an error)."""
    if not abs_id:
        raise NodeIdError("the root node has no parent")
    pos = len(abs_id) - 2
    while pos >= 0 and abs_id[pos] % 2:
        pos -= 1
    return abs_id[:pos + 1]


def ancestors(abs_id: bytes) -> Iterator[bytes]:
    """Yield proper ancestors from the root down (root first)."""
    prefix = b""
    for level in split_levels(abs_id)[:-1]:
        yield prefix
        prefix += level
    if abs_id:
        yield prefix


def is_ancestor_or_self(candidate: bytes, node: bytes) -> bool:
    """Prefix test: is ``candidate`` an ancestor of ``node`` or the node itself?"""
    return node.startswith(candidate)


def is_ancestor(candidate: bytes, node: bytes) -> bool:
    """Proper-ancestor test."""
    return candidate != node and node.startswith(candidate)


def child_id(parent_id: bytes, ordinal: int) -> bytes:
    """Absolute ID of the ``ordinal``-th child of ``parent_id``."""
    return parent_id + relative_from_ordinal(ordinal)


def between_relative(low: bytes | None, high: bytes | None) -> bytes:
    """A valid relative ID strictly between ``low`` and ``high``.

    ``None`` bounds mean "before the first sibling" / "after the last
    sibling".  This is the paper's insert-in-the-middle operation: existing
    sibling IDs never change; the new ID may be longer.
    """
    if low is not None and not is_valid_relative(low):
        raise NodeIdError(f"invalid relative ID {low.hex()}")
    if high is not None and not is_valid_relative(high):
        raise NodeIdError(f"invalid relative ID {high.hex()}")
    if low is not None and high is not None and low >= high:
        raise NodeIdError(
            f"no gap: low {low.hex()} is not before high {high.hex()}")

    out = bytearray()
    pos = 0
    lo_tight = low is not None
    hi_tight = high is not None
    while True:
        lo_byte = low[pos] if lo_tight and pos < len(low) else None  # type: ignore[index]
        hi_byte = high[pos] if hi_tight and pos < len(high) else None  # type: ignore[index]

        if lo_byte is None and hi_byte is None:
            # Unconstrained: middle-of-the-road even byte ends the ID.
            out.append(128)
            return bytes(out)
        if lo_byte is None:
            # Only bounded above.
            if hi_byte > 2:
                candidate = hi_byte - 1 if hi_byte % 2 else hi_byte - 2
                if candidate % 2:  # odd gap byte: go below then terminate
                    out.append(candidate)
                    out.append(128)
                else:
                    out.append(candidate)
                return bytes(out)
            # hi_byte is 1 or 2: squeeze underneath with a continuation byte.
            out.append(1)
            if hi_byte == 2:
                out.append(2)  # p+[1,2] < p+[2...]
                return bytes(out)
            pos += 1  # hi_byte == 1: stay tight against high
            continue
        if hi_byte is None:
            # Only bounded below.
            if lo_byte % 2 == 0:
                # low terminates here; bump past it.
                if lo_byte + 2 <= _MAX_EVEN:
                    out.append(lo_byte + 2)
                else:
                    out.append(lo_byte + 1)  # odd continuation (255)
                    out.append(128)
                return bytes(out)
            # low continues (odd byte): anything larger at this position wins,
            # except 0xFF which cannot be exceeded — follow low one byte.
            if lo_byte == 0xFF:
                out.append(lo_byte)
                pos += 1
                continue
            out.append(lo_byte + 1)  # even, ends the ID
            return bytes(out)

        # Tight on both sides.
        if hi_byte - lo_byte >= 2:
            candidate = lo_byte + 1
            if candidate % 2 == 0:
                out.append(candidate)
                return bytes(out)
            # candidate odd; prefer an even byte in the gap if one exists
            if lo_byte + 2 < hi_byte:
                out.append(lo_byte + 2)
                return bytes(out)
            out.append(candidate)
            out.append(128)
            return bytes(out)
        if hi_byte - lo_byte == 1:
            if lo_byte % 2:
                # low continues below lo_byte...; follow low.
                out.append(lo_byte)
                hi_tight = False
                pos += 1
                continue
            # low ends at even lo_byte; follow high (odd hi_byte continues).
            out.append(hi_byte)
            lo_tight = False
            pos += 1
            continue
        # Equal bytes: shared (necessarily odd) prefix of low and high.
        out.append(lo_byte)
        pos += 1


def between(left_abs: bytes | None, right_abs: bytes | None,
            parent_id: bytes) -> bytes:
    """Absolute ID for a new node between two siblings under ``parent_id``.

    ``left_abs``/``right_abs`` are absolute IDs of the adjacent siblings (or
    ``None`` at either end).
    """
    def last_level(abs_id: bytes) -> bytes:
        if not abs_id.startswith(parent_id) or abs_id == parent_id:
            raise NodeIdError(
                f"{abs_id.hex()} is not a child of {parent_id.hex()}")
        rel = abs_id[len(parent_id):]
        if not is_valid_relative(rel):
            raise NodeIdError(f"{abs_id.hex()} is not a direct child "
                              f"of {parent_id.hex()}")
        return rel

    low = last_level(left_abs) if left_abs is not None else None
    high = last_level(right_abs) if right_abs is not None else None
    return parent_id + between_relative(low, high)


def format_id(abs_id: bytes) -> str:
    """Human-readable rendering, e.g. ``"02.0206"`` (root is ``"00"``)."""
    if not abs_id:
        return "00"
    return ".".join(level.hex() for level in split_levels(abs_id))
