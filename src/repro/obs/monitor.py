"""DISPLAY-style system snapshots of a live engine.

DB2 for z/OS answers ``-DISPLAY BUFFERPOOL``, ``-DISPLAY DATABASE ... LOCKS``
and ``-DISPLAY LOG`` with structured views of live subsystem state; this
module is that surface for the reproduction.  :class:`Monitor` wraps a
:class:`~repro.core.engine.Database` and :meth:`Monitor.snapshot` assembles
one consistent :class:`MonitorSnapshot` from the buffer pool, lock manager
(holders, waiters, and the waits-for graph — exportable as Graphviz DOT),
write-ahead log, transaction table, per-table-space / per-index footprints,
and the accounting and slow-query ring buffers.

Everything is copied at snapshot time: the views stay valid (and stable)
after the engine moves on, so tests and the report CLI can inspect them
without racing live state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rdb.txn import AccountingRecord


@dataclass(frozen=True)
class BufferPoolView:
    """``-DISPLAY BUFFERPOOL``: frame occupancy and hit behaviour."""

    capacity: int
    resident: int  # LRU depth: frames currently holding a page
    pinned: int
    dirty: int
    hits: int
    misses: int
    evictions: int
    flushes: int

    @property
    def hit_ratio(self) -> float:
        """Fraction of pool requests served without disk I/O (0.0 idle)."""
        touches = self.hits + self.misses
        return self.hits / touches if touches else 0.0

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "resident": self.resident,
            "pinned": self.pinned,
            "dirty": self.dirty,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": round(self.hit_ratio, 4),
            "evictions": self.evictions,
            "flushes": self.flushes,
        }


@dataclass(frozen=True)
class LockTableView:
    """``-DISPLAY ... LOCKS``: grants, waiters, and the waits-for graph.

    ``grants`` maps the printable resource key to ``{txn_id: mode name}``;
    ``waiters`` maps a blocked transaction to the sorted ids it waits for.
    """

    grants: dict[str, dict[int, str]] = field(default_factory=dict)
    waiters: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @property
    def granted_count(self) -> int:
        return sum(len(holders) for holders in self.grants.values())

    def wait_for_dot(self) -> str:
        """The waits-for graph as Graphviz DOT (``waiter -> blocker``)."""
        lines = ["digraph waits_for {"]
        for waiter in sorted(self.waiters):
            for blocker in self.waiters[waiter]:
                lines.append(f'  "txn{waiter}" -> "txn{blocker}";')
        lines.append("}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "grants": {resource: dict(holders)
                       for resource, holders in sorted(self.grants.items())},
            "waiters": {waiter: list(blockers)
                        for waiter, blockers in sorted(self.waiters.items())},
            "wait_for_dot": self.wait_for_dot(),
        }


@dataclass(frozen=True)
class WalView:
    """``-DISPLAY LOG``: log position and checkpoint lag."""

    next_lsn: int
    records: int
    bytes_written: int
    bytes_since_checkpoint: int
    last_checkpoint_lsn: int | None
    checkpoints: int
    #: Records at or below the flush boundary; with group commit off this
    #: always equals ``records`` (every append auto-flushes).
    durable_records: int = 0
    unflushed_records: int = 0
    flushes: int = 0
    group_commits: int = 0

    def to_dict(self) -> dict:
        return {
            "next_lsn": self.next_lsn,
            "records": self.records,
            "bytes_written": self.bytes_written,
            "bytes_since_checkpoint": self.bytes_since_checkpoint,
            "last_checkpoint_lsn": self.last_checkpoint_lsn,
            "checkpoints": self.checkpoints,
            "durable_records": self.durable_records,
            "unflushed_records": self.unflushed_records,
            "flushes": self.flushes,
            "group_commits": self.group_commits,
        }


@dataclass(frozen=True)
class TxnView:
    """One row of the transaction table."""

    txn_id: int
    isolation: str
    state: str
    locks_held: int

    def to_dict(self) -> dict:
        return {
            "txn_id": self.txn_id,
            "isolation": self.isolation,
            "state": self.state,
            "locks_held": self.locks_held,
        }


@dataclass(frozen=True)
class MonitorSnapshot:
    """One consistent picture of engine state (all views copied)."""

    buffer_pool: BufferPoolView
    lock_table: LockTableView
    wal: WalView
    transactions: tuple[TxnView, ...]
    #: Per-table base-table-space footprints plus column-index sizes.
    tables: dict[str, dict] = field(default_factory=dict)
    #: Per XML column (``"table.column"``): data + NodeID-index footprint.
    xml_stores: dict[str, dict] = field(default_factory=dict)
    #: Per-table DocID index sizes.
    docid_indexes: dict[str, dict] = field(default_factory=dict)
    #: Per XPath value index sizes.
    value_indexes: dict[str, dict] = field(default_factory=dict)
    #: Accounting ring summary plus the buffered records.
    accounting: dict = field(default_factory=dict)
    #: Slow-query ring summary (captured/buffered counts).
    slow_queries: dict = field(default_factory=dict)
    #: Serving-layer view (``DatabaseServer.view()``): worker pool state,
    #: queue depth, session count, request outcome counters.  Empty when
    #: no server is attached to the monitor.
    server: dict = field(default_factory=dict)
    #: Wait-state profile (``repro.obs.waits.wait_profile``): per-class
    #: suspension totals plus the per-request wait distribution — the
    #: DB2 accounting class-3 section of the DISPLAY output.
    waits: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe rendering (exporters, artifacts, report CLI)."""
        return {
            "server": self.server,
            "waits": self.waits,
            "buffer_pool": self.buffer_pool.to_dict(),
            "lock_table": self.lock_table.to_dict(),
            "wal": self.wal.to_dict(),
            "transactions": [txn.to_dict() for txn in self.transactions],
            "tables": self.tables,
            "xml_stores": self.xml_stores,
            "docid_indexes": self.docid_indexes,
            "value_indexes": self.value_indexes,
            "accounting": self.accounting,
            "slow_queries": self.slow_queries,
        }

    def format(self) -> str:
        """Human-readable DISPLAY-style rendering."""
        bp = self.buffer_pool
        lines = [
            "=== BUFFER POOL ===",
            (f"  frames {bp.resident}/{bp.capacity} resident, "
             f"{bp.pinned} pinned, {bp.dirty} dirty"),
            (f"  hits {bp.hits}  misses {bp.misses}  "
             f"hit-ratio {bp.hit_ratio:.2%}  evictions {bp.evictions}"),
            "=== LOCK TABLE ===",
            (f"  {self.lock_table.granted_count} grants on "
             f"{len(self.lock_table.grants)} resources, "
             f"{len(self.lock_table.waiters)} waiters"),
        ]
        for resource, holders in sorted(self.lock_table.grants.items()):
            held = ", ".join(f"txn{txn}:{mode}"
                             for txn, mode in sorted(holders.items()))
            lines.append(f"  {resource}: {held}")
        for waiter, blockers in sorted(self.lock_table.waiters.items()):
            lines.append(f"  txn{waiter} waits for "
                         + ", ".join(f"txn{b}" for b in blockers))
        wal = self.wal
        lines += [
            "=== LOG ===",
            (f"  next LSN {wal.next_lsn}, {wal.records} records, "
             f"{wal.bytes_written} bytes "
             f"({wal.bytes_since_checkpoint} since checkpoint, "
             f"last checkpoint LSN {wal.last_checkpoint_lsn})"),
            (f"  durable {wal.durable_records} "
             f"(+{wal.unflushed_records} volatile), "
             f"{wal.flushes} forces, {wal.group_commits} group commits"),
            "=== TRANSACTIONS ===",
        ]
        if self.transactions:
            for txn in self.transactions:
                lines.append(f"  txn{txn.txn_id} [{txn.isolation}] "
                             f"{txn.state}, {txn.locks_held} locks")
        else:
            lines.append("  (none active)")
        lines.append("=== STORAGE ===")
        for name, info in sorted(self.tables.items()):
            space = info["space"]
            lines.append(f"  table {name}: {space['records']} records on "
                         f"{space['pages']} pages")
        for name, info in sorted(self.xml_stores.items()):
            lines.append(f"  xml {name}: {info['record_count']} records, "
                         f"{info['data_pages']} data pages, "
                         f"{info['nodeid_index_entries']} NodeID entries")
        for name, info in sorted(self.docid_indexes.items()):
            lines.append(f"  docid-index {name}: {info['entries']} entries "
                         f"on {info['pages']} pages")
        for name, info in sorted(self.value_indexes.items()):
            lines.append(f"  value-index {name}: {info['entries']} entries "
                         f"on {info['pages']} pages "
                         f"(height {info['height']})")
        acct = self.accounting
        lines.append("=== ACCOUNTING ===")
        lines.append(f"  {acct.get('emitted', 0)} records emitted, "
                     f"{acct.get('buffered', 0)} buffered")
        slow = self.slow_queries
        lines.append(f"  slow queries: {slow.get('captured', 0)} captured, "
                     f"{slow.get('buffered', 0)} buffered")
        if self.waits.get("by_class"):
            from repro.obs.waits import format_breakdown
            lines.append("=== WAITS (class-3 suspensions) ===")
            lines.extend(format_breakdown(self.waits["by_class"]))
            request_wait = self.waits.get("request_wait")
            if request_wait and request_wait.get("count"):
                lines.append(
                    f"  per-request total: p50 {request_wait['p50_us']:,} "
                    f"us  p99 {request_wait['p99_us']:,} us  max "
                    f"{request_wait['max_us']:,} us "
                    f"({request_wait['count']} clocked)")
        if self.server:
            srv = self.server
            lines += [
                "=== SERVER ===",
                (f"  {srv['state']}: {srv['busy']}/{srv['workers']} workers "
                 f"busy, queue {srv['queue_depth']}/{srv['queue_limit']}, "
                 f"{srv['sessions_open']} sessions"),
                (f"  requests {srv['requests']}  admitted {srv['admitted']}  "
                 f"completed {srv['completed']}  failed {srv['failed']}  "
                 f"deadline-expired {srv['deadline_expired']}  "
                 f"shed {srv['shed']}"),
            ]
        return "\n".join(lines)


class Monitor:
    """Assembles :class:`MonitorSnapshot` views from a live engine.

    A :class:`~repro.serve.server.DatabaseServer` built on the engine
    attaches itself as :attr:`server`, adding a ``-DISPLAY THREAD``-style
    section to snapshots and enabling the cheap :meth:`health` signals its
    overload guard polls on the admission path.
    """

    def __init__(self, db, server=None) -> None:
        self.db = db
        #: Attached serving layer (anything with a ``view() -> dict``).
        self.server = server

    def health(self) -> dict:
        """Cheap live health signals for admission control.

        Unlike :meth:`snapshot` this reads only O(1) state — counter
        lookups and container lengths, no WAL or lock-table iteration — so
        the serving layer can afford it on the request path, from threads
        that do not hold the engine latch.  An untouched buffer pool
        reports hit ratio 1.0 (idle is healthy, not thrashing).
        """
        db = self.db
        hits = db.stats.get("buffer.hits")
        misses = db.stats.get("buffer.misses")
        touches = hits + misses
        return {
            "lock_waiters": db.txns.locks.waiter_count(),
            "active_txns": len(db.txns.active),
            "buffer_touches": touches,
            "buffer_hit_ratio": hits / touches if touches else 1.0,
        }

    def snapshot(self) -> MonitorSnapshot:
        """One consistent copy of current engine state.

        Snapshots deliberately take no engine latch — DISPLAY-style
        commands must work *while* the engine is busy, including when a
        request thread is stuck holding the latch.  Each view builder is
        therefore a latch-free read retried on torn dict iteration (see
        :meth:`_stable`); structures with their own latches (lock stripes,
        the accounting ring) copy under those.
        """
        from repro.obs.waits import wait_profile

        db = self.db
        return MonitorSnapshot(
            server=dict(self.server.view()) if self.server is not None
            else {},
            waits=wait_profile(db.stats),
            buffer_pool=self._stable(self._buffer_pool),
            lock_table=self._lock_table(),
            wal=self._stable(self._wal),
            transactions=self._stable(self._transactions),
            tables=self._stable(self._tables),
            xml_stores=self._stable(self._xml_stores),
            docid_indexes=self._stable(self._docid_indexes),
            value_indexes=self._stable(self._value_indexes),
            accounting={
                "emitted": db.txns.accounting.emitted,
                "buffered": len(db.txns.accounting),
                "records": [record.to_dict()
                            for record in db.txns.accounting],
            },
            slow_queries={
                "captured": db.slow_queries.captured,
                "buffered": len(db.slow_queries),
            },
        )

    def accounting_records(self) -> list[AccountingRecord]:
        """The buffered accounting records, oldest first."""
        return self.db.txns.accounting.records()

    # -- view builders -----------------------------------------------------

    @staticmethod
    def _stable(build, retries: int = 4):
        """Run a latch-free view builder, retrying torn iterations.

        A concurrent begin/commit can resize ``txns.active`` (or a pool /
        index map) mid-iteration, which CPython surfaces as a
        ``RuntimeError``; re-reading yields a view that is merely slightly
        newer, which is all a monitor promises.  The final attempt
        propagates, so a *deterministic* RuntimeError in a builder is not
        silently retried forever.
        """
        for _ in range(retries):
            try:
                return build()
            except RuntimeError:
                continue
        return build()

    def _buffer_pool(self) -> BufferPoolView:
        pool, stats = self.db.pool, self.db.stats
        return BufferPoolView(
            capacity=pool.capacity,
            resident=pool.resident_count(),
            pinned=len(pool.pinned_pages()),
            dirty=pool.dirty_count(),
            hits=stats.get("buffer.hits"),
            misses=stats.get("buffer.misses"),
            evictions=stats.get("buffer.evictions"),
            flushes=stats.get("buffer.flushes"),
        )

    def _lock_table(self) -> LockTableView:
        locks = self.db.txns.locks
        grants = {
            str(resource): {txn: mode.name
                            for txn, mode in holders.items()}
            for resource, holders in locks.lock_table().items()
        }
        waiters = {waiter: tuple(sorted(blockers))
                   for waiter, blockers in locks.waits_for_edges().items()}
        return LockTableView(grants=grants, waiters=waiters)

    def _wal(self) -> WalView:
        log, stats = self.db.log, self.db.stats
        return WalView(
            next_lsn=log.next_lsn,
            records=sum(1 for _ in log.records()),
            bytes_written=log.bytes_written,
            bytes_since_checkpoint=log.bytes_since_checkpoint,
            last_checkpoint_lsn=log.last_checkpoint_lsn(),
            checkpoints=stats.get("wal.checkpoints"),
            durable_records=log.durable_count,
            unflushed_records=log.unflushed_count,
            flushes=stats.get("wal.flushes"),
            group_commits=stats.get("wal.group_commits"),
        )

    def _transactions(self) -> tuple[TxnView, ...]:
        txns = self.db.txns
        return tuple(
            TxnView(txn_id=txn.txn_id,
                    isolation=txn.isolation.value,
                    state=txn.state.value,
                    locks_held=txns.locks.locks_held(txn.txn_id))
            for txn in sorted(txns.active.values(),
                              key=lambda txn: txn.txn_id)
        )

    def _tables(self) -> dict[str, dict]:
        out: dict[str, dict] = {}
        for name, table in self.db.tables.items():
            indexes = {
                column.name: self._tree_stats(tree)
                for column in table.definition.columns
                if (tree := table.column_index(column.name)) is not None
            }
            out[name] = {"space": table.space.footprint(),
                         "column_indexes": indexes}
        return out

    def _xml_stores(self) -> dict[str, dict]:
        return {f"{table}.{column}": store.storage_footprint()
                for (table, column), store in self.db.xml_stores.items()}

    def _docid_indexes(self) -> dict[str, dict]:
        return {name: self._tree_stats(tree)
                for name, tree in self.db.docid_indexes.items()}

    def _value_indexes(self) -> dict[str, dict]:
        return {name: index.size_stats()
                for name, index in self.db.value_indexes.items()}

    @staticmethod
    def _tree_stats(tree) -> dict[str, int]:
        return {"entries": tree.entry_count,
                "pages": tree.page_count,
                "height": tree.height()}
