"""Slow-query log: auto-captured evidence for queries that blew a budget.

The DB2 analogue is the performance trace one turns on *after* noticing a
problem; here the engine watches every ``Database.xpath`` call's counter
deltas against the ``EngineConfig.slow_query_*`` thresholds and, for
offenders, keeps the whole story — chosen access plan, span tree, counter
deltas, and which thresholds were exceeded — in a bounded ring buffer
(``Database.slow_queries``).  Queries under threshold leave no trace behind.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.export import span_to_dict
from repro.obs.tracer import Span


@dataclass(frozen=True)
class SlowQueryRecord:
    """One captured slow query."""

    table: str
    column: str
    path: str
    method: str
    rows: int
    #: Counter deltas over the whole query (planning + execution + join).
    counters: dict[str, int] = field(default_factory=dict)
    #: ``{counter name: (observed delta, threshold)}`` for every threshold
    #: the query exceeded.
    exceeded: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: The planner's explanation of the chosen access plan.
    plan_text: str = ""
    #: Root of the span tree captured while the query ran.
    root: Span = field(default_factory=lambda: Span("slow_query"))

    def format(self) -> str:
        """Human-readable rendering (report CLI / debugging)."""
        lines = [f"SLOW QUERY {self.path!r} on {self.table}.{self.column} "
                 f"[{self.method}] rows={self.rows}"]
        for name, (value, limit) in sorted(self.exceeded.items()):
            lines.append(f"  exceeded {name}: {value} > {limit}")
        lines.extend("  " + line for line in self.plan_text.splitlines())
        lines.append("  trace:")
        lines.extend("    " + line for line in self.root.format().splitlines())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe rendering (exporters and artifacts)."""
        return {
            "table": self.table,
            "column": self.column,
            "path": self.path,
            "method": self.method,
            "rows": self.rows,
            "counters": dict(sorted(self.counters.items())),
            "exceeded": {name: [value, limit]
                         for name, (value, limit)
                         in sorted(self.exceeded.items())},
            "plan": self.plan_text,
            "trace": span_to_dict(self.root),
        }


class SlowQueryLog:
    """Bounded ring buffer of :class:`SlowQueryRecord` (newest kept)."""

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = capacity
        self._ring: deque[SlowQueryRecord] = deque(maxlen=max(1, capacity))
        self.captured = 0

    def emit(self, record: SlowQueryRecord) -> None:
        """Append one record (dropping the oldest when full)."""
        self._ring.append(record)
        self.captured += 1

    def records(self) -> list[SlowQueryRecord]:
        """Buffered records, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[SlowQueryRecord]:
        return iter(self._ring)
