"""Hierarchical spans over the engine's counter registry.

A :class:`Tracer` installs itself on a :class:`~repro.core.stats.StatsRegistry`
(``stats.tracer``); every layer of the engine opens spans through
``stats.trace("btree.search")`` without knowing whether anything is listening.
On exit each span records the registry's counter deltas between its enter and
exit, so the span tree is a hierarchical decomposition of the same numbers
EXPERIMENTS.md reports globally — page I/O, index traffic, lock waits —
attributed to the operator that caused them.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.core.stats import StatsRegistry


class Span:
    """One node of a trace: a named operation with attributes, counter
    deltas (inclusive of children) and child spans."""

    __slots__ = ("name", "attrs", "children", "counters", "kind")

    def __init__(self, name: str, attrs: dict | None = None,
                 kind: str = "span") -> None:
        self.name = name
        self.attrs: dict[str, object] = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        #: Counter deltas observed between enter and exit (inclusive).
        self.counters: dict[str, int] = {}
        self.kind = kind

    def set(self, key: str, value: object) -> None:
        """Attach/overwrite one attribute."""
        self.attrs[key] = value

    def counter(self, name: str) -> int:
        """This span's (inclusive) delta for counter ``name``."""
        return self.counters.get(name, 0)

    def find(self, name: str) -> "Span | None":
        """First descendant span (depth-first, self included) named ``name``."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every descendant span (self included) named ``name``."""
        out = [self] if self.name == name else []
        for child in self.children:
            out.extend(child.find_all(name))
        return out

    def format(self, indent: int = 0) -> str:
        """Indented text rendering of the subtree (EXPLAIN output)."""
        pad = "  " * indent
        bits = [f"{pad}{self.name}"]
        if self.attrs:
            inner = " ".join(f"{k}={v!r}" for k, v in self.attrs.items())
            bits.append(f"({inner})")
        if self.counters:
            inner = " ".join(f"{k}={v}"
                             for k, v in sorted(self.counters.items()))
            bits.append(f"[{inner}]")
        lines = [" ".join(bits)]
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, attrs={self.attrs}, "
                f"children={len(self.children)})")


class Tracer:
    """Builds a span tree while installed on a stats registry.

    Usage::

        tracer = Tracer(db.stats)
        with tracer.install():
            db.xpath("catalog", "doc", "/Catalog//Product")
        print(tracer.root.format())

    Spans nest by runtime call order: the innermost open span is the parent
    of any span opened inside it.  The tracer is single-threaded, like the
    engine itself.
    """

    def __init__(self, stats: StatsRegistry, name: str = "trace") -> None:
        self.stats = stats
        self.root = Span(name, kind="root")
        self._stack: list[Span] = [self.root]

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a child span; yields it so callers can set attributes."""
        span = Span(name, attrs)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        before = self.stats.counters()
        try:
            yield span
        finally:
            span.counters = self._delta_since(before)
            self._stack.pop()

    def event(self, name: str, **attrs: object) -> Span:
        """Record a point event (a childless span with no deltas)."""
        span = Span(name, attrs, kind="event")
        self._stack[-1].children.append(span)
        return span

    @contextmanager
    def install(self) -> Iterator["Tracer"]:
        """Attach to the registry for the duration of the block.

        Also captures the root span's counter deltas, and restores any
        previously installed tracer on exit (tracers may nest).
        """
        previous = self.stats.tracer
        self.stats.tracer = self
        before = self.stats.counters()
        try:
            yield self
        finally:
            self.root.counters = self._delta_since(before)
            self.stats.tracer = previous

    def _delta_since(self, before: dict[str, int]) -> dict[str, int]:
        out: dict[str, int] = {}
        for name, value in self.stats.counters().items():
            diff = value - before.get(name, 0)
            if diff:
                out[name] = diff
        return out
