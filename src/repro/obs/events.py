"""IFCID-style structured event trace: typed records in per-thread rings.

DB2 for z/OS performance work runs on *trace classes*: accounting records
(IFCID 3) per unit of work, statistics records at a fixed interval, and
performance IFCIDs for individual suspensions, log writes and faults.  This
module is that facility for the reproduction: an :class:`EventTrace`
installed on a :class:`~repro.core.stats.StatsRegistry` (``stats.events``,
duck-typed exactly like the tracer so the substrate never imports
``repro.obs``) collects :class:`EventRecord`\\ s into **per-thread bounded
rings** — no shared lock on the emit path, old records overwritten when a
ring fills — and merges them by monotonic timestamp on drain.

Cost model: while no trace is installed, emit sites pay one attribute test
(``stats.events is None``).  While installed with a class *disabled*, an
emit is one frozenset membership test.  Only enabled classes pay for record
construction.  The ``tracing_overhead`` scenario in
``benchmarks/export_baseline.py`` gates the installed-but-disabled cost.

Event classes (:class:`EventClass`):

``ACCOUNTING``
    one record per completed unit of work — a served request
    (``serve.request``) or a finished transaction (``txn.accounting``),
    carrying its elapsed time and wait breakdown;
``STATISTICS``
    periodic counter/histogram deltas emitted by a
    :class:`StatsCollector` interval thread (``stats.interval``);
``PERFORMANCE``
    individual suspensions (``wait.<class>``, emitted by
    ``StatsRegistry.charge_wait``) and injected faults (``fault.<kind>``,
    emitted by :class:`~repro.fault.injector.FaultInjector`).

Thread-local **context** (:meth:`EventTrace.context`) stamps records with
the request label / txn id of whatever unit of work the thread is running,
so a drained trace can be regrouped per request — the input of the
``python -m repro.obs.perf`` wait-state profiler.
"""

from __future__ import annotations

import enum
import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.core.stats import StatsRegistry


class EventClass(enum.Enum):
    """DB2-style trace classes; members compare by identity, export by value."""

    ACCOUNTING = "accounting"
    STATISTICS = "statistics"
    PERFORMANCE = "performance"


#: Convenience: every trace class (the default for a fully-on trace).
ALL_CLASSES: frozenset[EventClass] = frozenset(EventClass)


@dataclass(frozen=True)
class EventRecord:
    """One structured trace event (the IFCID-record analogue).

    ``ts_ns`` is ``time.monotonic_ns()`` — ordering within a process, not
    wall-clock time.  ``request``/``txn_id`` come from explicit arguments
    or the emitting thread's ambient :meth:`EventTrace.context`.
    """

    event_id: int
    name: str
    event_class: str
    ts_ns: int
    thread: str
    request: str | None = None
    txn_id: int | None = None
    payload: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe rendering (JSONL export)."""
        out: dict[str, Any] = {
            "id": self.event_id,
            "name": self.name,
            "class": self.event_class,
            "ts_ns": self.ts_ns,
            "thread": self.thread,
        }
        if self.request is not None:
            out["request"] = self.request
        if self.txn_id is not None:
            out["txn_id"] = self.txn_id
        if self.payload:
            out["payload"] = self.payload
        return out


class EventTrace:
    """Bounded per-thread event rings with class-gated emission.

    ``ring_size`` bounds each *thread's* ring; a thread that emits more
    than that between drains keeps only the newest records (the DB2 trace
    wraps the same way).  ``classes`` is the enabled set — emits for a
    disabled class return after one membership test.
    """

    def __init__(self, ring_size: int = 4096,
                 classes: Iterable[EventClass] = ALL_CLASSES) -> None:
        if ring_size <= 0:
            raise ValueError("ring_size must be positive")
        self.ring_size = int(ring_size)
        self.enabled: frozenset[EventClass] = frozenset(classes)
        self._ids = itertools.count(1)
        self._local = threading.local()
        #: All rings ever created, registered once per thread under a lock
        #: the emit fast path never takes.
        self._rings_lock = threading.Lock()
        self._rings: list[deque[EventRecord]] = []
        #: Total records dropped to ring wrap-around (per-ring shortfall is
        #: invisible once overwritten, so count at append time).
        self._dropped = 0

    # -- emission ---------------------------------------------------------

    def _ring(self) -> deque[EventRecord]:
        ring: deque[EventRecord] | None = getattr(self._local, "ring", None)
        if ring is None:
            ring = deque(maxlen=self.ring_size)
            self._local.ring = ring
            with self._rings_lock:
                self._rings.append(ring)
        return ring

    def emit(self, event_class: EventClass, name: str, *,
             request: str | None = None, txn_id: int | None = None,
             **payload: Any) -> EventRecord | None:
        """Append one record to the calling thread's ring (if enabled)."""
        if event_class not in self.enabled:
            return None
        ctx = getattr(self._local, "ctx", None)
        if ctx is not None:
            if request is None:
                request = ctx.get("request")
            if txn_id is None:
                txn_id = ctx.get("txn_id")
        record = EventRecord(
            event_id=next(self._ids),
            name=name,
            event_class=event_class.value,
            ts_ns=time.monotonic_ns(),
            thread=threading.current_thread().name,
            request=request,
            txn_id=txn_id,
            payload=payload,
        )
        ring = self._ring()
        if len(ring) == self.ring_size:
            self._dropped += 1
        ring.append(record)
        return record

    def accounting(self, name: str, **kwargs: Any) -> EventRecord | None:
        """Emit an ACCOUNTING record (unit-of-work completion)."""
        return self.emit(EventClass.ACCOUNTING, name, **kwargs)

    def statistics(self, name: str, **kwargs: Any) -> EventRecord | None:
        """Emit a STATISTICS record (interval deltas)."""
        return self.emit(EventClass.STATISTICS, name, **kwargs)

    def performance(self, name: str, **kwargs: Any) -> EventRecord | None:
        """Emit a PERFORMANCE record (suspension / fault)."""
        return self.emit(EventClass.PERFORMANCE, name, **kwargs)

    @contextmanager
    def context(self, *, request: str | None = None,
                txn_id: int | None = None) -> Iterator[None]:
        """Stamp records emitted by this thread inside the block.

        Contexts nest and merge: an inner txn context inherits the outer
        request label unless it overrides it.
        """
        previous: dict[str, Any] | None = getattr(self._local, "ctx", None)
        merged = dict(previous) if previous else {}
        if request is not None:
            merged["request"] = request
        if txn_id is not None:
            merged["txn_id"] = txn_id
        self._local.ctx = merged
        try:
            yield
        finally:
            self._local.ctx = previous

    # -- installation -----------------------------------------------------

    def install(self, stats: StatsRegistry) -> "EventTrace":
        """Attach this trace to ``stats`` (``stats.events``)."""
        stats.events = self
        return self

    def uninstall(self, stats: StatsRegistry) -> None:
        """Detach from ``stats`` if this trace is the one installed."""
        if stats.events is self:
            stats.events = None

    @contextmanager
    def installed(self, stats: StatsRegistry) -> Iterator["EventTrace"]:
        """Install for the duration of the block."""
        self.install(stats)
        try:
            yield self
        finally:
            self.uninstall(stats)

    # -- drain / export ---------------------------------------------------

    def records(self) -> list[EventRecord]:
        """All retained records, merged across threads in timestamp order."""
        with self._rings_lock:
            rings = list(self._rings)
        merged: list[EventRecord] = []
        for ring in rings:
            merged.extend(ring)
        merged.sort(key=lambda record: (record.ts_ns, record.event_id))
        return merged

    def last(self, n: int) -> list[EventRecord]:
        """The newest ``n`` retained records (crash post-mortem dumps)."""
        records = self.records()
        return records[-n:] if n > 0 else []

    @property
    def dropped(self) -> int:
        """Records lost to ring wrap-around since construction."""
        return self._dropped

    def write_jsonl(self, path: str) -> int:
        """Export the retained records as JSON lines; returns the count."""
        records = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.to_dict(),
                                        sort_keys=True) + "\n")
        return len(records)


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Load a JSONL trace export (blank lines tolerated)."""
    out: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


class StatsCollector:
    """Interval thread emitting STATISTICS delta records (IFCID 2 analogue).

    Every ``interval`` seconds the collector diffs the registry's counters
    and histograms against its previous snapshot and emits one
    ``stats.interval`` record carrying the non-zero counter deltas and
    per-histogram ``(count, sum)`` deltas.  A final record is emitted on
    :meth:`stop` so short runs still get at least one interval.
    """

    def __init__(self, stats: StatsRegistry, trace: EventTrace,
                 interval: float = 0.05) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.stats = stats
        self.trace = trace
        self.interval = float(interval)
        self.intervals = 0
        self._last_counters: dict[str, int] = {}
        self._last_histograms: dict[str, tuple[int, int]] = {}
        self._wake = threading.Event()
        self._thread: threading.Thread | None = None

    def _collect(self) -> None:
        counters = self.stats.counters()
        histograms = {
            name: (histogram.count, histogram.sum)
            for name, histogram in self.stats.histograms().items()}
        counter_deltas = {
            name: value - self._last_counters.get(name, 0)
            for name, value in counters.items()
            if value != self._last_counters.get(name, 0)}
        histogram_deltas = {
            name: {"count": count - self._last_histograms.get(name, (0, 0))[0],
                   "sum": total - self._last_histograms.get(name, (0, 0))[1]}
            for name, (count, total) in histograms.items()
            if (count, total) != self._last_histograms.get(name, (0, 0))}
        self._last_counters = counters
        self._last_histograms = histograms
        self.intervals += 1
        self.trace.statistics(
            "stats.interval", interval=self.intervals,
            counters=counter_deltas, histograms=histogram_deltas)

    def _run(self) -> None:
        while not self._wake.wait(self.interval):
            self._collect()

    def start(self) -> "StatsCollector":
        """Start the interval thread (idempotent)."""
        if self._thread is None:
            self._wake.clear()
            self._thread = threading.Thread(
                target=self._run, name="stats-collector", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and emit one final delta record."""
        thread = self._thread
        if thread is None:
            return
        self._thread = None
        self._wake.set()
        thread.join()
        self._collect()

    @contextmanager
    def running(self) -> Iterator["StatsCollector"]:
        """Run the collector for the duration of the block."""
        self.start()
        try:
            yield self
        finally:
            self.stop()


__all__ = [
    "ALL_CLASSES",
    "EventClass",
    "EventRecord",
    "EventTrace",
    "StatsCollector",
    "read_jsonl",
]
