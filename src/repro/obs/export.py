"""JSON export of span trees.

Benchmarks attach trace artifacts to their runs with :func:`write_trace`;
the schema is deliberately flat (name/attrs/counters/children) so external
tooling — or a later PR's flamegraph view — can consume it without knowing
engine internals.
"""

from __future__ import annotations

import json
import os

from repro.obs.tracer import Span, Tracer


def span_to_dict(span: Span) -> dict:
    """Plain-dict rendering of one span subtree (JSON-safe)."""
    out: dict[str, object] = {"name": span.name, "kind": span.kind}
    if span.attrs:
        out["attrs"] = {key: _jsonable(value)
                        for key, value in span.attrs.items()}
    if span.counters:
        out["counters"] = dict(sorted(span.counters.items()))
    if span.children:
        out["children"] = [span_to_dict(child) for child in span.children]
    return out


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (bytes, bytearray)):
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return str(value)


def trace_to_json(trace: Span | Tracer, indent: int | None = 2) -> str:
    """JSON text for a span tree (or a tracer's root)."""
    span = trace.root if isinstance(trace, Tracer) else trace
    return json.dumps(span_to_dict(span), indent=indent)


def write_trace(path: str, trace: Span | Tracer) -> str:
    """Write a span tree as a JSON artifact; returns the path written."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_to_json(trace))
        fh.write("\n")
    return path
