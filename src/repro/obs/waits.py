"""Wait-state profiling helpers (DB2 accounting class-3 analogue).

The mechanism lives in :mod:`repro.core.stats` — the :data:`WAITS` registry
of named suspension classes, ``StatsRegistry.wait_timer(cls)`` wrapping
every blocking site, and ``StatsRegistry.request_clock()`` decomposing each
request/transaction as ``elapsed = cpuish + Σ waits`` (reconciled by the
``sanitize.waits.reconcile`` runtime check).  This module is the *reading*
side: fold the ``waits.<class>_us`` counters back into per-class
breakdowns for reports, the monitor, the load harness and the
``python -m repro.obs.perf`` profiler.

The class inventory and its DB2 class-3 / IFCID mapping are documented in
README.md and DESIGN.md ("Instrumentation facility").
"""

from __future__ import annotations

from typing import Mapping

from repro.core.stats import WAITS, StatsRegistry, wait_counter

#: Stable rendering order: biggest architectural layers first.
WAIT_CLASS_ORDER: tuple[str, ...] = (
    "admission.queue", "latch.wait", "lock.wait",
    "wal.force", "wal.group_commit",
    "buffer.read_io", "buffer.write_io",
    "ckpt.interference", "txn.retry_backoff", "deadline.sleep",
)

assert frozenset(WAIT_CLASS_ORDER) == WAITS, \
    "WAIT_CLASS_ORDER must enumerate exactly the registered wait classes"


def wait_breakdown(counters: Mapping[str, int]) -> dict[str, int]:
    """Per-class microseconds from a counters mapping (non-zero only).

    Accepts either a global ``StatsRegistry.counters()`` dict or a
    per-transaction accounting ``counters`` dict — both charge waits
    through the same ``waits.<class>_us`` names.
    """
    out: dict[str, int] = {}
    for wait_class in WAIT_CLASS_ORDER:
        micros = counters.get(wait_counter(wait_class), 0)
        if micros:
            out[wait_class] = micros
    return out


def total_wait_us(counters: Mapping[str, int]) -> int:
    """Sum of all per-class wait charges in a counters mapping."""
    return sum(wait_breakdown(counters).values())


def wait_profile(stats: StatsRegistry) -> dict:
    """Snapshot the registry's wait state as a JSON-safe profile.

    ``by_class`` is the per-class total, ``request_wait`` the distribution
    of per-clock totals (count / p50 / p99 / max from the
    ``waits.request_wait_us`` histogram).
    """
    by_class = wait_breakdown(stats.counters())
    profile: dict = {
        "total_us": sum(by_class.values()),
        "by_class": by_class,
    }
    histogram = stats.histogram("waits.request_wait_us")
    if histogram is not None:
        profile["request_wait"] = {
            "count": histogram.count,
            "p50_us": histogram.quantile(0.50),
            "p99_us": histogram.quantile(0.99),
            "max_us": histogram.max,
        }
    return profile


def format_breakdown(by_class: Mapping[str, int],
                     elapsed_us: int | None = None) -> list[str]:
    """Render a per-class breakdown as aligned report lines.

    When ``elapsed_us`` is given, each class also shows its share of the
    elapsed time and a trailing ``cpuish+other`` line accounts for the
    unsuspended remainder — the ``elapsed = cpuish + Σ waits`` identity
    made visible.
    """
    ordered = [(cls, by_class[cls]) for cls in WAIT_CLASS_ORDER
               if by_class.get(cls)]
    ordered.sort(key=lambda item: item[1], reverse=True)
    total = sum(micros for _, micros in ordered)
    lines: list[str] = []
    for wait_class, micros in ordered:
        if elapsed_us:
            share = 100.0 * micros / elapsed_us
            lines.append(f"  {wait_class:<20} {micros:>12,} us "
                         f"{share:>6.1f}%")
        else:
            lines.append(f"  {wait_class:<20} {micros:>12,} us")
    if elapsed_us is not None:
        other = max(0, elapsed_us - total)
        share = 100.0 * other / elapsed_us if elapsed_us else 0.0
        lines.append(f"  {'cpuish+other':<20} {other:>12,} us "
                     f"{share:>6.1f}%")
    return lines


__all__ = [
    "WAITS",
    "WAIT_CLASS_ORDER",
    "format_breakdown",
    "total_wait_us",
    "wait_breakdown",
    "wait_counter",
    "wait_profile",
]
