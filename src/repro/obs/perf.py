"""Wait-state profiler CLI: trace -> where did the wall-clock go.

``python -m repro.obs.perf trace.jsonl`` analyzes a JSONL event-trace
export (``repro.serve.loadgen --trace-out``, or any
:meth:`~repro.obs.events.EventTrace.write_jsonl`) into the question DB2
accounting class-3 reports answer: which suspension classes ate the
elapsed time, how waits break down per request, and what the slowest
request was actually doing.  With no arguments it runs a small live load
through the serving layer with tracing enabled and profiles that.

Sections:

* **wait-class profile** — per-class totals across the trace, sorted by
  time, with suspension counts and share of total wait;
* **request profile** — per-request elapsed vs wait totals (from the
  ACCOUNTING ``serve.request`` records, waits attributed by request label
  and emitting thread);
* **slowest-request drill-down** — the span tree of the slowest request:
  each suspension in order, offset from request start;
* **trace summary** — record counts per class, statistics intervals,
  injected faults.
"""

from __future__ import annotations

import argparse
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.events import read_jsonl
from repro.obs.waits import WAIT_CLASS_ORDER

_WAIT_PREFIX = "wait."


@dataclass
class RequestProfile:
    """One served request reassembled from its trace records."""

    label: str
    thread: str
    elapsed_us: int
    outcome: str
    end_ts_ns: int
    waits: dict[str, int] = field(default_factory=dict)
    suspensions: list[dict[str, Any]] = field(default_factory=list)

    @property
    def wait_us(self) -> int:
        return sum(self.waits.values())


@dataclass
class TraceProfile:
    """Everything the report renders, reduced from one trace."""

    class_totals: Counter
    class_counts: Counter
    requests: list[RequestProfile]
    records_by_class: Counter
    statistics_intervals: int
    faults: Counter

    @property
    def total_wait_us(self) -> int:
        return sum(self.class_totals.values())


def profile_records(records: Iterable[dict[str, Any]]) -> TraceProfile:
    """Reduce raw trace dicts into a :class:`TraceProfile`.

    Suspensions are attributed to requests by (emitting thread, request
    label): a worker thread's wait events accumulate until the matching
    ACCOUNTING ``serve.request`` record closes the unit of work — the same
    thread cannot interleave two requests, so the pairing is exact.
    """
    class_totals: Counter = Counter()
    class_counts: Counter = Counter()
    records_by_class: Counter = Counter()
    faults: Counter = Counter()
    statistics_intervals = 0
    pending: dict[tuple[str, str | None], list[dict[str, Any]]] = {}
    requests: list[RequestProfile] = []

    ordered = sorted(records,
                     key=lambda r: (r.get("ts_ns", 0), r.get("id", 0)))
    for record in ordered:
        event_class = record.get("class", "")
        name = record.get("name", "")
        records_by_class[event_class] += 1
        if event_class == "performance" and name.startswith(_WAIT_PREFIX):
            wait_class = name[len(_WAIT_PREFIX):]
            micros = int(record.get("payload", {}).get("us", 0))
            class_totals[wait_class] += micros
            class_counts[wait_class] += 1
            key = (record.get("thread", ""), record.get("request"))
            pending.setdefault(key, []).append(record)
        elif event_class == "performance" and name.startswith("fault."):
            faults[name] += 1
        elif event_class == "statistics":
            statistics_intervals += 1
        elif event_class == "accounting" and name == "serve.request":
            key = (record.get("thread", ""), record.get("request"))
            suspensions = pending.pop(key, [])
            waits: dict[str, int] = {}
            for suspension in suspensions:
                wait_class = suspension["name"][len(_WAIT_PREFIX):]
                waits[wait_class] = waits.get(wait_class, 0) + \
                    int(suspension.get("payload", {}).get("us", 0))
            payload = record.get("payload", {})
            requests.append(RequestProfile(
                label=record.get("request") or "?",
                thread=record.get("thread", ""),
                elapsed_us=int(payload.get("elapsed_us", 0)),
                outcome=str(payload.get("outcome", "")),
                end_ts_ns=int(record.get("ts_ns", 0)),
                waits=waits,
                suspensions=suspensions,
            ))
    return TraceProfile(class_totals, class_counts, requests,
                        records_by_class, statistics_intervals, faults)


def _class_order(totals: Counter) -> list[str]:
    known = [cls for cls in WAIT_CLASS_ORDER if totals.get(cls)]
    unknown = sorted(cls for cls in totals if cls not in WAIT_CLASS_ORDER)
    return sorted(known + unknown,
                  key=lambda cls: totals[cls], reverse=True)


def render_profile(profile: TraceProfile, top_requests: int = 10) -> str:
    """Render the full text report for one :class:`TraceProfile`."""
    lines: list[str] = []
    total_wait = profile.total_wait_us

    lines.append("== WAIT-CLASS PROFILE ==")
    if total_wait:
        lines.append(f"{'class':<22} {'total_us':>12} {'count':>8} "
                     f"{'avg_us':>9} {'share':>7}")
        for wait_class in _class_order(profile.class_totals):
            micros = profile.class_totals[wait_class]
            count = profile.class_counts[wait_class]
            share = 100.0 * micros / total_wait
            lines.append(f"{wait_class:<22} {micros:>12,} {count:>8} "
                         f"{micros // max(count, 1):>9,} {share:>6.1f}%")
        lines.append(f"{'total':<22} {total_wait:>12,}")
    else:
        lines.append("(no suspensions recorded)")

    requests = profile.requests
    lines.append("")
    lines.append("== REQUEST PROFILE ==")
    if requests:
        elapsed = sum(r.elapsed_us for r in requests)
        waited = sum(r.wait_us for r in requests)
        lines.append(f"{len(requests)} requests, elapsed {elapsed:,} us, "
                     f"waits {waited:,} us "
                     f"({100.0 * waited / elapsed if elapsed else 0.0:.1f}% "
                     f"suspended)")
        slowest = sorted(requests, key=lambda r: r.elapsed_us,
                         reverse=True)[:top_requests]
        lines.append(f"{'request':<24} {'elapsed_us':>11} {'wait_us':>10} "
                     f"{'top wait class':<20} {'outcome'}")
        for request in slowest:
            top = max(request.waits.items(), key=lambda item: item[1],
                      default=("-", 0))
            lines.append(f"{request.label:<24} {request.elapsed_us:>11,} "
                         f"{request.wait_us:>10,} {top[0]:<20} "
                         f"{request.outcome}")
    else:
        lines.append("(no serve.request accounting records in trace)")

    if requests:
        worst = max(requests, key=lambda r: r.elapsed_us)
        lines.append("")
        lines.append("== SLOWEST REQUEST ==")
        lines.extend(_render_span_tree(worst))

    lines.append("")
    lines.append("== TRACE SUMMARY ==")
    for event_class in ("accounting", "statistics", "performance"):
        lines.append(f"  {event_class:<12} "
                     f"{profile.records_by_class.get(event_class, 0):>8} "
                     f"records")
    if profile.statistics_intervals:
        lines.append(f"  statistics intervals: "
                     f"{profile.statistics_intervals}")
    for fault, count in sorted(profile.faults.items()):
        lines.append(f"  {fault:<22} {count:>8} injected")
    return "\n".join(lines) + "\n"


def _render_span_tree(request: RequestProfile) -> list[str]:
    """The slowest request as a span tree: suspensions offset from start."""
    start_ns = request.end_ts_ns - request.elapsed_us * 1000
    lines = [f"{request.label}  elapsed {request.elapsed_us:,} us  "
             f"waits {request.wait_us:,} us  "
             f"[{request.outcome}]  thread {request.thread}"]
    suspensions = request.suspensions
    for index, suspension in enumerate(suspensions):
        branch = "└─" if index == len(suspensions) - 1 else "├─"
        wait_class = suspension["name"][len(_WAIT_PREFIX):]
        micros = int(suspension.get("payload", {}).get("us", 0))
        # The record is emitted when the wait *ends*; back the offset up
        # by the duration so the tree shows where each suspension began.
        offset_us = max(0, (int(suspension.get("ts_ns", 0)) - start_ns)
                        // 1000 - micros)
        lines.append(f"  {branch} +{offset_us:>8,} us  {wait_class:<20} "
                     f"{micros:>10,} us")
    if not suspensions:
        lines.append("  └─ (no suspensions: request never blocked)")
    return lines


def _live_records(clients: int, ops: int, seed: int) -> list[dict[str, Any]]:
    """Run a small traced load in-process and return its records."""
    from repro.obs.events import EventTrace
    from repro.serve.loadgen import run_load

    trace = EventTrace()
    run_load(clients=clients, ops_per_client=ops, seed=seed, trace=trace)
    return [record.to_dict() for record in trace.records()]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.perf",
        description="Wait-state profile from a JSONL event trace "
                    "(or a live in-process load when no trace is given).")
    parser.add_argument("traces", nargs="*",
                        help="JSONL trace exports (loadgen --trace-out)")
    parser.add_argument("--top", type=int, default=10,
                        help="slowest requests to list (default 10)")
    parser.add_argument("--live-clients", type=int, default=8,
                        help="clients for the no-argument live profile")
    parser.add_argument("--live-ops", type=int, default=3,
                        help="ops per client for the live profile")
    parser.add_argument("--seed", type=int, default=3,
                        help="seed for the live profile workload")
    args = parser.parse_args(argv)

    records: list[dict[str, Any]] = []
    if args.traces:
        for path in args.traces:
            records.extend(read_jsonl(path))
    else:
        records = _live_records(args.live_clients, args.live_ops, args.seed)

    profile = profile_records(records)
    print(render_profile(profile, top_requests=args.top), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
