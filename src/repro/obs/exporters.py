"""Metric exposition: Prometheus text format and JSON artifacts.

Two renderings of the same :class:`~repro.core.stats.StatsRegistry` state:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# TYPE`` comments, ``_total`` counters, cumulative ``le`` histogram
  buckets), so a scrape endpoint or a file drop works with standard
  tooling;
* :func:`metrics_to_dict` / :func:`engine_metrics` — JSON-safe dicts, the
  artifact format the benchmarks commit (``BENCH_baseline.json``) and the
  report CLI (:mod:`repro.obs.report`) consumes.

Metric names keep the engine's ``component.metric`` convention in JSON and
are mangled to ``repro_component_metric`` for Prometheus.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.core.stats import StatsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> obs)
    from repro.core.engine import Database

#: Prefix for every Prometheus series exported by the engine.
PROMETHEUS_PREFIX = "repro"

#: Curated HELP strings for the series operators actually alert on; every
#: other series gets a generated one-liner naming its registry entry.
_HELP_OVERRIDES = {
    "serve.request_us": "End-to-end request latency in microseconds "
                        "(submit to finish, queue wait included)",
    "serve.queue_wait_us": "Admission-queue wait per request in "
                           "microseconds",
    "waits.request_wait_us": "Total suspension time per request/txn wait "
                             "clock in microseconds (all wait classes)",
    "wal.group_size": "COMMIT records hardened per group-commit log force",
}


def _mangle(name: str) -> str:
    """``component.metric`` -> Prometheus-legal ``component_metric``."""
    return name.replace(".", "_").replace("-", "_")


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring (backslash and newline, per spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    """Escape a label value (backslash, double quote, newline)."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _help_text(name: str, kind: str) -> str:
    override = _HELP_OVERRIDES.get(name)
    if override is not None:
        return override
    return f"Engine {kind} {name} (see repro.core.stats registries)"


def render_prometheus(stats: StatsRegistry,
                      prefix: str = PROMETHEUS_PREFIX) -> str:
    """Counters, gauges and histograms in Prometheus text format.

    Every series carries ``# HELP``/``# TYPE`` metadata (HELP text
    escaped per the exposition format).  Counters get a ``_total``
    suffix; histograms emit the standard cumulative ``_bucket{le="..."}``
    series (power-of-two bounds plus ``+Inf``) with ``_sum`` and
    ``_count``.
    """
    lines: list[str] = []
    for name, value in sorted(stats.counters().items()):
        series = f"{prefix}_{_mangle(name)}_total"
        lines.append(f"# HELP {series} "
                     f"{_escape_help(_help_text(name, 'counter'))}")
        lines.append(f"# TYPE {series} counter")
        lines.append(f"{series} {value}")
    for name, value in sorted(stats.gauges().items()):
        series = f"{prefix}_{_mangle(name)}"
        lines.append(f"# HELP {series} "
                     f"{_escape_help(_help_text(name, 'gauge'))}")
        lines.append(f"# TYPE {series} gauge")
        lines.append(f"{series} {value}")
    for name, histogram in sorted(stats.histograms().items()):
        series = f"{prefix}_{_mangle(name)}"
        lines.append(f"# HELP {series} "
                     f"{_escape_help(_help_text(name, 'histogram'))}")
        lines.append(f"# TYPE {series} histogram")
        for bound, cumulative in histogram.cumulative_buckets():
            lines.append(f'{series}_bucket{{le="'
                         f'{_escape_label(str(bound))}"}} {cumulative}')
        lines.append(f'{series}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{series}_sum {histogram.sum}")
        lines.append(f"{series}_count {histogram.count}")
    return "\n".join(lines) + "\n"


def metrics_to_dict(stats: StatsRegistry) -> dict:
    """Counters, gauges and histograms as one JSON-safe dict."""
    return {
        "counters": dict(sorted(stats.counters().items())),
        "gauges": dict(sorted(stats.gauges().items())),
        "histograms": {name: histogram.as_dict()
                       for name, histogram
                       in sorted(stats.histograms().items())},
    }


def engine_metrics(db: "Database") -> dict:
    """The full metrics artifact for a live engine.

    Extends :func:`metrics_to_dict` with the accounting ring, the
    slow-query log, and a monitor snapshot — everything the report CLI
    can render from a file instead of a live engine.
    """
    from repro.obs.monitor import Monitor
    from repro.obs.waits import wait_profile

    artifact = metrics_to_dict(db.stats)
    artifact["accounting"] = [record.to_dict()
                              for record in db.txns.accounting]
    artifact["slow_queries"] = [record.to_dict()
                                for record in db.slow_queries]
    artifact["waits"] = wait_profile(db.stats)
    artifact["snapshot"] = Monitor(db).snapshot().to_dict()
    return artifact


def write_prometheus(stats: StatsRegistry, path: str,
                     prefix: str = PROMETHEUS_PREFIX) -> None:
    """Write :func:`render_prometheus` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_prometheus(stats, prefix=prefix))


def write_metrics_json(metrics: dict, path: str) -> None:
    """Write a metrics artifact dict (see :func:`engine_metrics`)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(metrics, handle, indent=2, sort_keys=True)
        handle.write("\n")
