"""Query-level observability: hierarchical tracing and EXPLAIN ANALYZE.

The paper's infrastructure box (Fig. 1) lists *instrumentation* among the
relational assets the XML engine inherits.  :mod:`repro.core.stats` provides
the flat counter bag; this package adds the hierarchical view on top of it:

* :class:`~repro.obs.tracer.Span` / :class:`~repro.obs.tracer.Tracer` — a
  span tree whose every node captures the :class:`StatsRegistry` counter
  deltas between enter and exit, so "how many page reads did this B+tree
  probe cost" falls out of the existing accounting;
* :class:`~repro.obs.explain.ExplainResult` — the DB2-style EXPLAIN ANALYZE
  surface returned by :meth:`repro.core.engine.Database.explain_analyze`:
  the chosen :class:`~repro.query.plan.AccessPlan` annotated with actual
  row/entry/page counts per operator;
* :mod:`repro.obs.export` — JSON export of span trees, used by the
  benchmarks to attach trace artifacts to BENCH runs;
* :class:`~repro.obs.monitor.Monitor` — DISPLAY-style snapshots of live
  engine state (buffer pool, lock table + waits-for DOT, WAL, transaction
  table, per-table-space/per-index footprints);
* :class:`~repro.obs.slowlog.SlowQueryLog` — bounded ring of auto-captured
  offender queries (plan + span tree + counter deltas);
* :mod:`repro.obs.exporters` — Prometheus-text and JSON exposition of
  counters/gauges/histograms;
* :mod:`repro.obs.waits` — the reading side of the wait clock: per-class
  suspension breakdowns (DB2 accounting class-3 analogue) folded from the
  ``waits.*_us`` counters charged by ``StatsRegistry.wait_timer``;
* :mod:`repro.obs.events` — :class:`~repro.obs.events.EventTrace`, the
  IFCID-style structured event trace (accounting / statistics /
  performance records in per-thread bounded rings) plus the
  statistics-interval :class:`~repro.obs.events.StatsCollector`;
* :mod:`repro.obs.perf` — ``python -m repro.obs.perf``, the wait-state
  profiler over a JSONL trace export (imported lazily — it pulls in the
  serving layer for its live mode, so it is deliberately *not* re-exported
  here);
* :mod:`repro.obs.report` — ``python -m repro.obs.report``, the
  human-readable accounting/statistics report.

Tracing is opt-in: components call ``self.stats.trace("name")`` which is a
reusable no-op unless a :class:`Tracer` is installed on the registry, so the
uninstrumented cost is ~zero.
"""

from repro.obs.events import (EventClass, EventRecord, EventTrace,
                              StatsCollector)
from repro.obs.explain import ExplainResult
from repro.obs.export import span_to_dict, write_trace
from repro.obs.exporters import (engine_metrics, metrics_to_dict,
                                 render_prometheus, write_metrics_json,
                                 write_prometheus)
from repro.obs.monitor import Monitor, MonitorSnapshot
from repro.obs.slowlog import SlowQueryLog, SlowQueryRecord
from repro.obs.tracer import Span, Tracer
from repro.obs.waits import (WAIT_CLASS_ORDER, format_breakdown,
                             total_wait_us, wait_breakdown, wait_profile)

__all__ = [
    "EventClass", "EventRecord", "EventTrace", "ExplainResult", "Monitor",
    "MonitorSnapshot", "SlowQueryLog", "SlowQueryRecord", "Span",
    "StatsCollector", "Tracer", "WAIT_CLASS_ORDER", "engine_metrics",
    "format_breakdown", "metrics_to_dict", "render_prometheus",
    "span_to_dict", "total_wait_us", "wait_breakdown", "wait_profile",
    "write_metrics_json", "write_prometheus", "write_trace",
]
