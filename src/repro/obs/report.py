"""Human-readable engine report: ``python -m repro.obs.report``.

The DB2 analogue is the accounting/statistics report a monitor product
prints from trace datasets.  Input is either one or more metrics artifacts
written by :func:`repro.obs.exporters.write_metrics_json` (e.g. the
benchmark suite's ``benchmarks/artifacts/*.metrics.json`` or the committed
``BENCH_baseline.json``), or — with no arguments — a small built-in demo
workload run on an in-memory engine, so the command always has something
to show::

    python -m repro.obs.report benchmarks/artifacts/*.metrics.json
    python -m repro.obs.report            # demo workload, live snapshot

The report renders counters grouped by component, histogram tables
(count / mean / p50 / p90 / max), the accounting summary, and any captured
slow queries.
"""

from __future__ import annotations

import json
import sys


def _histogram_quantile(buckets: list[list[int]], count: int,
                        q: float) -> int:
    """Bucket upper bound holding the ``q``-quantile (artifact form)."""
    if not count:
        return 0
    rank = q * count
    running = 0
    for bound, bucket_count in buckets:
        running += bucket_count
        if running >= rank:
            return bound
    return buckets[-1][0] if buckets else 0


def render_counters(counters: dict[str, int]) -> list[str]:
    """Counters grouped by ``component.`` prefix, zero-free."""
    lines = ["== COUNTERS =="]
    groups: dict[str, list[tuple[str, int]]] = {}
    for name, value in sorted(counters.items()):
        if not value:
            continue
        component = name.split(".", 1)[0]
        groups.setdefault(component, []).append((name, value))
    for component in sorted(groups):
        lines.append(f"  [{component}]")
        for name, value in groups[component]:
            lines.append(f"    {name:<32} {value:>12}")
    if len(lines) == 1:
        lines.append("  (no counters)")
    return lines


def render_histograms(histograms: dict[str, dict]) -> list[str]:
    """One table row per histogram: count / mean / p50 / p90 / p99 / max.

    Every histogram present in the artifact is rendered — including the
    serving-layer latency distributions (``serve.request_us``,
    ``serve.queue_wait_us``), the group-commit batch shape
    (``wal.group_size``) and the wait clock (``waits.request_wait_us``) —
    the report computes quantiles from whatever buckets it is handed
    rather than a fixed name list.
    """
    lines = ["== HISTOGRAMS ==",
             f"  {'name':<28} {'count':>8} {'mean':>10} "
             f"{'p50':>8} {'p90':>8} {'p99':>8} {'max':>10}"]
    if not histograms:
        lines.append("  (no histograms)")
        return lines
    for name, data in sorted(histograms.items()):
        count = data.get("count", 0)
        total = data.get("sum", 0)
        buckets = data.get("buckets", [])
        mean = total / count if count else 0.0
        p50 = _histogram_quantile(buckets, count, 0.5)
        p90 = _histogram_quantile(buckets, count, 0.9)
        p99 = _histogram_quantile(buckets, count, 0.99)
        lines.append(f"  {name:<28} {count:>8} {mean:>10.1f} "
                     f"{p50:>8} {p90:>8} {p99:>8} {data.get('max', 0):>10}")
    return lines


def render_waits(waits: dict) -> list[str]:
    """The DB2 class-3 section: per-class suspension totals."""
    lines = ["== WAITS (class-3 suspensions) =="]
    by_class = waits.get("by_class", {})
    if not by_class:
        lines.append("  (no suspensions charged)")
        return lines
    from repro.obs.waits import format_breakdown
    lines += format_breakdown(by_class)
    lines.append(f"  {'total':<20} {waits.get('total_us', 0):>12,} us")
    request_wait = waits.get("request_wait", {})
    if request_wait.get("count"):
        lines.append(f"  per-request total: p50 "
                     f"{request_wait.get('p50_us', 0):,} us  p99 "
                     f"{request_wait.get('p99_us', 0):,} us  max "
                     f"{request_wait.get('max_us', 0):,} us "
                     f"({request_wait['count']} clocked)")
    return lines


def render_accounting(records: list[dict]) -> list[str]:
    """Accounting summary: totals plus the costliest transactions."""
    lines = ["== ACCOUNTING =="]
    if not records:
        lines.append("  (no accounting records)")
        return lines
    committed = sum(1 for r in records if r.get("outcome") == "committed")
    aborted = len(records) - committed
    retries = sum(r.get("retries", 0) for r in records)
    lines.append(f"  {len(records)} transactions "
                 f"({committed} committed, {aborted} aborted, "
                 f"{retries} retries folded)")
    def cost(record: dict) -> int:
        return (record.get("pages_read", 0) + record.get("pages_written", 0)
                + record.get("wal_bytes", 0))
    lines.append(f"  {'txn':>6} {'iso':>4} {'outcome':>10} {'rd':>6} "
                 f"{'wr':>6} {'lockw':>6} {'walB':>8} {'retries':>8}")
    for record in sorted(records, key=cost, reverse=True)[:10]:
        lines.append(f"  {record.get('txn_id', '?'):>6} "
                     f"{record.get('isolation', '-'):>4} "
                     f"{record.get('outcome', '?'):>10} "
                     f"{record.get('pages_read', 0):>6} "
                     f"{record.get('pages_written', 0):>6} "
                     f"{record.get('lock_waits', 0):>6} "
                     f"{record.get('wal_bytes', 0):>8} "
                     f"{record.get('retries', 0):>8}")
    return lines


def render_slow_queries(records: list[dict]) -> list[str]:
    """Top (slow) queries with what they exceeded."""
    lines = ["== SLOW QUERIES =="]
    if not records:
        lines.append("  (none captured)")
        return lines
    for record in records:
        lines.append(f"  {record.get('path', '?')!r} on "
                     f"{record.get('table', '?')}."
                     f"{record.get('column', '?')} "
                     f"[{record.get('method', '?')}] "
                     f"rows={record.get('rows', 0)}")
        for name, pair in sorted(record.get("exceeded", {}).items()):
            lines.append(f"    exceeded {name}: {pair[0]} > {pair[1]}")
    return lines


def render_artifact(artifact: dict, title: str = "") -> str:
    """The full report for one metrics artifact dict."""
    lines: list[str] = []
    if title:
        lines.append(f"==== ENGINE REPORT: {title} ====")
    lines += render_counters(artifact.get("counters", {}))
    lines += render_histograms(artifact.get("histograms", {}))
    lines += render_waits(artifact.get("waits", {}))
    lines += render_accounting(artifact.get("accounting", []))
    lines += render_slow_queries(artifact.get("slow_queries", []))
    return "\n".join(lines)


def _demo_artifact() -> dict:
    """Run a tiny workload on an in-memory engine and export it.

    The demo goes through the *serving layer* with group commit enabled —
    not straight engine calls — so the report's own smoke path populates
    the post-serving-layer histograms (``serve.request_us``,
    ``serve.queue_wait_us``, ``wal.group_size``) and the wait clock,
    exactly the distributions a real artifact carries.
    """
    from repro.core.config import EngineConfig
    from repro.core.engine import Database
    from repro.obs.exporters import engine_metrics
    from repro.serve.server import DatabaseServer

    config = EngineConfig(slow_query_events=1, txn_group_commit=True,
                          serve_workers=2)
    db = Database(config)
    db.create_table("demo", [("id", "bigint"), ("doc", "xml")])
    server = DatabaseServer(db).start()
    try:
        with server.session() as session:
            for i in range(5):
                session.insert("demo", (i, f"<order id='{i}'><item n='{i}'>"
                                           f"widget</item></order>"))
            session.query("demo", "doc", "/order/item")
    finally:
        # Every write goes through the server: with group commit on, the
        # log is a shared field the lockset sanitizer tracks, and mixing
        # served (latch-held) commits with direct engine commits would be
        # exactly the disjoint-lockset pattern it exists to reject.
        server.shutdown(drain=True)
    return engine_metrics(db)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    reports: list[str] = []
    if not argv:
        reports.append(render_artifact(_demo_artifact(),
                                       title="demo workload (live)"))
    for path in argv:
        try:
            with open(path, encoding="utf-8") as handle:
                artifact = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read metrics artifact {path!r}: {exc}",
                  file=sys.stderr)
            return 1
        reports.append(render_artifact(artifact, title=path))
    try:
        print("\n\n".join(reports))
    except BrokenPipeError:  # e.g. piped into `head`
        sys.stderr.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    sys.exit(main())
