"""EXPLAIN ANALYZE: the chosen access plan annotated with actual costs.

DB2's EXPLAIN facility is part of the relational infrastructure the paper
builds on; :meth:`repro.core.engine.Database.explain_analyze` is its analogue
here.  The query runs for real under a :class:`~repro.obs.tracer.Tracer`,
and the result pairs the planner's :class:`~repro.query.plan.AccessPlan`
(§4.3, Table 2) with the span tree of what actually happened: per-operator
row counts, index entries scanned, logical page touches and physical I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.export import span_to_dict, trace_to_json
from repro.obs.tracer import Span
from repro.query.plan import AccessPlan

#: Counters worth calling out per operator in the text rendering.
_HEADLINE_COUNTERS = (
    "exec.docs_evaluated", "exec.candidates", "exec.anchors_verified",
    "btree.entries_scanned", "buffer.hits", "buffer.misses",
    "disk.page_reads", "xscan.events",
)


@dataclass
class ExplainResult:
    """The outcome of one EXPLAIN ANALYZE run."""

    plan: AccessPlan
    #: The query's actual result rows (EXPLAIN ANALYZE executes for real).
    matches: list = field(default_factory=list)
    #: Root of the captured span tree.
    root: Span = field(default_factory=lambda: Span("explain"))

    @property
    def row_count(self) -> int:
        return len(self.matches)

    def span(self, name: str) -> Span | None:
        """First span named ``name`` in the captured tree."""
        return self.root.find(name)

    def operator_costs(self) -> dict[str, dict[str, int]]:
        """Per-operator counter deltas, keyed by span name.

        Repeated operators (e.g. one ``xscan.run`` per candidate document)
        are summed, which is what a DB2 operator row would show.
        """
        out: dict[str, dict[str, int]] = {}
        # Sum sibling operators but never a span into its own ancestors:
        # deltas are inclusive, so only same-name repetition aggregates.
        seen_on_path: set[str] = set()

        def visit_exclusive(span: Span) -> None:
            added = False
            if span.kind == "span" and span.name not in seen_on_path:
                bucket = out.setdefault(span.name, {})
                for counter, delta in span.counters.items():
                    bucket[counter] = bucket.get(counter, 0) + delta
                seen_on_path.add(span.name)
                added = True
            for child in span.children:
                visit_exclusive(child)
            if added:
                seen_on_path.discard(span.name)

        visit_exclusive(self.root)
        return out

    def format(self) -> str:
        """DB2-style EXPLAIN ANALYZE text: plan, then actuals."""
        lines = ["EXPLAIN ANALYZE"]
        lines.extend("  " + line for line in self.plan.explain().splitlines())
        lines.append(f"  actual rows: {self.row_count}")
        lines.append("operators (actual):")
        for name, counters in self.operator_costs().items():
            headline = [f"{key}={counters[key]}"
                        for key in _HEADLINE_COUNTERS if key in counters]
            suffix = f" [{' '.join(headline)}]" if headline else ""
            lines.append(f"  {name}{suffix}")
        lines.append("trace:")
        lines.extend("  " + line
                     for line in self.root.format().splitlines())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe rendering (plan summary + span tree)."""
        return {
            "plan": {
                "method": self.plan.method.value,
                "path": str(self.plan.path),
                "exact": self.plan.exact,
                "probes": [
                    [source.describe() for source in group]
                    for group in self.plan.source_groups
                ],
            },
            "rows": self.row_count,
            "trace": span_to_dict(self.root),
        }

    def to_json(self, indent: int | None = 2) -> str:
        import json
        return json.dumps(self.to_dict(), indent=indent)

    def __str__(self) -> str:
        return self.format()


def trace_json(result: ExplainResult) -> str:
    """The span tree alone, as JSON (benchmark artifacts)."""
    return trace_to_json(result.root)
