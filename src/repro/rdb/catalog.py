"""Catalog and directory: definitions of tables, columns, indexes, schemas.

The paper reuses the relational catalog with minor enhancement (§2): XML adds
registered schemas (compiled to a binary format at registration time, Fig. 4)
and the database-wide name table (§3.1).  The catalog here is a plain object
registry with a binary persistence form so archive recovery can restore DDL
state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError
from repro.rdb import codec
from repro.rdb.values import SqlType
from repro.xdm.names import NameTable


@dataclass(frozen=True)
class ColumnDef:
    """One column of a base table."""

    name: str
    sql_type: SqlType
    #: For XML columns: name of the registered schema to validate against.
    schema_name: str | None = None


@dataclass
class TableDef:
    """A base table definition.

    A table with at least one XML column carries an implicit ``DocID`` column
    shared by all its XML columns (§3.1); the storage layer materializes it,
    the SQL surface hides it.
    """

    name: str
    columns: list[ColumnDef]

    def __post_init__(self) -> None:
        seen = set()
        for col in self.columns:
            if col.name in seen:
                raise CatalogError(f"duplicate column {col.name!r} in {self.name!r}")
            seen.add(col.name)

    @property
    def xml_columns(self) -> list[ColumnDef]:
        return [c for c in self.columns if c.sql_type is SqlType.XML]

    @property
    def has_xml(self) -> bool:
        return any(c.sql_type is SqlType.XML for c in self.columns)

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def column(self, name: str) -> ColumnDef:
        return self.columns[self.column_index(name)]


@dataclass
class IndexDef:
    """A generic index definition.

    ``kind`` distinguishes relational column indexes (``"column"``) from
    XPath value indexes (``"xpath"``); ``spec`` carries kind-specific fields
    (column name, or XPath pattern + key type).
    """

    name: str
    table: str
    kind: str
    spec: dict[str, str] = field(default_factory=dict)
    unique: bool = False


class Catalog:
    """In-memory catalog with binary persistence."""

    def __init__(self) -> None:
        self.names = NameTable()
        self._tables: dict[str, TableDef] = {}
        self._indexes: dict[str, IndexDef] = {}
        self._schemas: dict[str, bytes] = {}
        self._next_docid: dict[str, int] = {}

    # -- tables ---------------------------------------------------------------

    def add_table(self, table: TableDef) -> None:
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        if table.has_xml:
            self._next_docid[table.name] = 1

    def table(self, name: str) -> TableDef:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def tables(self) -> list[TableDef]:
        return list(self._tables.values())

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name]
        self._next_docid.pop(name, None)
        for ix_name in [n for n, ix in self._indexes.items() if ix.table == name]:
            del self._indexes[ix_name]

    def next_docid(self, table: str) -> int:
        """Allocate the next DocID for ``table`` (monotonic, never reused)."""
        if table not in self._next_docid:
            raise CatalogError(f"table {table!r} has no XML columns")
        docid = self._next_docid[table]
        self._next_docid[table] = docid + 1
        return docid

    # -- indexes -----------------------------------------------------------------

    def add_index(self, index: IndexDef) -> None:
        if index.name in self._indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        self.table(index.table)  # must exist
        self._indexes[index.name] = index

    def index(self, name: str) -> IndexDef:
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"unknown index {name!r}") from None

    def indexes_on(self, table: str, kind: str | None = None) -> list[IndexDef]:
        return [
            ix for ix in self._indexes.values()
            if ix.table == table and (kind is None or ix.kind == kind)
        ]

    def drop_index(self, name: str) -> None:
        if name not in self._indexes:
            raise CatalogError(f"unknown index {name!r}")
        del self._indexes[name]

    # -- registered schemas --------------------------------------------------------

    def register_schema(self, name: str, compiled: bytes) -> None:
        """Store a compiled (binary) XML schema under ``name`` (Fig. 4)."""
        if name in self._schemas:
            raise CatalogError(f"schema {name!r} already registered")
        self._schemas[name] = compiled

    def schema(self, name: str) -> bytes:
        try:
            return self._schemas[name]
        except KeyError:
            raise CatalogError(f"schema {name!r} is not registered") from None

    def schema_names(self) -> list[str]:
        return list(self._schemas)

    # -- persistence --------------------------------------------------------------

    def encode(self) -> bytes:
        out = bytearray()
        codec.write_bytes(out, self.names.encode())
        codec.write_uvarint(out, len(self._tables))
        for table in self._tables.values():
            codec.write_str(out, table.name)
            codec.write_uvarint(out, len(table.columns))
            for col in table.columns:
                codec.write_str(out, col.name)
                codec.write_str(out, col.sql_type.value)
                codec.write_str(out, col.schema_name or "")
            codec.write_uvarint(out, self._next_docid.get(table.name, 0))
        codec.write_uvarint(out, len(self._indexes))
        for index in self._indexes.values():
            codec.write_str(out, index.name)
            codec.write_str(out, index.table)
            codec.write_str(out, index.kind)
            out.append(1 if index.unique else 0)
            codec.write_uvarint(out, len(index.spec))
            for key, value in index.spec.items():
                codec.write_str(out, key)
                codec.write_str(out, value)
        codec.write_uvarint(out, len(self._schemas))
        for name, blob in self._schemas.items():
            codec.write_str(out, name)
            codec.write_bytes(out, blob)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes | memoryview) -> "Catalog":
        catalog = cls()
        pos = 0
        names_blob, pos = codec.read_bytes(data, pos)
        catalog.names = NameTable.decode(names_blob)
        n_tables, pos = codec.read_uvarint(data, pos)
        for _ in range(n_tables):
            t_name, pos = codec.read_str(data, pos)
            n_cols, pos = codec.read_uvarint(data, pos)
            cols = []
            for _ in range(n_cols):
                c_name, pos = codec.read_str(data, pos)
                c_type, pos = codec.read_str(data, pos)
                c_schema, pos = codec.read_str(data, pos)
                cols.append(ColumnDef(c_name, SqlType(c_type), c_schema or None))
            next_docid, pos = codec.read_uvarint(data, pos)
            table = TableDef(t_name, cols)
            catalog._tables[t_name] = table
            if next_docid:
                catalog._next_docid[t_name] = next_docid
        n_indexes, pos = codec.read_uvarint(data, pos)
        for _ in range(n_indexes):
            i_name, pos = codec.read_str(data, pos)
            i_table, pos = codec.read_str(data, pos)
            i_kind, pos = codec.read_str(data, pos)
            unique = bool(data[pos])
            pos += 1
            n_spec, pos = codec.read_uvarint(data, pos)
            spec = {}
            for _ in range(n_spec):
                key, pos = codec.read_str(data, pos)
                value, pos = codec.read_str(data, pos)
                spec[key] = value
            catalog._indexes[i_name] = IndexDef(i_name, i_table, i_kind, spec, unique)
        n_schemas, pos = codec.read_uvarint(data, pos)
        for _ in range(n_schemas):
            s_name, pos = codec.read_str(data, pos)
            blob, pos = codec.read_bytes(data, pos)
            catalog._schemas[s_name] = blob
        return catalog
