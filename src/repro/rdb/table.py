"""Relational base tables: typed rows on a table space, with column indexes.

Base tables are the anchor of the paper's storage scheme (Fig. 2): a table
with XML columns stores, per row, its relational values plus the implicit
``DocID``; the XML data itself lives in internal XML tables managed by
:mod:`repro.xmlstore`.  At this layer an XML column therefore holds the
document's DocID (a BIGINT) — the engine facade translates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import CatalogError, RecordNotFoundError
from repro.rdb.btree import BTree
from repro.rdb.buffer import BufferPool
from repro.rdb.catalog import TableDef
from repro.rdb.tablespace import Rid, TableSpace
from repro.rdb.values import SqlType, decode_row, encode_row, key_encode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import ShardContext


class Table:
    """Storage-facing view of one base table."""

    #: Declared resource capture (SHARD003): the table's storage lives on
    #: the buffer pool it was created over — shard-scoped with the table.
    _shard_scoped_ = ("pool",)

    def __init__(self, definition: TableDef, pool: BufferPool,
                 context: "ShardContext | None" = None) -> None:
        self.definition = definition
        self.pool = pool
        self.context = context
        self.space = TableSpace(pool, name=f"ts.{definition.name}",
                                context=context)
        # XML columns store the DocID at this layer.
        self._storage_types = [
            SqlType.BIGINT if c.sql_type is SqlType.XML else c.sql_type
            for c in definition.columns
        ]
        self._column_indexes: dict[str, BTree] = {}
        self._rids: dict[Rid, None] = {}

    # -- indexes --------------------------------------------------------------

    def create_column_index(self, column: str, unique: bool = False) -> BTree:
        """Create (and backfill) a B+tree index on ``column``."""
        if column in self._column_indexes:
            raise CatalogError(f"column {column!r} is already indexed")
        col_no = self.definition.column_index(column)
        sql_type = self._storage_types[col_no]
        tree = BTree(self.pool, name=f"ix.{self.definition.name}.{column}",
                     unique=unique, context=self.context)
        for rid, row in self.scan_rids():
            tree.insert(key_encode(sql_type, row[col_no]), rid.to_bytes())
        self._column_indexes[column] = tree
        return tree

    def column_index(self, column: str) -> BTree | None:
        return self._column_indexes.get(column)

    # -- DML ----------------------------------------------------------------------

    def insert(self, row: tuple) -> Rid:
        """Insert ``row`` (values in column order); returns its RID."""
        encoded = encode_row(self._storage_types, row)
        rid = self.space.insert(encoded)
        self._rids[rid] = None
        for column, tree in self._column_indexes.items():
            col_no = self.definition.column_index(column)
            tree.insert(key_encode(self._storage_types[col_no], row[col_no]),
                        rid.to_bytes())
        return rid

    def fetch(self, rid: Rid) -> tuple:
        """Row stored at ``rid``."""
        return decode_row(self._storage_types, self.space.read(rid))

    def update(self, rid: Rid, row: tuple) -> Rid:
        """Replace the row at ``rid``; returns the (possibly moved) RID."""
        old_row = self.fetch(rid)
        new_rid = self.space.update(rid, encode_row(self._storage_types, row))
        if new_rid != rid:
            del self._rids[rid]
            self._rids[new_rid] = None
        for column, tree in self._column_indexes.items():
            col_no = self.definition.column_index(column)
            sql_type = self._storage_types[col_no]
            tree.delete(key_encode(sql_type, old_row[col_no]), rid.to_bytes())
            tree.insert(key_encode(sql_type, row[col_no]), new_rid.to_bytes())
        return new_rid

    def delete(self, rid: Rid) -> tuple:
        """Delete the row at ``rid``; returns the old row."""
        old_row = self.fetch(rid)
        self.space.delete(rid)
        self._rids.pop(rid, None)
        for column, tree in self._column_indexes.items():
            col_no = self.definition.column_index(column)
            tree.delete(key_encode(self._storage_types[col_no], old_row[col_no]),
                        rid.to_bytes())
        return old_row

    # -- queries --------------------------------------------------------------------

    def scan_rids(self) -> Iterator[tuple[Rid, tuple]]:
        """Full scan yielding ``(rid, row)``."""
        for rid, payload in self.space.scan():
            yield rid, decode_row(self._storage_types, payload)

    def scan(self, predicate: Callable[[tuple], bool] | None = None
             ) -> Iterator[tuple]:
        """Full scan of rows, optionally filtered."""
        for _, row in self.scan_rids():
            if predicate is None or predicate(row):
                yield row

    def lookup(self, column: str, value: object) -> Iterator[tuple[Rid, tuple]]:
        """Equality lookup via the column index (falls back to a scan)."""
        col_no = self.definition.column_index(column)
        sql_type = self._storage_types[col_no]
        tree = self._column_indexes.get(column)
        if tree is None:
            for rid, row in self.scan_rids():
                if row[col_no] == value:
                    yield rid, row
            return
        for rid_bytes in tree.search(key_encode(sql_type, value)):
            rid = Rid.from_bytes(rid_bytes)
            try:
                yield rid, self.fetch(rid)
            except RecordNotFoundError:  # pragma: no cover - index/table skew
                continue

    @property
    def row_count(self) -> int:
        return self.space.record_count
