"""Slotted pages: the record layout relational table spaces are built from.

Layout (all offsets little-endian u16)::

    0..2    slot_count
    2..4    free_end        start of the record data area (records grow down)
    4..     slot directory  one (offset, length) pair per slot
    ...     free space
    ...     record data     packed at the page tail

A slot with ``offset == 0`` is a tombstone and may be reused.  Records are
addressed as ``(page_id, slot_no)`` — the RID of the paper's Figure 3.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import PageFullError, RecordNotFoundError, StorageError

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
HEADER_SIZE = _HEADER.size
SLOT_SIZE = _SLOT.size


class SlottedPage:
    """Mutable view over one page's bytes with slot-directory bookkeeping."""

    def __init__(self, data: bytearray) -> None:
        if len(data) > 0xFFFF:
            raise StorageError("slotted pages support at most 65535 bytes")
        self.data = data
        self.page_size = len(data)

    @classmethod
    def format(cls, data: bytearray) -> "SlottedPage":
        """Initialise ``data`` as an empty slotted page (in place)."""
        page = cls(data)
        page._set_header(0, page.page_size)
        return page

    # -- header helpers ----------------------------------------------------

    def _header(self) -> tuple[int, int]:
        return _HEADER.unpack_from(self.data, 0)

    def _set_header(self, slot_count: int, free_end: int) -> None:
        _HEADER.pack_into(self.data, 0, slot_count, free_end)

    def _slot(self, slot_no: int) -> tuple[int, int]:
        return _SLOT.unpack_from(self.data, HEADER_SIZE + SLOT_SIZE * slot_no)

    def _set_slot(self, slot_no: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.data, HEADER_SIZE + SLOT_SIZE * slot_no, offset, length)

    # -- space accounting ---------------------------------------------------

    @property
    def slot_count(self) -> int:
        """Number of slots in the directory (live + tombstoned)."""
        return self._header()[0]

    def contiguous_free(self) -> int:
        """Bytes available between the slot directory and the data area."""
        slot_count, free_end = self._header()
        return free_end - (HEADER_SIZE + SLOT_SIZE * slot_count)

    def total_free(self) -> int:
        """Bytes that compaction could make available for one new record."""
        slot_count, _ = self._header()
        used = sum(length for offset, length in map(self._slot, range(slot_count)) if offset)
        live_dir = HEADER_SIZE + SLOT_SIZE * slot_count
        return self.page_size - live_dir - used

    def free_for_insert(self) -> int:
        """Upper bound on the largest record insertable (after compaction)."""
        free = self.total_free()
        if self._find_tombstone() is None:
            free -= SLOT_SIZE
        return max(free, 0)

    def live_bytes(self) -> int:
        """Total bytes of live record payloads on this page."""
        slot_count, _ = self._header()
        return sum(length for offset, length in map(self._slot, range(slot_count)) if offset)

    # -- record operations ----------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Insert ``record``, returning its slot number.

        Raises :class:`PageFullError` when the record cannot fit even after
        compaction.
        """
        if not record:
            raise StorageError("empty records are not supported")
        if len(record) > self.free_for_insert():
            raise PageFullError(
                f"record of {len(record)} bytes does not fit "
                f"({self.free_for_insert()} free)")
        tombstone = self._find_tombstone()
        needed = len(record) + (0 if tombstone is not None else SLOT_SIZE)
        if self.contiguous_free() < needed:
            self.compact()
        slot_count, free_end = self._header()
        offset = free_end - len(record)
        self.data[offset:free_end] = record
        if tombstone is not None:
            slot_no = tombstone
            self._set_header(slot_count, offset)
        else:
            slot_no = slot_count
            self._set_header(slot_count + 1, offset)
        self._set_slot(slot_no, offset, len(record))
        return slot_no

    def read(self, slot_no: int) -> memoryview:
        """Return the record payload in slot ``slot_no``."""
        offset, length = self._checked_slot(slot_no)
        return memoryview(self.data)[offset:offset + length]

    def delete(self, slot_no: int) -> None:
        """Tombstone slot ``slot_no``; its space is reclaimed by compaction."""
        self._checked_slot(slot_no)
        self._set_slot(slot_no, 0, 0)

    def update(self, slot_no: int, record: bytes) -> None:
        """Replace the record in ``slot_no``, keeping the same RID.

        Shrinking updates are done in place; growing updates relocate the
        payload within the page and raise :class:`PageFullError` if there is
        no room (the caller then moves the record to another page).
        """
        offset, length = self._checked_slot(slot_no)
        if len(record) <= length:
            self.data[offset:offset + len(record)] = record
            self._set_slot(slot_no, offset, len(record))
            return
        # Grow: tombstone first so compaction can reclaim the old image.
        self._set_slot(slot_no, 0, 0)
        if len(record) > self.total_free():
            self._set_slot(slot_no, offset, length)  # roll back
            raise PageFullError(
                f"updated record of {len(record)} bytes does not fit")
        if self.contiguous_free() < len(record):
            self.compact()
        slot_count, free_end = self._header()
        new_offset = free_end - len(record)
        self.data[new_offset:free_end] = record
        self._set_header(slot_count, new_offset)
        self._set_slot(slot_no, new_offset, len(record))

    def records(self) -> Iterator[tuple[int, memoryview]]:
        """Yield ``(slot_no, payload)`` for every live record, slot order."""
        slot_count, _ = self._header()
        view = memoryview(self.data)
        for slot_no in range(slot_count):
            offset, length = self._slot(slot_no)
            if offset:
                yield slot_no, view[offset:offset + length]

    def compact(self) -> None:
        """Slide live records to the page tail, squeezing out dead space."""
        slot_count, _ = self._header()
        live = [(slot_no,) + self._slot(slot_no) for slot_no in range(slot_count)]
        write_end = self.page_size
        # Copy into a scratch area first; records may overlap their target.
        images = {
            slot_no: bytes(self.data[offset:offset + length])
            for slot_no, offset, length in live
            if offset
        }
        for slot_no, image in images.items():
            write_end -= len(image)
            self.data[write_end:write_end + len(image)] = image
            self._set_slot(slot_no, write_end, len(image))
        self._set_header(slot_count, write_end)

    # -- integrity -----------------------------------------------------------

    def validate(self) -> None:
        """Structural integrity check of the header and slot directory.

        The disk layer's CRC catches corruption at rest; this catches a page
        whose bytes were damaged *after* checksum verification (or written
        through a fault hook) before the damage is dereferenced as offsets.
        Raises :class:`StorageError` on any violated invariant.
        """
        slot_count, free_end = self._header()
        directory_end = HEADER_SIZE + SLOT_SIZE * slot_count
        if free_end > self.page_size or free_end < directory_end:
            raise StorageError(
                f"corrupt page header: free_end={free_end} with "
                f"{slot_count} slots on a {self.page_size}-byte page")
        for slot_no in range(slot_count):
            offset, length = self._slot(slot_no)
            if offset == 0:
                continue  # tombstone
            if offset < free_end or offset + length > self.page_size:
                raise StorageError(
                    f"corrupt slot {slot_no}: [{offset}, {offset + length}) "
                    f"outside data area [{free_end}, {self.page_size})")
            if length == 0:
                raise StorageError(f"corrupt slot {slot_no}: zero length")

    # -- internals -----------------------------------------------------------

    def _find_tombstone(self) -> int | None:
        slot_count, _ = self._header()
        for slot_no in range(slot_count):
            if self._slot(slot_no)[0] == 0:
                return slot_no
        return None

    def _checked_slot(self, slot_no: int) -> tuple[int, int]:
        slot_count, _ = self._header()
        if not 0 <= slot_no < slot_count:
            raise RecordNotFoundError(f"slot {slot_no} does not exist")
        offset, length = self._slot(slot_no)
        if offset == 0:
            raise RecordNotFoundError(f"slot {slot_no} is deleted")
        return offset, length
