"""Low-level binary codec helpers shared by every on-"disk" format.

All engine formats (slotted pages, B+tree nodes, packed XML records, the
compiled schema format, log records) are built from the same three primitives:
unsigned LEB128 varints, length-prefixed byte strings, and length-prefixed
UTF-8 strings.  Keeping them in one module keeps the formats consistent and
trivially testable.
"""

from __future__ import annotations


def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` (non-negative) to ``out`` as a LEB128 varint."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(buf: bytes | memoryview, pos: int) -> tuple[int, int]:
    """Read a LEB128 varint from ``buf`` at ``pos``.

    Returns ``(value, next_pos)``.
    """
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def uvarint_size(value: int) -> int:
    """Number of bytes :func:`write_uvarint` needs for ``value``."""
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def write_svarint(out: bytearray, value: int) -> None:
    """Append a signed integer using zig-zag + LEB128."""
    write_uvarint(out, (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1)


def read_svarint(buf: bytes | memoryview, pos: int) -> tuple[int, int]:
    """Read a zig-zag varint written by :func:`write_svarint`."""
    raw, pos = read_uvarint(buf, pos)
    if raw & 1:
        return -((raw + 1) >> 1), pos
    return raw >> 1, pos


def write_bytes(out: bytearray, data: bytes) -> None:
    """Append ``data`` to ``out`` prefixed with its varint length."""
    write_uvarint(out, len(data))
    out.extend(data)


def read_bytes(buf: bytes | memoryview, pos: int) -> tuple[bytes, int]:
    """Read a varint-length-prefixed byte string; returns ``(data, next_pos)``."""
    length, pos = read_uvarint(buf, pos)
    end = pos + length
    return bytes(buf[pos:end]), end


def write_str(out: bytearray, text: str) -> None:
    """Append ``text`` as length-prefixed UTF-8."""
    write_bytes(out, text.encode("utf-8"))


def read_str(buf: bytes | memoryview, pos: int) -> tuple[str, int]:
    """Read a string written by :func:`write_str`."""
    data, pos = read_bytes(buf, pos)
    return data.decode("utf-8"), pos


def write_u32(out: bytearray, value: int) -> None:
    """Append a fixed 4-byte big-endian unsigned integer."""
    out.extend(value.to_bytes(4, "big"))


def read_u32(buf: bytes | memoryview, pos: int) -> tuple[int, int]:
    """Read a fixed 4-byte big-endian unsigned integer."""
    return int.from_bytes(buf[pos:pos + 4], "big"), pos + 4
