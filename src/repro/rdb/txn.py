"""Transactions: lock scope, logging scope, and logical undo.

A thin transaction layer over :mod:`repro.rdb.locks` and
:mod:`repro.rdb.wal`.  Updates register *undo actions* (closures that
logically reverse the change); abort runs them in reverse order, mirroring
the standard relational design the paper builds on.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.analyze import sanitize as _sanitize
from repro.core.stats import GLOBAL_STATS, StatsRegistry
from repro.errors import DeadlockError, LockTimeoutError, TransactionError
from repro.rdb.locks import LockManager, LockMode
from repro.rdb.wal import LogManager, LogOp


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class IsolationLevel(enum.Enum):
    """SQL isolation levels, "naturally extended to cover XML columns" (§5.1).

    READ_COMMITTED releases read locks eagerly; REPEATABLE_READ holds them to
    commit; UNCOMMITTED_READ takes no read locks at all (and is the case that
    *requires* DocID locking for direct index access, §5.1).
    """

    UNCOMMITTED_READ = "ur"
    READ_COMMITTED = "cs"
    REPEATABLE_READ = "rr"


class Transaction:
    """One unit of work; obtained from :class:`TransactionManager`."""

    def __init__(self, txn_id: int, manager: "TransactionManager",
                 isolation: IsolationLevel) -> None:
        self.txn_id = txn_id
        self.isolation = isolation
        self._manager = manager
        self.state = TxnState.ACTIVE
        self._undo: list[Callable[[], None]] = []

    # -- locking -------------------------------------------------------------

    def try_lock(self, resource: object, mode: LockMode) -> bool:
        """Attempt to lock ``resource``; False means the caller must wait."""
        self._check_active()
        return self._manager.locks.try_acquire(self.txn_id, resource, mode)

    def lock(self, resource: object, mode: LockMode) -> None:
        """Lock ``resource`` or raise (single-threaded convenience path).

        A blocked request retries under a bounded exponential backoff until
        the manager's wait budget (simulated steps) is exhausted.  Raises
        :class:`~repro.errors.DeadlockError` if this transaction sits on a
        waits-for cycle, :class:`~repro.errors.LockTimeoutError` once the
        budget runs out — so callers can tell a victim (retry after abort)
        from plain contention (wait longer or shed load).
        """
        if self.try_lock(resource, mode):
            return
        manager = self._manager
        budget = manager.lock_wait_budget
        backoff = max(1, manager.lock_backoff_initial)
        waited = 0
        while True:
            cycle = manager.locks.find_deadlock()
            if cycle and self.txn_id in cycle:
                manager.stats.add("txn.deadlocks")
                raise DeadlockError(
                    f"txn {self.txn_id} is a deadlock victim on "
                    f"{resource!r} (cycle {sorted(cycle)})")
            if waited >= budget:
                manager.locks.clear_waits(self.txn_id)
                manager.stats.add("txn.lock_timeouts")
                raise LockTimeoutError(
                    f"txn {self.txn_id} gave up on {resource!r} after "
                    f"{waited} simulated wait steps (budget {budget})")
            waited += backoff
            manager.stats.add("lock.wait_steps", backoff)
            backoff = min(backoff * 2, max(1, manager.lock_backoff_cap))
            if self.try_lock(resource, mode):
                return

    # -- logging and undo -----------------------------------------------------

    def log(self, op: LogOp, target: str = "", payload: bytes = b"",
            extra: bytes = b"") -> None:
        """Write a redo record under this transaction."""
        self._check_active()
        self._manager.log.append(self.txn_id, op, target, payload, extra)

    def on_abort(self, action: Callable[[], None]) -> None:
        """Register a logical undo action (run in reverse order on abort)."""
        self._check_active()
        self._undo.append(action)

    # -- completion -------------------------------------------------------------

    def commit(self) -> None:
        self._check_active()
        self._manager.log.append(self.txn_id, LogOp.COMMIT)
        self.state = TxnState.COMMITTED
        self._undo.clear()
        self._manager._finish(self)

    def abort(self) -> None:
        self._check_active()
        for action in reversed(self._undo):
            action()
        self._undo.clear()
        self._manager.log.append(self.txn_id, LogOp.ABORT)
        self.state = TxnState.ABORTED
        self._manager.stats.add("txn.aborts")
        self._manager._finish(self)

    def _check_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"txn {self.txn_id} is {self.state.value}, not active")

    def __repr__(self) -> str:
        return f"Transaction({self.txn_id}, {self.state.value})"


class TransactionManager:
    """Creates transactions and owns the shared lock and log managers.

    ``lock_wait_budget``/``lock_backoff_initial``/``lock_backoff_cap``
    govern the interactive :meth:`Transaction.lock` retry loop.  With
    ``checkpoint_every`` > 0 a WAL checkpoint is written automatically
    every that many commits; ``on_checkpoint`` (typically the buffer
    pool's ``flush_all``) runs first so the checkpoint describes state
    that actually reached the device.
    """

    def __init__(self, locks: LockManager | None = None,
                 log: LogManager | None = None,
                 stats: StatsRegistry | None = None,
                 lock_wait_budget: int = 64,
                 lock_backoff_initial: int = 1,
                 lock_backoff_cap: int = 16,
                 checkpoint_every: int = 0,
                 on_checkpoint: Callable[[], None] | None = None) -> None:
        self.stats = stats if stats is not None else GLOBAL_STATS
        self.locks = locks if locks is not None else LockManager(self.stats)
        self.log = log if log is not None else LogManager(self.stats)
        self.lock_wait_budget = lock_wait_budget
        self.lock_backoff_initial = lock_backoff_initial
        self.lock_backoff_cap = lock_backoff_cap
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint
        #: optional hook run after every commit/abort once locks are
        #: released — the engine wires the buffer-pool quiesce sanitizer
        #: here (see :mod:`repro.analyze.sanitize`).
        self.on_txn_end: Callable[[Transaction], None] | None = None
        self._commits_since_checkpoint = 0
        self._next_id = 1
        self.active: dict[int, Transaction] = {}

    def begin(self, isolation: IsolationLevel = IsolationLevel.READ_COMMITTED
              ) -> Transaction:
        txn = Transaction(self._next_id, self, isolation)
        self._next_id += 1
        self.active[txn.txn_id] = txn
        self.log.append(txn.txn_id, LogOp.BEGIN)
        self.stats.add("txn.begun")
        return txn

    def checkpoint(self) -> None:
        """Write a WAL checkpoint describing the in-flight transactions."""
        if self.on_checkpoint is not None:
            self.on_checkpoint()
        self.log.checkpoint(set(self.active))
        self._commits_since_checkpoint = 0

    def _finish(self, txn: Transaction) -> None:
        self.locks.release_all(txn.txn_id)
        self.active.pop(txn.txn_id, None)
        if _sanitize.enabled():
            _sanitize.check_txn_locks_released(self.locks, txn.txn_id,
                                               self.stats)
        if self.on_txn_end is not None:
            self.on_txn_end(txn)
        if txn.state is TxnState.COMMITTED and self.checkpoint_every > 0:
            self._commits_since_checkpoint += 1
            if self._commits_since_checkpoint >= self.checkpoint_every:
                self.checkpoint()
