"""Transactions: lock scope, logging scope, logical undo, and accounting.

A thin transaction layer over :mod:`repro.rdb.locks` and
:mod:`repro.rdb.wal`.  Updates register *undo actions* (closures that
logically reverse the change); abort runs them in reverse order, mirroring
the standard relational design the paper builds on.

The layer also hosts the engine's DB2-style *accounting trace*: every
transaction owns a private counter sink, work performed on its behalf is
charged there through :meth:`repro.core.stats.StatsRegistry.charge`, and
commit/abort emits one :class:`AccountingRecord` — txn id, isolation,
outcome, retries, pages read/written, lock waits, WAL bytes — into the
manager's bounded :class:`AccountingLog` ring buffer.
"""

from __future__ import annotations

import enum
import itertools
import threading
from collections import Counter, deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.analyze import sanitize as _sanitize
from repro.core.deadline import Deadline
from repro.core.stats import (WAITS, StatsRegistry, default_stats,
                              wait_counter)
from repro.errors import (DeadlineExceededError, DeadlockError,
                          LockTimeoutError, TransactionError)
from repro.rdb.locks import LockManager, LockMode
from repro.rdb.wal import LogManager, LogOp


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class IsolationLevel(enum.Enum):
    """SQL isolation levels, "naturally extended to cover XML columns" (§5.1).

    READ_COMMITTED releases read locks eagerly; REPEATABLE_READ holds them to
    commit; UNCOMMITTED_READ takes no read locks at all (and is the case that
    *requires* DocID locking for direct index access, §5.1).
    """

    UNCOMMITTED_READ = "ur"
    READ_COMMITTED = "cs"
    REPEATABLE_READ = "rr"


@dataclass(frozen=True)
class AccountingRecord:
    """One transaction's accounting-trace record (DB2 IFCID 3 analogue).

    ``counters`` holds the :class:`~repro.core.stats.StatsRegistry` deltas
    charged to the transaction — including work folded in from earlier
    victim attempts when ``run_in_txn`` (or the deterministic scheduler)
    retried it; those attempts' txn ids are listed in ``victim_attempts``
    and counted by ``retries``.
    """

    txn_id: int
    isolation: str
    outcome: str  # "committed" | "aborted"
    retries: int = 0
    victim_attempts: tuple[int, ...] = ()
    counters: dict[str, int] = field(default_factory=dict)

    # -- headline figures (the DB2 accounting-report columns) -------------

    @property
    def pages_read(self) -> int:
        return self.counters.get("disk.page_reads", 0)

    @property
    def pages_written(self) -> int:
        return self.counters.get("disk.page_writes", 0)

    @property
    def buffer_touches(self) -> int:
        return (self.counters.get("buffer.hits", 0)
                + self.counters.get("buffer.misses", 0))

    @property
    def lock_waits(self) -> int:
        return self.counters.get("lock.waits", 0)

    @property
    def lock_wait_steps(self) -> int:
        return self.counters.get("lock.wait_steps", 0)

    @property
    def wal_records(self) -> int:
        return self.counters.get("wal.records", 0)

    @property
    def wal_bytes(self) -> int:
        return self.counters.get("wal.bytes", 0)

    # -- class-3 suspension breakdown -------------------------------------

    @property
    def waits(self) -> dict[str, int]:
        """Per-wait-class microseconds suspended on this txn's behalf.

        Wait charges flow through the same accounting sink as every other
        counter, so the breakdown *folds across victim retries* exactly
        like the rest of the record (an aborted attempt's lock-wait time
        is carried into its successor) and sums against the global
        ``waits.*_us`` counters in the accounting-caps check.
        """
        out: dict[str, int] = {}
        for wait_class in sorted(WAITS):
            micros = self.counters.get(wait_counter(wait_class), 0)
            if micros:
                out[wait_class] = micros
        return out

    @property
    def wait_us(self) -> int:
        """Total microseconds suspended (all wait classes)."""
        return sum(self.waits.values())

    def to_dict(self) -> dict:
        """JSON-safe rendering (exporters and artifacts)."""
        return {
            "txn_id": self.txn_id,
            "isolation": self.isolation,
            "outcome": self.outcome,
            "retries": self.retries,
            "victim_attempts": list(self.victim_attempts),
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "lock_waits": self.lock_waits,
            "wal_bytes": self.wal_bytes,
            "wait_us": self.wait_us,
            "waits": self.waits,
            "counters": dict(sorted(self.counters.items())),
        }


class AccountingLog:
    """Bounded ring buffer of :class:`AccountingRecord`.

    Old records fall off the front once ``capacity`` is reached, like a
    wrapped trace dataset; ``emitted`` keeps the lifetime total so tooling
    can tell a quiet engine from a wrapped buffer.

    The ring is thread-safe: concurrent sessions finish transactions on
    different serving-layer workers, so emit/retract and the read side are
    guarded by a lock (``retract`` in particular is a check-then-pop that
    must be atomic against a racing ``emit``).
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._ring: deque[AccountingRecord] = deque(maxlen=max(1, capacity))
        self._lock = threading.Lock()
        self.emitted = 0

    def emit(self, record: AccountingRecord) -> None:
        """Append one record (dropping the oldest when full)."""
        with self._lock:
            self._ring.append(record)
            self.emitted += 1

    def retract(self, txn_id: int) -> AccountingRecord | None:
        """Remove and return the newest record if it belongs to ``txn_id``.

        The retry machinery uses this to *fold* a victim attempt's record
        into its successor instead of leaving one record per attempt.
        """
        with self._lock:
            if self._ring and self._ring[-1].txn_id == txn_id:
                self.emitted -= 1
                return self._ring.pop()
            return None

    def records(self) -> list[AccountingRecord]:
        """Buffered records, oldest first."""
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __iter__(self) -> Iterator[AccountingRecord]:
        return iter(self.records())


class Transaction:
    """One unit of work; obtained from :class:`TransactionManager`."""

    #: Declared resource captures (see SHARD003 in ``repro.analyze``): a
    #: txn handle works against its manager's lock/log/stats managers for
    #: its whole life, captured once here instead of reached through
    #: ``self._manager`` on every call — the txn is scoped to whatever
    #: shard its manager belongs to.
    _shard_scoped_ = ("_locks", "_log", "_stats")

    def __init__(self, txn_id: int, manager: "TransactionManager",
                 isolation: IsolationLevel) -> None:
        self.txn_id = txn_id
        self.isolation = isolation
        self._manager = manager
        self._locks = manager.locks
        self._log = manager.log
        self._stats = manager.stats
        self.state = TxnState.ACTIVE
        self._undo: list[Callable[[], None]] = []
        #: Accounting sink: counter deltas charged to this transaction.
        self.acct: Counter[str] = Counter()
        #: Victim attempts folded into this transaction by the retry
        #: machinery (``Database.run_in_txn``).
        self.retries = 0
        self.victim_attempts: tuple[int, ...] = ()
        #: Request deadline (serving layer): checked between lock-wait
        #: backoff steps; ``None`` means unbounded.
        self.deadline: Deadline | None = None

    def charging(self):
        """Context manager attributing counter increments to this txn."""
        return self._stats.charge(self.acct)

    # -- locking -------------------------------------------------------------

    def try_lock(self, resource: object, mode: LockMode) -> bool:
        """Attempt to lock ``resource``; False means the caller must wait."""
        self._check_active()
        return self._locks.try_acquire(self.txn_id, resource, mode)

    def lock(self, resource: object, mode: LockMode) -> None:
        """Lock ``resource`` or raise (single-threaded convenience path).

        A blocked request retries under a bounded exponential backoff until
        the manager's wait budget (simulated steps) is exhausted.  Raises
        :class:`~repro.errors.DeadlockError` if this transaction sits on a
        waits-for cycle, :class:`~repro.errors.LockTimeoutError` once the
        budget runs out — so callers can tell a victim (retry after abort)
        from plain contention (wait longer or shed load).

        With a request :class:`~repro.core.deadline.Deadline` attached to
        the transaction (serving layer), the deadline caps the remaining
        wait: an expired deadline aborts the wait immediately with
        :class:`~repro.errors.DeadlineExceededError` (non-retryable, the
        client ran out of time) instead of burning the rest of the budget.

        Under a serving layer the manager's ``lock_wait_yield`` hook runs
        between backoff steps with real-thread semantics: it releases the
        engine latch and sleeps briefly so the lock *holder*'s session can
        run on another worker and release the lock.  Without a server the
        hook is ``None`` and the loop is the original single-threaded
        simulated wait.
        """
        if self.try_lock(resource, mode):
            self._stats.observe("lock.acquire_wait_steps", 0)
            return
        manager = self._manager
        budget = manager.lock_wait_budget
        backoff = max(1, manager.lock_backoff_initial)
        waited = 0
        while True:
            cycle = self._locks.find_deadlock()
            if cycle and self.txn_id in cycle:
                self._stats.add("txn.deadlocks")
                raise DeadlockError(
                    f"txn {self.txn_id} is a deadlock victim on "
                    f"{resource!r} (cycle {sorted(cycle)})")
            if self.deadline is not None and self.deadline.expired():
                self._locks.clear_waits(self.txn_id)
                self._stats.add("txn.deadline_exceeded")
                raise DeadlineExceededError(
                    f"txn {self.txn_id} ran out of deadline waiting for "
                    f"{resource!r} after {waited} simulated wait steps")
            if waited >= budget:
                self._locks.clear_waits(self.txn_id)
                self._stats.add("txn.lock_timeouts")
                raise LockTimeoutError(
                    f"txn {self.txn_id} gave up on {resource!r} after "
                    f"{waited} simulated wait steps (budget {budget})")
            waited += backoff
            self._stats.add("lock.wait_steps", backoff)
            backoff = min(backoff * 2, max(1, manager.lock_backoff_cap))
            yield_hook = manager.lock_wait_yield
            if yield_hook is not None:
                # The latch-yielding sleep is the real suspension of the
                # interactive lock wait (DB2's IRLM lock suspension);
                # charged here — not inside the hook — so the latch
                # re-acquire after the sleep is part of the lock wait.
                with self._stats.wait_timer("lock.wait"):
                    yield_hook()
            if self.try_lock(resource, mode):
                self._stats.observe("lock.acquire_wait_steps", waited)
                return

    # -- logging and undo -----------------------------------------------------

    def log(self, op: LogOp, target: str = "", payload: bytes = b"",
            extra: bytes = b"") -> None:
        """Write a redo record under this transaction."""
        self._check_active()
        self._log.append(self.txn_id, op, target, payload, extra)

    def on_abort(self, action: Callable[[], None]) -> None:
        """Register a logical undo action (run in reverse order on abort)."""
        self._check_active()
        self._undo.append(action)

    # -- completion -------------------------------------------------------------

    def commit(self) -> None:
        self._check_active()
        with self.charging():
            # Routed through the manager: with a GroupCommitter attached
            # the COMMIT record is hardened by a shared group force (and
            # this call returns only once it is durable); without one it
            # is a plain auto-flushed append.  If the force raises (a
            # simulated crash mid-group) the transaction stays ACTIVE —
            # its commit was never acknowledged.
            self._manager.commit_record(self.txn_id)
        self.state = TxnState.COMMITTED
        self._undo.clear()
        self._manager._finish(self)

    def abort(self) -> None:
        self._check_active()
        with self.charging():
            for action in reversed(self._undo):
                action()
            self._undo.clear()
            self._log.append(self.txn_id, LogOp.ABORT)
            self._stats.add("txn.aborts")
        self.state = TxnState.ABORTED
        self._manager._finish(self)

    def _check_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"txn {self.txn_id} is {self.state.value}, not active")

    def __repr__(self) -> str:
        return f"Transaction({self.txn_id}, {self.state.value})"


class TransactionManager:
    """Creates transactions and owns the shared lock and log managers.

    ``lock_wait_budget``/``lock_backoff_initial``/``lock_backoff_cap``
    govern the interactive :meth:`Transaction.lock` retry loop.  With
    ``checkpoint_every`` > 0 a WAL checkpoint is written automatically
    every that many commits; ``on_checkpoint`` (typically the buffer
    pool's ``flush_all``) runs first so the checkpoint describes state
    that actually reached the device.
    """

    #: Declared resource captures (SHARD003): the manager *owns* the
    #: shard's lock and log managers and its stats sink — they may be
    #: supplied by the engine or self-constructed.
    _shard_scoped_ = ("locks", "log", "stats")

    def __init__(self, locks: LockManager | None = None,
                 log: LogManager | None = None,
                 stats: StatsRegistry | None = None,
                 lock_wait_budget: int = 64,
                 lock_backoff_initial: int = 1,
                 lock_backoff_cap: int = 16,
                 checkpoint_every: int = 0,
                 on_checkpoint: Callable[[], None] | None = None,
                 accounting_size: int = 256) -> None:
        self.stats = default_stats(stats)
        self.locks = locks if locks is not None else LockManager(self.stats)
        self.log = log if log is not None else LogManager(self.stats)
        self.lock_wait_budget = lock_wait_budget
        self.lock_backoff_initial = lock_backoff_initial
        self.lock_backoff_cap = lock_backoff_cap
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint
        #: Accounting-trace ring buffer (one record per finished txn).
        self.accounting = AccountingLog(accounting_size)
        #: optional hook run after every commit/abort once locks are
        #: released — the engine wires the buffer-pool quiesce sanitizer
        #: here (see :mod:`repro.analyze.sanitize`).
        self.on_txn_end: Callable[[Transaction], None] | None = None
        #: optional hook run between lock-wait backoff steps — the serving
        #: layer installs a latch-release-and-sleep here so that while one
        #: session waits for a lock, the holder's session can run on
        #: another worker thread and release it.  ``None`` (the default)
        #: keeps the single-threaded simulated wait loop unchanged.
        self.lock_wait_yield: Callable[[], None] | None = None
        #: optional :class:`~repro.rdb.wal.GroupCommitter`: when attached,
        #: :meth:`commit_record` batches COMMIT hardening through it.
        self.group_commit: "object | None" = None
        #: optional hook that *requests* a checkpoint from a background
        #: checkpointer instead of running one synchronously on the
        #: committing thread; installed by the serving layer alongside
        #: :class:`~repro.core.checkpointer.Checkpointer`.
        self.checkpoint_async: Callable[[], None] | None = None
        self._commits_since_checkpoint = 0
        self._ids = itertools.count(1)
        self.active: dict[int, Transaction] = {}

    def begin(self, isolation: IsolationLevel = IsolationLevel.READ_COMMITTED
              ) -> Transaction:
        txn = Transaction(next(self._ids), self, isolation)
        self.active[txn.txn_id] = txn
        with txn.charging():
            self.log.append(txn.txn_id, LogOp.BEGIN)
            self.stats.add("txn.begun")
        return txn

    def charging(self, txn_id: int):
        """Charge context for ``txn_id`` if it is active, else a no-op.

        Engine entry points that carry an explicit txn id (DML, the XML
        updater) route their work through this so per-transaction
        accounting needs no cooperation from callers.
        """
        txn = self.active.get(txn_id)
        if txn is None:
            return nullcontext()
        return txn.charging()

    def commit_record(self, txn_id: int) -> None:
        """Harden ``txn_id``'s COMMIT record (group force or plain append)."""
        if self.group_commit is not None:
            self.group_commit.commit(txn_id)
        else:
            self.log.append(txn_id, LogOp.COMMIT)

    def checkpoint(self) -> None:
        """Write a WAL checkpoint describing the in-flight transactions."""
        if self.on_checkpoint is not None:
            self.on_checkpoint()
        self.log.checkpoint(set(self.active))
        self._commits_since_checkpoint = 0

    def _finish(self, txn: Transaction) -> None:
        with txn.charging():
            self.locks.release_all(txn.txn_id)
        self.active.pop(txn.txn_id, None)
        record = AccountingRecord(
            txn_id=txn.txn_id,
            isolation=txn.isolation.value,
            outcome=("committed" if txn.state is TxnState.COMMITTED
                     else "aborted"),
            retries=txn.retries,
            victim_attempts=txn.victim_attempts,
            counters=dict(txn.acct))
        self.accounting.emit(record)
        self.stats.add("obs.accounting_records")
        events = self.stats.events
        if events is not None:
            # The IFCID 3 analogue: one ACCOUNTING trace record per
            # finished unit of work, wait breakdown included.
            events.accounting(
                "txn.accounting", txn_id=txn.txn_id,
                outcome=record.outcome, retries=record.retries,
                wait_us=record.wait_us, waits=record.waits)
        if _sanitize.enabled():
            _sanitize.check_txn_locks_released(self.locks, txn.txn_id,
                                               self.stats)
        if self.on_txn_end is not None:
            self.on_txn_end(txn)
        if txn.state is TxnState.COMMITTED and self.checkpoint_every > 0:
            self._commits_since_checkpoint += 1
            if self._commits_since_checkpoint >= self.checkpoint_every:
                if self.checkpoint_async is not None:
                    # Background checkpointer attached: signal it instead
                    # of stalling this (request) thread on a synchronous
                    # flush-everything checkpoint.
                    self._commits_since_checkpoint = 0
                    self.checkpoint_async()
                else:
                    self.checkpoint()
