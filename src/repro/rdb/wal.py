"""Write-ahead logging and archive-style recovery.

The paper reuses the relational logging/backup/recovery machinery unchanged
(§2): packed XML records are logged exactly like rows.  This module provides
a logical write-ahead log — each record names a table-space-level operation
with its full payload — plus archive recovery: replaying the log against a
fresh database deterministically reproduces record placement (the engine's
insert path is deterministic), which is how the recovery tests restore XML
columns and rebuild their indexes.

Persistence uses per-record ``length || crc32 || body`` framing.  A torn
*tail* (a record cut short by a crash mid-hardening) is dropped silently on
:meth:`LogManager.load` — exactly the committed-prefix semantics a real log
gives — while corruption in the *middle* of the log raises
:class:`~repro.errors.RecoveryError`, because records after the damage can
no longer be trusted.

The log distinguishes the *appended* tail from the *durable* prefix.  With
``auto_flush`` (the default) every append hardens immediately — the
single-threaded behaviour every pre-group-commit test relies on.  With
``auto_flush`` off, appends land in the volatile tail and only
:meth:`LogManager.flush` advances the durable boundary; :meth:`save`
persists the durable prefix only, exactly what stable storage would hold
after a crash.  :class:`GroupCommitter` builds the DB2-style group commit
(one log force shared by every committer in a window — the "log latch"
batching of DB2 for z/OS) on top of that boundary.

``CHECKPOINT`` records carry the set of loser transactions (in-flight or
aborted) at checkpoint time, so :func:`replay`'s analysis pass can start at
the last checkpoint instead of scanning the whole log for COMMITs.

The log doubles as the experiments' measure of *log volume* (E3): counters
``wal.records`` and ``wal.bytes`` report exactly what a real engine would
have to harden.
"""

from __future__ import annotations

import enum
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.analyze import sanitize as _sanitize
from repro.core.stats import StatsRegistry, default_stats
from repro.errors import LogError, RecoveryError
from repro.rdb import codec

#: bytes of ``length || crc32`` framing preceding each persisted record.
_FRAME_HEADER = 8


class LogOp(enum.IntEnum):
    """Logical log record kinds."""

    BEGIN = 0
    COMMIT = 1
    ABORT = 2
    INSERT = 3
    UPDATE = 4
    DELETE = 5
    DDL = 6
    CHECKPOINT = 7


@dataclass(frozen=True)
class LogRecord:
    """One log entry.

    ``target`` names the object operated on (a table or table space);
    ``payload`` carries the operation argument (record image, DDL statement,
    serialized row) and ``extra`` an optional secondary image (e.g. the key
    identifying the record for UPDATE/DELETE).
    """

    lsn: int
    txn_id: int
    op: LogOp
    target: str = ""
    payload: bytes = b""
    extra: bytes = b""

    def encode(self) -> bytes:
        out = bytearray()
        codec.write_uvarint(out, self.lsn)
        codec.write_svarint(out, self.txn_id)
        out.append(int(self.op))
        codec.write_str(out, self.target)
        codec.write_bytes(out, self.payload)
        codec.write_bytes(out, self.extra)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes | memoryview, pos: int = 0) -> tuple["LogRecord", int]:
        lsn, pos = codec.read_uvarint(data, pos)
        txn_id, pos = codec.read_svarint(data, pos)
        op = LogOp(data[pos])
        pos += 1
        target, pos = codec.read_str(data, pos)
        payload, pos = codec.read_bytes(data, pos)
        extra, pos = codec.read_bytes(data, pos)
        return cls(lsn, txn_id, op, target, payload, extra), pos


def encode_checkpoint(losers: set[int] | list[int]) -> bytes:
    """Payload of a CHECKPOINT record: the sorted loser-transaction set."""
    out = bytearray()
    ids = sorted(losers)
    codec.write_uvarint(out, len(ids))
    for txn_id in ids:
        codec.write_svarint(out, txn_id)
    return bytes(out)


def decode_checkpoint(payload: bytes) -> set[int]:
    """Loser-transaction set carried by a CHECKPOINT payload."""
    count, pos = codec.read_uvarint(payload, 0)
    losers: set[int] = set()
    for _ in range(count):
        txn_id, pos = codec.read_svarint(payload, pos)
        losers.add(txn_id)
    return losers


class LogManager:
    """Append-only log with LSNs, iteration and byte accounting.

    When a :class:`~repro.fault.injector.FaultInjector` is attached, append
    fires the crash points ``wal.append.pre`` / ``wal.append.post`` (and
    op-specific ``wal.commit.pre`` / ``wal.commit.post`` /
    ``wal.checkpoint.post``) so crash tests can cut the log at precisely
    defined instants.
    """

    #: Declared resource capture (SHARD003): the log manager's stats
    #: sink may be supplied by its owner.
    _shard_scoped_ = ("stats",)

    def __init__(self, stats: StatsRegistry | None = None,
                 injector: "object | None" = None,
                 auto_flush: bool = True) -> None:
        self.stats = default_stats(stats)
        self.injector = injector
        #: With ``auto_flush`` every append is immediately durable (the
        #: classic one-force-per-record discipline).  Group commit turns it
        #: off so :meth:`flush` can harden a whole window in one force.
        self.auto_flush = auto_flush
        self._records: list[LogRecord] = []
        self._bytes = 0
        self._bytes_at_checkpoint = 0
        self._aborted: set[int] = set()
        self._last_lsn = -1  # sanitizer: newest hardened LSN
        self._durable_count = 0  # records at or below the flush boundary
        #: Set when a simulated crash killed the logging path: the process
        #: is dead, so every later append/flush re-raises instead of
        #: hardening state a real crash would have lost.
        self._halted: BaseException | None = None

    @property
    def next_lsn(self) -> int:
        return len(self._records)

    @property
    def bytes_written(self) -> int:
        """Total encoded log volume."""
        return self._bytes

    @property
    def bytes_since_checkpoint(self) -> int:
        """Log volume hardened since the newest CHECKPOINT record."""
        return self._bytes - self._bytes_at_checkpoint

    @property
    def aborted_txns(self) -> frozenset[int]:
        """Transactions whose ABORT records this log has seen."""
        return frozenset(self._aborted)

    @property
    def durable_count(self) -> int:
        """Records at or below the flush boundary (what :meth:`save` keeps)."""
        return self._durable_count

    @property
    def durable_lsn(self) -> int:
        """LSN of the newest durable record (-1 while nothing is durable)."""
        return self._durable_count - 1

    @property
    def unflushed_count(self) -> int:
        """Appended records still in the volatile tail."""
        return len(self._records) - self._durable_count

    def _hit(self, point: str) -> None:
        if self.injector is not None:
            self.injector.hit(point)

    def _check_halted(self) -> None:
        if self._halted is not None:
            raise self._halted

    def halt(self, error: BaseException) -> None:
        """Mark the logging path dead (simulated crash mid-group-commit).

        Surviving worker threads that try to append or flush afterwards
        re-raise ``error`` — a crashed process cannot keep hardening log
        records, and letting it would corrupt the crash matrix's notion of
        what stable storage held at the instant of death.
        """
        self._halted = error

    def append(self, txn_id: int, op: LogOp, target: str = "",
               payload: bytes = b"", extra: bytes = b"") -> LogRecord:
        """Append one log record; returns it with its LSN assigned.

        Under ``auto_flush`` the record is durable on return; otherwise it
        sits in the volatile tail until :meth:`flush`.
        """
        self._check_halted()
        if op is LogOp.COMMIT:
            self._hit("wal.commit.pre")
        self._hit("wal.append.pre")
        record = LogRecord(self.next_lsn, txn_id, op, target, payload, extra)
        if _sanitize.enabled():
            _sanitize.check_lsn_monotonic(self.stats, self._last_lsn,
                                          record.lsn)
        self._last_lsn = record.lsn
        encoded_len = len(record.encode())
        self._records.append(record)
        self._bytes += encoded_len
        if op is LogOp.ABORT:
            self._aborted.add(txn_id)
        self.stats.add("wal.records")
        self.stats.add("wal.bytes", encoded_len)
        self.stats.observe("wal.record_bytes", encoded_len)
        self.stats.trace_event("wal.append", op=op.name, lsn=record.lsn,
                               bytes=encoded_len)
        if self.auto_flush:
            self._durable_count = len(self._records)
        self._hit("wal.append.post")
        if op is LogOp.COMMIT:
            self._hit("wal.commit.post")
        elif op is LogOp.CHECKPOINT:
            self._hit("wal.checkpoint.post")
        return record

    def flush(self) -> int:
        """Advance the durable boundary over the volatile tail (log force).

        Returns the number of records hardened.  A no-op (and no counter
        traffic) when nothing is outstanding — under ``auto_flush`` every
        append already forced itself.
        """
        self._check_halted()
        hardened = len(self._records) - self._durable_count
        if hardened <= 0:
            return 0
        # The force is the commit path's log-write suspension (DB2's "log
        # write I/O" class-3 bucket).  On the simulated device it is near
        # instant, so the charge usually rounds to zero — the class exists
        # so the profile stays honest if the device ever gets real latency.
        with self.stats.wait_timer("wal.force"):
            self._durable_count = len(self._records)
        self.stats.add("wal.flushes")
        self.stats.trace_event("wal.flush", records=hardened)
        return hardened

    def checkpoint(self, active_txns: set[int] | list[int] = ()) -> LogRecord:
        """Write a CHECKPOINT record.

        ``active_txns`` are the transactions in flight at checkpoint time;
        together with the aborted set they form the *losers* — transactions
        whose pre-checkpoint records must not replay unless a later COMMIT
        proves otherwise.  Recovery's analysis pass starts at the newest
        checkpoint (see :func:`replay`).
        """
        with self.stats.trace("wal.checkpoint") as span:
            losers = set(active_txns) | self._aborted
            record = self.append(-1, LogOp.CHECKPOINT, "checkpoint",
                                 encode_checkpoint(losers))
            # A checkpoint must reach stable storage: recovery's analysis
            # pass starts here, so the record (and everything before it)
            # is forced even when group commit has auto_flush off.
            self.flush()
            self._bytes_at_checkpoint = self._bytes
            self.stats.add("wal.checkpoints")
            if span is not None:
                span.set("losers", len(losers))
                span.set("lsn", record.lsn)
            return record

    def last_checkpoint_lsn(self) -> int | None:
        """LSN of the newest CHECKPOINT record, if any."""
        for record in reversed(self._records):
            if record.op is LogOp.CHECKPOINT:
                return record.lsn
        return None

    def records(self) -> Iterator[LogRecord]:
        """All records in LSN order."""
        return iter(list(self._records))

    def truncate(self) -> None:
        """Discard the log (after a checkpoint/backup)."""
        self._records.clear()
        self._aborted.clear()
        # bytes_written stays cumulative, but nothing is outstanding after
        # the checkpoint/backup that justified the truncation.
        self._bytes_at_checkpoint = self._bytes
        self._last_lsn = -1  # LSNs legitimately restart after truncation
        self._durable_count = 0

    def save(self, path: str) -> None:
        """Persist the durable prefix for crash/restart tests.

        Each record is framed as ``length(4) || crc32(4) || body`` so that
        :meth:`load` can tell a torn tail from mid-log corruption.  Only
        records at or below the flush boundary are written: a volatile tail
        (appends never forced by group commit before the crash) is exactly
        what a real crash loses.  Under ``auto_flush`` the boundary tracks
        every append, so the whole log persists as before.
        """
        with open(path, "wb") as fh:
            for record in self._records[:self._durable_count]:
                encoded = record.encode()
                fh.write(len(encoded).to_bytes(4, "big"))
                fh.write(zlib.crc32(encoded).to_bytes(4, "big"))
                fh.write(encoded)

    @classmethod
    def load(cls, path: str, stats: StatsRegistry | None = None) -> "LogManager":
        """Reload a persisted log, tolerating a torn tail.

        A final record cut short by a crash (incomplete frame, short body,
        or checksum mismatch at end-of-file) is dropped — it was never fully
        hardened, so the transaction it belonged to simply loses its tail.
        Damage anywhere *before* the end of the log raises
        :class:`~repro.errors.RecoveryError`.
        """
        log = cls(stats=stats)
        with open(path, "rb") as fh:
            data = fh.read()
        pos = 0
        while pos < len(data):
            if pos + _FRAME_HEADER > len(data):
                log.stats.add("recovery.torn_tail_dropped")
                break
            length = int.from_bytes(data[pos:pos + 4], "big")
            checksum = int.from_bytes(data[pos + 4:pos + 8], "big")
            body = data[pos + _FRAME_HEADER:pos + _FRAME_HEADER + length]
            end = pos + _FRAME_HEADER + length
            if len(body) < length:
                log.stats.add("recovery.torn_tail_dropped")
                break
            if zlib.crc32(body) != checksum:
                if end >= len(data):
                    log.stats.add("recovery.torn_tail_dropped")
                    break
                raise RecoveryError(
                    f"corrupt log record at byte {pos} of {path!r} "
                    f"(mid-log checksum mismatch)")
            try:
                record, _ = LogRecord.decode(body)
            except (LogError, ValueError, IndexError) as exc:
                raise RecoveryError(
                    f"undecodable log record at byte {pos} of {path!r}: "
                    f"{exc}") from exc
            log._records.append(record)
            log._bytes += length
            # Restart state: the newest hardened LSN feeds the monotonicity
            # sanitizer, and the checkpoint byte mark keeps
            # ``bytes_since_checkpoint`` (the monitor's checkpoint-lag
            # panel) correct across a restart instead of counting the whole
            # pre-checkpoint volume as outstanding.
            log._last_lsn = record.lsn
            if record.op is LogOp.ABORT:
                log._aborted.add(record.txn_id)
            elif record.op is LogOp.CHECKPOINT:
                log._bytes_at_checkpoint = log._bytes
            log.stats.add("wal.records")
            log.stats.add("wal.bytes", length)
            pos = end
        # Everything that survived on stable storage is, by definition,
        # durable.
        log._durable_count = len(log._records)
        return log


class GroupCommitter:
    """Batch COMMIT-record hardening from concurrent transactions.

    The leader/follower protocol of DB2's log latch: the first committer
    in a window becomes the *leader*, waits briefly for companions (with
    the engine latch yielded, so they can actually append), then forces
    the whole volatile tail in one :meth:`LogManager.flush`.  *Followers*
    — committers arriving while a leader is collecting — append their
    COMMIT record and block on their ticket (their LSN crossing the
    durable boundary) instead of forcing their own flush.

    All state is mutated only under the engine latch (every caller is an
    engine entry), so the class needs no lock of its own; the only blocking
    primitive is ``yield_wait``, the latch-release-and-sleep hook the
    serving layer installs.  Without a server (``yield_wait`` is ``None``)
    a commit leads immediately and flushes a group of one — the
    single-threaded behaviour, just routed through the same window.

    Crash points ``wal.group.pre_flush`` / ``wal.group.post_flush`` fire
    around the group force so the crash harness can kill the process with
    a window's commits appended-but-volatile (all of them must vanish on
    restart: none was acknowledged) or flushed-but-unacknowledged (all of
    them must survive: they were durable, only the acks were lost).  A
    crash inside the window halts the log: surviving workers' commits
    re-raise instead of hardening post-mortem state.
    """

    #: Declared resource captures (SHARD003): the committer hardens one
    #: log and reports to that log's (or a supplied) stats sink.
    _shard_scoped_ = ("log", "stats")

    def __init__(self, log: LogManager, stats: StatsRegistry | None = None,
                 window: float = 0.002, max_group: int = 64) -> None:
        self.log = log
        self.stats = stats if stats is not None else log.stats
        #: Seconds the leader waits for companions before forcing.
        self.window = window
        #: Force early once this many commits are waiting on the window.
        self.max_group = max(1, max_group)
        #: Latch-release-and-sleep hook (installed by the serving layer).
        #: ``None`` means single-threaded: lead and force immediately.
        self.yield_wait: Callable[[float], None] | None = None
        #: Sleep per collection step — fine enough that followers notice
        #: the flush promptly, long enough to actually yield the latch.
        self.step = 0.0002
        self._leader_active = False
        self._pending = 0  # COMMIT records appended but not yet forced

    @property
    def pending(self) -> int:
        """COMMIT records waiting on the next group force."""
        return self._pending

    def commit(self, txn_id: int) -> LogRecord:
        """Append ``txn_id``'s COMMIT record and return once it is durable.

        Raises whatever killed the group (a simulated crash) if the log
        has been halted — an unacknowledged commit, by construction.
        """
        # Baselined RACE001s (ambient engine latch): every caller reaches
        # here with db.latch held, which the static call graph cannot
        # prove.  The lockset witnesses below keep the claim honest — if a
        # latchless caller ever commits, sanitize.race.lockset trips.
        if _sanitize.enabled():
            _sanitize.shared_access(self.stats, "GroupCommitter", "log",
                                    write=True)
            _sanitize.shared_access(self.stats, "GroupCommitter",
                                    "_pending", write=True)
        record = self.log.append(txn_id, LogOp.COMMIT)
        self._pending += 1
        if self._leader_active:
            self.stats.add("wal.group_follows")
            self._follow(record.lsn)
        else:
            self.stats.add("wal.group_leads")
            self._lead()
        return record

    def _lead(self) -> None:
        """Collect companions for a window, then force the group."""
        if _sanitize.enabled():
            _sanitize.shared_access(self.stats, "GroupCommitter",
                                    "_leader_active", write=True)
        self._leader_active = True
        try:
            waiter = self.yield_wait
            if waiter is not None and self.window > 0:
                deadline = time.monotonic() + self.window
                with self.stats.wait_timer("wal.group_commit"):
                    while (self._pending < self.max_group
                           and time.monotonic() < deadline):
                        waiter(self.step)  # latch released: followers append
            self._force_group()
        finally:
            self._leader_active = False

    def _follow(self, lsn: int) -> None:
        """Wait on the ticket: our LSN crossing the durable boundary."""
        waiter = self.yield_wait
        while self.log.durable_lsn < lsn:
            if waiter is None or not self._leader_active:
                # The leader is gone (or there is no way to wait): force
                # the remainder ourselves rather than spin.  Charged per
                # step (not around the loop): _force_group's flush has its
                # own wal.force timer, and wait regions must not nest.
                self._force_group()
                return
            with self.stats.wait_timer("wal.group_commit"):
                waiter(self.step)

    def _force_group(self) -> None:
        """One log force covering every pending commit in the window."""
        if _sanitize.enabled():
            _sanitize.shared_access(self.stats, "GroupCommitter",
                                    "_pending", write=True)
        batch = self._pending
        try:
            self.log._hit("wal.group.pre_flush")
            self.log.flush()
            self.log._hit("wal.group.post_flush")
        except BaseException as error:
            # The simulated process died mid-force.  Nothing else may
            # harden log state after this instant.
            self.log.halt(error)
            raise
        self._pending = 0
        if batch > 0:
            self.stats.add("wal.group_commits")
            self.stats.observe("wal.group_size", batch)


def replay(log: LogManager,
           apply: Callable[[LogRecord], None],
           committed_only: bool = True,
           from_checkpoint: bool = True) -> int:
    """Redo pass: feed records of committed transactions to ``apply``.

    With ``committed_only`` (the default), records of transactions that never
    logged ``COMMIT`` are suppressed — the archive-recovery equivalent of
    undoing losers.  With ``from_checkpoint`` the analysis pass scans for
    COMMIT records only from the newest CHECKPOINT onward: a pre-checkpoint
    record replays unless its transaction is in the checkpoint's loser set
    (in flight or aborted at checkpoint time) and never commits afterwards.
    Returns the number of records applied.
    """
    records = list(log.records())
    start = 0
    losers: set[int] = set()
    if committed_only and from_checkpoint:
        for index in range(len(records) - 1, -1, -1):
            if records[index].op is LogOp.CHECKPOINT:
                losers = decode_checkpoint(records[index].payload)
                start = index
                log.stats.add("recovery.from_checkpoint")
                break
    committed: set[int] = set()
    if committed_only:
        for record in records[start:]:
            if record.op is LogOp.COMMIT:
                committed.add(record.txn_id)
    applied = 0
    for index, record in enumerate(records):
        if record.op in (LogOp.BEGIN, LogOp.COMMIT, LogOp.ABORT,
                         LogOp.CHECKPOINT):
            continue
        if committed_only and record.txn_id >= 0:
            if record.txn_id not in committed and \
                    (index >= start or record.txn_id in losers):
                continue
        apply(record)
        applied += 1
    log.stats.add("recovery.replayed", applied)
    return applied
