"""Write-ahead logging and archive-style recovery.

The paper reuses the relational logging/backup/recovery machinery unchanged
(§2): packed XML records are logged exactly like rows.  This module provides
a logical write-ahead log — each record names a table-space-level operation
with its full payload — plus archive recovery: replaying the log against a
fresh database deterministically reproduces record placement (the engine's
insert path is deterministic), which is how the recovery tests restore XML
columns and rebuild their indexes.

The log doubles as the experiments' measure of *log volume* (E3): counters
``wal.records`` and ``wal.bytes`` report exactly what a real engine would
have to harden.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.stats import GLOBAL_STATS, StatsRegistry
from repro.errors import LogError
from repro.rdb import codec


class LogOp(enum.IntEnum):
    """Logical log record kinds."""

    BEGIN = 0
    COMMIT = 1
    ABORT = 2
    INSERT = 3
    UPDATE = 4
    DELETE = 5
    DDL = 6
    CHECKPOINT = 7


@dataclass(frozen=True)
class LogRecord:
    """One log entry.

    ``target`` names the object operated on (a table or table space);
    ``payload`` carries the operation argument (record image, DDL statement,
    serialized row) and ``extra`` an optional secondary image (e.g. the key
    identifying the record for UPDATE/DELETE).
    """

    lsn: int
    txn_id: int
    op: LogOp
    target: str = ""
    payload: bytes = b""
    extra: bytes = b""

    def encode(self) -> bytes:
        out = bytearray()
        codec.write_uvarint(out, self.lsn)
        codec.write_svarint(out, self.txn_id)
        out.append(int(self.op))
        codec.write_str(out, self.target)
        codec.write_bytes(out, self.payload)
        codec.write_bytes(out, self.extra)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes | memoryview, pos: int = 0) -> tuple["LogRecord", int]:
        lsn, pos = codec.read_uvarint(data, pos)
        txn_id, pos = codec.read_svarint(data, pos)
        op = LogOp(data[pos])
        pos += 1
        target, pos = codec.read_str(data, pos)
        payload, pos = codec.read_bytes(data, pos)
        extra, pos = codec.read_bytes(data, pos)
        return cls(lsn, txn_id, op, target, payload, extra), pos


class LogManager:
    """Append-only log with LSNs, iteration and byte accounting."""

    def __init__(self, stats: StatsRegistry | None = None) -> None:
        self.stats = stats if stats is not None else GLOBAL_STATS
        self._records: list[LogRecord] = []
        self._bytes = 0

    @property
    def next_lsn(self) -> int:
        return len(self._records)

    @property
    def bytes_written(self) -> int:
        """Total encoded log volume."""
        return self._bytes

    def append(self, txn_id: int, op: LogOp, target: str = "",
               payload: bytes = b"", extra: bytes = b"") -> LogRecord:
        """Harden one log record; returns it with its LSN assigned."""
        record = LogRecord(self.next_lsn, txn_id, op, target, payload, extra)
        encoded_len = len(record.encode())
        self._records.append(record)
        self._bytes += encoded_len
        self.stats.add("wal.records")
        self.stats.add("wal.bytes", encoded_len)
        return record

    def records(self) -> Iterator[LogRecord]:
        """All records in LSN order."""
        return iter(list(self._records))

    def truncate(self) -> None:
        """Discard the log (after a checkpoint/backup)."""
        self._records.clear()

    def save(self, path: str) -> None:
        """Persist the log for crash/restart tests."""
        with open(path, "wb") as fh:
            for record in self._records:
                encoded = record.encode()
                fh.write(len(encoded).to_bytes(4, "big"))
                fh.write(encoded)

    @classmethod
    def load(cls, path: str, stats: StatsRegistry | None = None) -> "LogManager":
        log = cls(stats=stats)
        with open(path, "rb") as fh:
            while True:
                header = fh.read(4)
                if not header:
                    break
                length = int.from_bytes(header, "big")
                body = fh.read(length)
                if len(body) != length:
                    raise LogError(f"truncated log record in {path!r}")
                record, _ = LogRecord.decode(body)
                log._records.append(record)
                log._bytes += length
        return log


def replay(log: LogManager,
           apply: Callable[[LogRecord], None],
           committed_only: bool = True) -> int:
    """Redo pass: feed records of committed transactions to ``apply``.

    With ``committed_only`` (the default), records of transactions that never
    logged ``COMMIT`` are suppressed — the archive-recovery equivalent of
    undoing losers.  Returns the number of records applied.
    """
    committed: set[int] = set()
    if committed_only:
        for record in log.records():
            if record.op is LogOp.COMMIT:
                committed.add(record.txn_id)
    applied = 0
    for record in log.records():
        if record.op in (LogOp.BEGIN, LogOp.COMMIT, LogOp.ABORT, LogOp.CHECKPOINT):
            continue
        if committed_only and record.txn_id not in committed and record.txn_id >= 0:
            continue
        apply(record)
        applied += 1
    return applied
