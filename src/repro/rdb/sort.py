"""Sorting infrastructure: external merge sort and linked-list quicksort.

The paper contrasts two sort paths for ``XMLAGG ... ORDER BY`` (§4.1): the
"typical external SORT" over work files, which "suffers from significant
overhead" per group, versus applying "in-memory quicksort to the linked list
representation of rows".  Both are implemented here so experiment E7 can
reproduce the comparison: the external sort really spills runs through a
work-file table space (counting page I/O), and the quicksort really operates
on a linked list.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, Optional

from repro.rdb import codec
from repro.rdb.tablespace import TableSpace


class RowNode:
    """One cell of the singly linked row list used by XMLAGG groups."""

    __slots__ = ("payload", "sort_key", "next")

    def __init__(self, payload: object, sort_key: object) -> None:
        self.payload = payload
        self.sort_key = sort_key
        self.next: Optional["RowNode"] = None


def linked_list_from(rows: Iterable[tuple[object, object]]) -> RowNode | None:
    """Build a linked list from ``(payload, sort_key)`` pairs, keeping order."""
    head: RowNode | None = None
    tail: RowNode | None = None
    for payload, sort_key in rows:
        node = RowNode(payload, sort_key)
        if tail is None:
            head = node
        else:
            tail.next = node
        tail = node
    return head


def linked_list_to_list(head: RowNode | None) -> list[object]:
    """Collect payloads from a linked list into a Python list."""
    out = []
    node = head
    while node is not None:
        out.append(node.payload)
        node = node.next
    return out


def _partition(node: RowNode | None, pivot_key: object):
    """Split a list into (<, ==, >) sublists around ``pivot_key``.

    Returns ``(less, equal_head, equal_tail, greater)``; each sublist is
    properly nil-terminated and preserves relative order (stable).
    """
    less = less_tail = None
    equal = equal_tail = None
    greater = greater_tail = None
    while node is not None:
        nxt = node.next
        node.next = None
        if node.sort_key < pivot_key:  # type: ignore[operator]
            if less_tail is None:
                less = less_tail = node
            else:
                less_tail.next = node
                less_tail = node
        elif node.sort_key > pivot_key:  # type: ignore[operator]
            if greater_tail is None:
                greater = greater_tail = node
            else:
                greater_tail.next = node
                greater_tail = node
        else:
            if equal_tail is None:
                equal = equal_tail = node
            else:
                equal_tail.next = node
                equal_tail = node
        node = nxt
    return less, equal, equal_tail, greater


def quicksort_linked_list(head: RowNode | None) -> RowNode | None:
    """Sort a linked list of rows by ``sort_key`` in place (stable).

    This is the paper's in-memory XMLAGG path: no array materialization, no
    work files — nodes are re-linked.  An explicit worklist replaces
    recursion so long lists cannot overflow Python's recursion limit.  The
    worklist invariant: segments are stacked in reverse output order, so
    finished runs are emitted in ascending key order.
    """
    out_head: RowNode | None = None
    out_tail: RowNode | None = None

    def emit(first: RowNode, last: RowNode) -> None:
        nonlocal out_head, out_tail
        if out_tail is None:
            out_head = first
        else:
            out_tail.next = first
        out_tail = last

    # Items: ("seg", head) for unsorted sublists; ("run", head, tail) for
    # already-sorted runs of equal keys.
    work: list[tuple] = []
    if head is not None:
        work.append(("seg", head))
    while work:
        item = work.pop()
        if item[0] == "run":
            emit(item[1], item[2])
            continue
        segment: RowNode = item[1]
        if segment.next is None:
            emit(segment, segment)
            continue
        less, equal, equal_tail, greater = _partition(segment, segment.sort_key)
        assert equal is not None and equal_tail is not None
        if greater is not None:
            work.append(("seg", greater))
        work.append(("run", equal, equal_tail))
        if less is not None:
            work.append(("seg", less))
    if out_tail is not None:
        out_tail.next = None
    return out_head


class ExternalSorter:
    """External merge sort spilling runs through a work-file table space.

    Rows are serialized with ``encode`` and written as records; each run is a
    contiguous sequence of records.  ``run_limit`` rows are sorted in memory
    per run (simulating a bounded sort heap), then the runs are merged with a
    heap while streaming records back from the work files.
    """

    #: Declared resource capture (SHARD003): spilled runs live in the one
    #: work-file table space the sorter was handed.
    _shard_scoped_ = ("work_space",)

    def __init__(self, work_space: TableSpace, encode: Callable[[object], bytes],
                 decode: Callable[[bytes], object], run_limit: int = 128) -> None:
        if run_limit < 2:
            raise ValueError("run_limit must be at least 2")
        self.work_space = work_space
        self.encode = encode
        self.decode = decode
        self.run_limit = run_limit
        self.runs_spilled = 0

    def sort(self, rows: Iterable[tuple[object, object]]) -> Iterator[object]:
        """Yield payloads of ``(payload, sort_key)`` pairs in key order."""
        runs: list[list] = []
        batch: list[tuple[object, object]] = []

        def spill(batch: list[tuple[object, object]]) -> list:
            batch.sort(key=lambda pair: pair[1])  # type: ignore[arg-type, return-value]
            rids = []
            for payload, sort_key in batch:
                body = bytearray()
                codec.write_bytes(body, self.encode(payload))
                codec.write_bytes(body, self.encode(sort_key))
                rids.append(self.work_space.insert(bytes(body)))
            self.runs_spilled += 1
            return rids

        for pair in rows:
            batch.append(pair)
            if len(batch) >= self.run_limit:
                runs.append(spill(batch))
                batch = []
        if batch:
            runs.append(spill(batch))
        if not runs:
            return

        def run_iter(rids: list) -> Iterator[tuple[object, object]]:
            for rid in rids:
                body = self.work_space.read(rid)
                payload_raw, pos = codec.read_bytes(body, 0)
                key_raw, _ = codec.read_bytes(body, pos)
                yield self.decode(payload_raw), self.decode(key_raw)

        heap: list[tuple[object, int, object, Iterator]] = []
        for run_no, rids in enumerate(runs):
            it = run_iter(rids)
            try:
                payload, sort_key = next(it)
            except StopIteration:
                continue
            heap.append((sort_key, run_no, payload, it))
        heapq.heapify(heap)
        while heap:
            sort_key, run_no, payload, it = heapq.heappop(heap)
            yield payload
            try:
                payload, sort_key = next(it)
            except StopIteration:
                continue
            heapq.heappush(heap, (sort_key, run_no, payload, it))
