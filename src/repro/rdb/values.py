"""SQL value types, row codecs, and order-preserving key encodings.

The relational infrastructure stores typed column values in records and in
B+tree keys.  B+tree keys must be *memcomparable*: byte-wise comparison of the
encoded form must agree with the logical ordering of the values.  The XPath
value indexes (§3.3) reuse these encodings — in particular ``DECFLOAT``, the
paper's IEEE-754r decimal floating point used "for numeric value indexing,
which provides precise values within its range" (§4.3).
"""

from __future__ import annotations

import datetime as _dt
import enum
import struct
from decimal import ROUND_HALF_EVEN, Context, Decimal, InvalidOperation

from repro.errors import TypeError_
from repro.rdb import codec

#: Arithmetic context mirroring decimal128 (34 significant digits).
DECFLOAT_CONTEXT = Context(prec=34, rounding=ROUND_HALF_EVEN)

_EPOCH = _dt.date(1970, 1, 1)


class SqlType(enum.Enum):
    """Column/key types supported by the relational layer."""

    BIGINT = "bigint"
    DOUBLE = "double"
    DECFLOAT = "decfloat"
    VARCHAR = "varchar"
    VARBINARY = "varbinary"
    DATE = "date"
    XML = "xml"

    @classmethod
    def parse(cls, name: str) -> "SqlType":
        """Case-insensitive lookup, accepting SQL spellings."""
        try:
            return cls(name.strip().lower())
        except ValueError:
            raise TypeError_(f"unknown SQL type {name!r}") from None


def coerce(sql_type: SqlType, value: object) -> object:
    """Coerce a Python value to the canonical runtime form of ``sql_type``.

    Strings are converted for numeric/date types (the paper's value indexes
    convert node *string values* to the index key type, §3.3).
    """
    if value is None:
        return None
    try:
        if sql_type is SqlType.BIGINT:
            if isinstance(value, bool):
                raise TypeError_("BIGINT cannot store bool")
            return int(value)  # type: ignore[arg-type]
        if sql_type is SqlType.DOUBLE:
            return float(value)  # type: ignore[arg-type]
        if sql_type is SqlType.DECFLOAT:
            if isinstance(value, Decimal):
                return DECFLOAT_CONTEXT.plus(value)
            if isinstance(value, float):
                return DECFLOAT_CONTEXT.create_decimal(repr(value))
            return DECFLOAT_CONTEXT.create_decimal(str(value).strip())
        if sql_type is SqlType.VARCHAR:
            if isinstance(value, (bytes, bytearray)):
                return bytes(value).decode("utf-8")
            return str(value)
        if sql_type is SqlType.VARBINARY:
            if isinstance(value, str):
                return value.encode("utf-8")
            return bytes(value)  # type: ignore[arg-type]
        if sql_type is SqlType.DATE:
            if isinstance(value, _dt.date) and not isinstance(value, _dt.datetime):
                return value
            return _dt.date.fromisoformat(str(value).strip())
        if sql_type is SqlType.XML:
            return value
    except (ValueError, InvalidOperation) as exc:
        raise TypeError_(f"cannot coerce {value!r} to {sql_type.value}") from exc
    raise TypeError_(f"unhandled SQL type {sql_type}")


# ---------------------------------------------------------------------------
# Row storage encoding (compact, not order-preserving)
# ---------------------------------------------------------------------------

_NULL_TAG = 0
_PRESENT_TAG = 1


def encode_value(out: bytearray, sql_type: SqlType, value: object) -> None:
    """Append ``value`` of ``sql_type`` to ``out`` in row-storage form."""
    if value is None:
        out.append(_NULL_TAG)
        return
    out.append(_PRESENT_TAG)
    value = coerce(sql_type, value)
    if sql_type is SqlType.BIGINT:
        codec.write_svarint(out, value)  # type: ignore[arg-type]
    elif sql_type is SqlType.DOUBLE:
        out.extend(struct.pack(">d", value))
    elif sql_type is SqlType.DECFLOAT:
        codec.write_str(out, str(value))
    elif sql_type is SqlType.VARCHAR:
        codec.write_str(out, value)  # type: ignore[arg-type]
    elif sql_type in (SqlType.VARBINARY, SqlType.XML):
        codec.write_bytes(out, value)  # type: ignore[arg-type]
    elif sql_type is SqlType.DATE:
        codec.write_svarint(out, (value - _EPOCH).days)  # type: ignore[operator]
    else:  # pragma: no cover - exhaustive above
        raise TypeError_(f"unhandled SQL type {sql_type}")


def decode_value(buf: bytes | memoryview, pos: int, sql_type: SqlType) -> tuple[object, int]:
    """Read one value written by :func:`encode_value`."""
    tag = buf[pos]
    pos += 1
    if tag == _NULL_TAG:
        return None, pos
    if sql_type is SqlType.BIGINT:
        return codec.read_svarint(buf, pos)
    if sql_type is SqlType.DOUBLE:
        return struct.unpack(">d", bytes(buf[pos:pos + 8]))[0], pos + 8
    if sql_type is SqlType.DECFLOAT:
        text, pos = codec.read_str(buf, pos)
        return Decimal(text), pos
    if sql_type is SqlType.VARCHAR:
        return codec.read_str(buf, pos)
    if sql_type in (SqlType.VARBINARY, SqlType.XML):
        return codec.read_bytes(buf, pos)
    if sql_type is SqlType.DATE:
        days, pos = codec.read_svarint(buf, pos)
        return _EPOCH + _dt.timedelta(days=days), pos
    raise TypeError_(f"unhandled SQL type {sql_type}")  # pragma: no cover


def encode_row(types: list[SqlType], row: tuple) -> bytes:
    """Encode a full row (one value per column type)."""
    if len(types) != len(row):
        raise TypeError_(f"row has {len(row)} values for {len(types)} columns")
    out = bytearray()
    for sql_type, value in zip(types, row, strict=True):
        encode_value(out, sql_type, value)
    return bytes(out)


def decode_row(types: list[SqlType], data: bytes | memoryview) -> tuple:
    """Decode a row written by :func:`encode_row`."""
    pos = 0
    values = []
    for sql_type in types:
        value, pos = decode_value(data, pos, sql_type)
        values.append(value)
    return tuple(values)


# ---------------------------------------------------------------------------
# Memcomparable key encoding (order-preserving)
# ---------------------------------------------------------------------------

def key_encode(sql_type: SqlType, value: object) -> bytes:
    """Encode ``value`` so that ``bytes`` comparison matches value order.

    NULL sorts lowest (a single ``0x00`` byte); every non-NULL encoding
    starts with ``0x01``.
    """
    if value is None:
        return b"\x00"
    value = coerce(sql_type, value)
    if sql_type is SqlType.BIGINT:
        return b"\x01" + _key_encode_int(value)  # type: ignore[arg-type]
    if sql_type is SqlType.DOUBLE:
        return b"\x01" + _key_encode_double(value)  # type: ignore[arg-type]
    if sql_type is SqlType.DECFLOAT:
        return b"\x01" + _key_encode_decimal(value)  # type: ignore[arg-type]
    if sql_type is SqlType.VARCHAR:
        return b"\x01" + value.encode("utf-8")  # type: ignore[union-attr]
    if sql_type is SqlType.VARBINARY:
        return b"\x01" + bytes(value)  # type: ignore[arg-type]
    if sql_type is SqlType.DATE:
        return b"\x01" + _key_encode_int((value - _EPOCH).days)  # type: ignore[operator]
    raise TypeError_(f"type {sql_type} has no key encoding")


def _key_encode_int(value: int) -> bytes:
    """64-bit two's complement with the sign bit flipped (memcomparable)."""
    if not -(1 << 63) <= value < (1 << 63):
        raise TypeError_(f"BIGINT key out of range: {value}")
    return ((value + (1 << 63)) & ((1 << 64) - 1)).to_bytes(8, "big")


def _key_encode_double(value: float) -> bytes:
    """IEEE-754 double as memcomparable bytes.

    Positive numbers get the sign bit flipped; negative numbers are fully
    complemented, giving total order over finite doubles (NaN rejected).
    """
    if value != value:  # NaN
        raise TypeError_("NaN cannot be used as an index key")
    raw = struct.unpack(">Q", struct.pack(">d", value))[0]
    if raw & (1 << 63):
        raw = (~raw) & ((1 << 64) - 1)
    else:
        raw |= 1 << 63
    return raw.to_bytes(8, "big")


def _key_encode_decimal(value: Decimal) -> bytes:
    """Order-preserving encoding of a decimal128-range value.

    Layout: sign class byte (1 negative / 2 zero / 3 positive), then for
    non-zero magnitudes the adjusted exponent (offset to unsigned 32-bit) and
    the significant digits ``0x30+d`` terminated by ``0x00``.  For negative
    values the exponent and digits are complemented so larger magnitude sorts
    *earlier*.
    """
    if not value.is_finite():
        raise TypeError_(f"non-finite DECFLOAT key: {value}")
    if value == 0:
        return b"\x02"
    sign, digits, exponent = value.as_tuple()
    # Strip trailing zero digits so equal values share one encoding.
    while len(digits) > 1 and digits[-1] == 0:
        digits = digits[:-1]
        exponent += 1  # type: ignore[operator]
    adjusted = exponent + len(digits) - 1  # type: ignore[operator]
    exp_field = adjusted + (1 << 31)
    digit_bytes = bytes(0x30 + d for d in digits)
    if sign == 0:
        return b"\x03" + exp_field.to_bytes(4, "big") + digit_bytes + b"\x00"
    flipped_exp = ((1 << 32) - 1 - exp_field).to_bytes(4, "big")
    flipped_digits = bytes(0xFF - b for b in digit_bytes)
    return b"\x01" + flipped_exp + flipped_digits + b"\xff"
