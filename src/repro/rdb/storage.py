"""Simulated external storage: a page-addressed device with I/O accounting.

The paper's experiments ran on real DASD behind DB2's storage manager; here
the device is an in-memory page array whose read/write counters stand in for
physical I/O (see DESIGN.md substitution table).  The device can optionally
persist itself to a file so recovery tests can simulate a crash/restart.

Every page carries a CRC32 checksum, maintained on write and verified on
read (and when a persisted image is reloaded).  A page whose content no
longer matches its checksum — a torn write or a bit flip, as injected by
:mod:`repro.fault` — raises :class:`~repro.errors.ChecksumError` instead of
silently returning corrupt data.
"""

from __future__ import annotations

import os
import zlib

from repro.core.stats import StatsRegistry, default_stats
from repro.errors import ChecksumError, StorageError


class Disk:
    """Page-addressed storage device.

    Pages are fixed-size byte strings addressed by a dense integer id.
    ``read_page``/``write_page`` maintain the ``disk.page_reads`` /
    ``disk.page_writes`` counters that the benchmarks report as physical I/O.

    Alongside each page the device keeps its CRC32, written atomically with
    the page by :meth:`write_page` and checked by :meth:`read_page`.  The
    fault hooks :meth:`raw_page`/:meth:`corrupt_page` bypass the checksum so
    the fault injector can model torn writes and media corruption.
    """

    #: Declared resource capture (SHARD003): the device's stats sink
    #: may be supplied by its owner (engine or test harness).
    _shard_scoped_ = ("stats",)

    def __init__(self, page_size: int = 4096, stats: StatsRegistry | None = None) -> None:
        if page_size < 64:
            raise StorageError(f"page size {page_size} is too small")
        self.page_size = page_size
        self.stats = default_stats(stats)
        self._pages: list[bytes] = []
        self._checksums: list[int] = []

    @property
    def page_count(self) -> int:
        """Number of allocated pages."""
        return len(self._pages)

    @property
    def allocated_bytes(self) -> int:
        """Total device bytes in allocated pages."""
        return len(self._pages) * self.page_size

    def allocate_page(self) -> int:
        """Allocate a fresh zeroed page; returns its page id."""
        zero = bytes(self.page_size)
        self._pages.append(zero)
        self._checksums.append(zlib.crc32(zero))
        return len(self._pages) - 1

    def read_page(self, page_id: int) -> bytes:
        """Physically read page ``page_id``, verifying its checksum."""
        self._check(page_id)
        self.stats.add("disk.page_reads")
        data = self._pages[page_id]
        if zlib.crc32(data) != self._checksums[page_id]:
            self.stats.add("disk.checksum_failures")
            raise ChecksumError(
                f"page {page_id} failed checksum verification "
                f"(torn write or corruption)")
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        """Physically write page ``page_id`` (and its checksum)."""
        self._check(page_id)
        if len(data) != self.page_size:
            raise StorageError(
                f"write of {len(data)} bytes to page of size {self.page_size}")
        self.stats.add("disk.page_writes")
        self._pages[page_id] = bytes(data)
        self._checksums[page_id] = zlib.crc32(self._pages[page_id])

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < len(self._pages):
            raise StorageError(f"page {page_id} is not allocated")

    # -- fault-injection hooks -------------------------------------------

    def raw_page(self, page_id: int) -> bytes:
        """Page content without checksum verification or I/O accounting."""
        self._check(page_id)
        return self._pages[page_id]

    def corrupt_page(self, page_id: int, data: bytes) -> None:
        """Overwrite the stored image of ``page_id`` without updating its
        checksum — the fault injector's model of a torn write or bit rot.
        """
        self._check(page_id)
        if len(data) != self.page_size:
            raise StorageError(
                f"corrupt image of {len(data)} bytes for page of size "
                f"{self.page_size}")
        self._pages[page_id] = bytes(data)

    # -- crash/restart support -------------------------------------------

    def save(self, path: str) -> None:
        """Persist the device image (pages + checksums) to ``path``."""
        with open(path, "wb") as fh:
            fh.write(self.page_size.to_bytes(4, "big"))
            for page, checksum in zip(self._pages, self._checksums, strict=True):
                fh.write(checksum.to_bytes(4, "big"))
                fh.write(page)

    @classmethod
    def load(cls, path: str, stats: StatsRegistry | None = None,
             verify: bool = True) -> "Disk":
        """Reload a device image written by :meth:`save`.

        With ``verify`` (the default) every page is checked against its
        stored checksum and a mismatch raises
        :class:`~repro.errors.ChecksumError`; ``verify=False`` defers
        detection to the first :meth:`read_page` of the damaged page.
        """
        size = os.path.getsize(path)
        with open(path, "rb") as fh:
            page_size = int.from_bytes(fh.read(4), "big")
            disk = cls(page_size, stats=stats)
            n_pages, rem = divmod(size - 4, page_size + 4)
            if rem:
                raise StorageError(f"corrupt device image {path!r}")
            for page_id in range(n_pages):
                checksum = int.from_bytes(fh.read(4), "big")
                page = fh.read(page_size)
                if verify and zlib.crc32(page) != checksum:
                    disk.stats.add("disk.checksum_failures")
                    raise ChecksumError(
                        f"page {page_id} of image {path!r} failed checksum "
                        f"verification")
                disk._pages.append(page)
                disk._checksums.append(checksum)
        return disk
