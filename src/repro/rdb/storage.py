"""Simulated external storage: a page-addressed device with I/O accounting.

The paper's experiments ran on real DASD behind DB2's storage manager; here
the device is an in-memory page array whose read/write counters stand in for
physical I/O (see DESIGN.md substitution table).  The device can optionally
persist itself to a file so recovery tests can simulate a crash/restart.
"""

from __future__ import annotations

import os

from repro.core.stats import GLOBAL_STATS, StatsRegistry
from repro.errors import StorageError


class Disk:
    """Page-addressed storage device.

    Pages are fixed-size byte strings addressed by a dense integer id.
    ``read_page``/``write_page`` maintain the ``disk.page_reads`` /
    ``disk.page_writes`` counters that the benchmarks report as physical I/O.
    """

    def __init__(self, page_size: int = 4096, stats: StatsRegistry | None = None) -> None:
        if page_size < 64:
            raise StorageError(f"page size {page_size} is too small")
        self.page_size = page_size
        self.stats = stats if stats is not None else GLOBAL_STATS
        self._pages: list[bytes] = []

    @property
    def page_count(self) -> int:
        """Number of allocated pages."""
        return len(self._pages)

    @property
    def allocated_bytes(self) -> int:
        """Total device bytes in allocated pages."""
        return len(self._pages) * self.page_size

    def allocate_page(self) -> int:
        """Allocate a fresh zeroed page; returns its page id."""
        self._pages.append(bytes(self.page_size))
        return len(self._pages) - 1

    def read_page(self, page_id: int) -> bytes:
        """Physically read page ``page_id``."""
        self._check(page_id)
        self.stats.add("disk.page_reads")
        return self._pages[page_id]

    def write_page(self, page_id: int, data: bytes) -> None:
        """Physically write page ``page_id``."""
        self._check(page_id)
        if len(data) != self.page_size:
            raise StorageError(
                f"write of {len(data)} bytes to page of size {self.page_size}")
        self.stats.add("disk.page_writes")
        self._pages[page_id] = bytes(data)

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < len(self._pages):
            raise StorageError(f"page {page_id} is not allocated")

    # -- crash/restart support -------------------------------------------

    def save(self, path: str) -> None:
        """Persist the device image to ``path`` (used by recovery tests)."""
        with open(path, "wb") as fh:
            fh.write(self.page_size.to_bytes(4, "big"))
            for page in self._pages:
                fh.write(page)

    @classmethod
    def load(cls, path: str, stats: StatsRegistry | None = None) -> "Disk":
        """Reload a device image written by :meth:`save`."""
        size = os.path.getsize(path)
        with open(path, "rb") as fh:
            page_size = int.from_bytes(fh.read(4), "big")
            disk = cls(page_size, stats=stats)
            n_pages, rem = divmod(size - 4, page_size)
            if rem:
                raise StorageError(f"corrupt device image {path!r}")
            for _ in range(n_pages):
                disk._pages.append(fh.read(page_size))
        return disk
