"""Table spaces: record storage by RID on slotted pages.

This is the layer the paper stresses is *reused unchanged* for XML: "to the
lower level components of the infrastructure, our packed XML data looks like
rows in relational tables" (§2).  Records larger than a page spill into
overflow chains transparently, so callers (including the XML tree packer)
never see page boundaries.

RIDs are ``(page_id, slot_no)`` pairs; they also have a fixed 6-byte encoding
used inside index entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.analyze import sanitize as _sanitize
from repro.errors import PageFullError, StorageError
from repro.rdb.buffer import BufferPool
from repro.rdb.pages import HEADER_SIZE, SLOT_SIZE, SlottedPage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import ShardContext

_INLINE_TAG = 0
_OVERFLOW_TAG = 1


@dataclass(frozen=True, order=True)
class Rid:
    """Record identifier: physical page and slot."""

    page_id: int
    slot_no: int

    def to_bytes(self) -> bytes:
        """Fixed 6-byte encoding (big-endian page, big-endian slot)."""
        return self.page_id.to_bytes(4, "big") + self.slot_no.to_bytes(2, "big")

    @classmethod
    def from_bytes(cls, data: bytes | memoryview) -> "Rid":
        if len(data) != 6:
            raise StorageError(f"RID encoding must be 6 bytes, got {len(data)}")
        return cls(int.from_bytes(data[:4], "big"), int.from_bytes(data[4:6], "big"))

    def __repr__(self) -> str:
        return f"Rid({self.page_id}:{self.slot_no})"


class TableSpace:
    """An ordered collection of slotted pages holding records of one table.

    Inserts prefer the most recently filled page, so row order follows
    insertion order — this is what gives the internal XML table its
    ``(DocID, minNodeID)`` clustering (§3.1) when documents are inserted a
    record run at a time.  Freed space is remembered in a bucketed
    free-space map and reused.
    """

    #: Declared resource capture (SHARD003): a table space lives on the
    #: buffer pool it was built over — shard-scoped with its owner.
    _shard_scoped_ = ("pool",)

    def __init__(self, pool: BufferPool, name: str = "ts",
                 context: "ShardContext | None" = None) -> None:
        self.pool = pool
        self.name = name
        self.context = context
        _sanitize.inherit_shard(self, pool)
        if context is not None:
            context.register_tablespace(self)
        self.page_ids: list[int] = []
        self._free: dict[int, int] = {}  # page_id -> free_for_insert estimate
        self._buckets: list[set[int]] = [set() for _ in range(17)]
        self._last_page: int | None = None
        self._record_count = 0
        self._overflow_pages = 0
        # A record must leave room for the header and one slot.
        self.max_inline = pool.page_size - HEADER_SIZE - SLOT_SIZE - 1

    # -- space map ---------------------------------------------------------

    @staticmethod
    def _bucket_of(free: int) -> int:
        bucket = 0
        while (1 << (bucket + 1)) <= free and bucket < 16:
            bucket += 1
        return bucket

    def _note_free(self, page_id: int, free: int) -> None:
        old = self._free.get(page_id)
        if old is not None:
            self._buckets[self._bucket_of(old)].discard(page_id)
        self._free[page_id] = free
        if free > 0:
            self._buckets[self._bucket_of(free)].add(page_id)

    def _find_page_with(self, needed: int) -> int | None:
        if self._last_page is not None and self._free.get(self._last_page, 0) >= needed:
            return self._last_page
        for bucket in range(self._bucket_of(needed), 17):
            for page_id in self._buckets[bucket]:
                if self._free.get(page_id, 0) >= needed:
                    return page_id
        return None

    def _new_data_page(self) -> int:
        page_id, data = self.pool.new_page()
        try:
            SlottedPage.format(data)
        finally:
            self.pool.unpin(page_id, dirty=True)
        self.page_ids.append(page_id)
        self._note_free(page_id, self.pool.page_size - HEADER_SIZE - SLOT_SIZE)
        return page_id

    # -- public API ----------------------------------------------------------

    @property
    def record_count(self) -> int:
        """Number of live records."""
        return self._record_count

    @property
    def page_count(self) -> int:
        """Data pages plus overflow pages owned by this space."""
        return len(self.page_ids) + self._overflow_pages

    def allocated_bytes(self) -> int:
        """Total bytes of pages owned by this space."""
        return self.page_count * self.pool.page_size

    def footprint(self) -> dict[str, int]:
        """Page/record/byte counts for DISPLAY-style monitor snapshots."""
        return {
            "records": self.record_count,
            "pages": self.page_count,
            "allocated_bytes": self.allocated_bytes(),
            "live_bytes": self.live_bytes(),
        }

    def insert(self, record: bytes) -> Rid:
        """Store ``record`` and return its RID."""
        stats = self.pool.stats
        stats.add("ts.records_inserted")
        stats.add("ts.bytes_touched", len(record))
        payload = self._maybe_spill(record)
        needed = len(payload) + SLOT_SIZE
        page_id = self._find_page_with(needed)
        if page_id is None:
            page_id = self._new_data_page()
            if self._free[page_id] < needed:  # pragma: no cover - guarded by max_inline
                raise PageFullError(f"record of {len(payload)} bytes exceeds page capacity")
        with self.pool.page(page_id, write=True) as data:
            page = SlottedPage(data)
            slot_no = page.insert(payload)
            self._note_free(page_id, page.free_for_insert())
        self._last_page = page_id
        self._record_count += 1
        return Rid(page_id, slot_no)

    def read(self, rid: Rid) -> bytes:
        """Fetch the record stored at ``rid``."""
        stats = self.pool.stats
        stats.add("ts.records_read")
        with self.pool.page(rid.page_id) as data:
            payload = bytes(SlottedPage(data).read(rid.slot_no))
        stats.add("ts.bytes_touched", len(payload))
        return self._maybe_reassemble(payload)

    def update(self, rid: Rid, record: bytes) -> Rid:
        """Replace the record at ``rid``.

        Updates stay in place when they fit; otherwise the record moves and
        the *new* RID is returned (callers such as the NodeID index manager
        must re-point their entries, §3.1's "maximum flexibility of record
        placement").
        """
        stats = self.pool.stats
        stats.add("ts.records_updated")
        stats.add("ts.bytes_touched", len(record))
        old_overflow = self._read_raw(rid)
        payload = self._maybe_spill(record)
        try:
            with self.pool.page(rid.page_id, write=True) as data:
                page = SlottedPage(data)
                page.update(rid.slot_no, payload)
                self._note_free(rid.page_id, page.free_for_insert())
            self._free_overflow_of(old_overflow)
            return rid
        except PageFullError:
            pass
        with self.pool.page(rid.page_id, write=True) as data:
            page = SlottedPage(data)
            page.delete(rid.slot_no)
            self._note_free(rid.page_id, page.free_for_insert())
        self._free_overflow_of(old_overflow)
        self._record_count -= 1
        return self.insert(record)

    def delete(self, rid: Rid) -> None:
        """Remove the record at ``rid``."""
        self.pool.stats.add("ts.records_deleted")
        payload = self._read_raw(rid)
        with self.pool.page(rid.page_id, write=True) as data:
            page = SlottedPage(data)
            page.delete(rid.slot_no)
            self._note_free(rid.page_id, page.free_for_insert())
        self._free_overflow_of(payload)
        self._record_count -= 1

    def scan(self) -> Iterator[tuple[Rid, bytes]]:
        """Yield every live record in page order (a relational scan)."""
        stats = self.pool.stats
        for page_id in self.page_ids:
            with self.pool.page(page_id) as data:
                page = SlottedPage(data)
                entries = [(slot_no, bytes(payload)) for slot_no, payload in page.records()]
            for slot_no, payload in entries:
                stats.add("ts.records_read")
                stats.add("ts.bytes_touched", len(payload))
                yield Rid(page_id, slot_no), self._maybe_reassemble(payload)

    def live_bytes(self) -> int:
        """Total live record payload bytes (inline representation)."""
        total = 0
        for page_id in self.page_ids:
            with self.pool.page(page_id) as data:
                total += SlottedPage(data).live_bytes()
        return total + self._overflow_pages * self.pool.page_size

    # -- overflow handling -----------------------------------------------------

    def _maybe_spill(self, record: bytes) -> bytes:
        """Return the inline payload, spilling long records to overflow pages."""
        if len(record) + 1 <= self.max_inline:
            return bytes([_INLINE_TAG]) + record
        chunk = self.pool.page_size
        page_ids = []
        for start in range(0, len(record), chunk):
            page_id, data = self.pool.new_page()
            try:
                piece = record[start:start + chunk]
                data[:len(piece)] = piece
            finally:
                self.pool.unpin(page_id, dirty=True)
            page_ids.append(page_id)
            self._overflow_pages += 1
        head = bytearray([_OVERFLOW_TAG])
        head += len(record).to_bytes(8, "big")
        head += len(page_ids).to_bytes(4, "big")
        for page_id in page_ids:
            head += page_id.to_bytes(4, "big")
        return bytes(head)

    def _maybe_reassemble(self, payload: bytes) -> bytes:
        if payload[0] == _INLINE_TAG:
            return payload[1:]
        total = int.from_bytes(payload[1:9], "big")
        n_pages = int.from_bytes(payload[9:13], "big")
        parts = []
        for i in range(n_pages):
            page_id = int.from_bytes(payload[13 + 4 * i:17 + 4 * i], "big")
            with self.pool.page(page_id) as data:
                parts.append(bytes(data))
        return b"".join(parts)[:total]

    def _read_raw(self, rid: Rid) -> bytes:
        with self.pool.page(rid.page_id) as data:
            return bytes(SlottedPage(data).read(rid.slot_no))

    def _free_overflow_of(self, payload: bytes) -> None:
        # The simulated device has no deallocation; just account for reuse.
        if payload and payload[0] == _OVERFLOW_TAG:
            n_pages = int.from_bytes(payload[9:13], "big")
            self._overflow_pages -= n_pages
