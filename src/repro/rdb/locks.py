"""Lock manager: multiple-granularity modes, upgrade, deadlock detection.

The relational lock manager of Fig. 1, "enhanced to support ... concurrency
of XML operations" (§2).  It is deliberately *non-blocking*: ``try_acquire``
either grants or reports a conflict, and the deterministic scheduler in
``repro.cc.scheduler`` retries blocked transactions, which keeps concurrency
experiments reproducible.  A waits-for graph detects deadlocks.

Resources are arbitrary hashable keys.  The XML services lock tuples such as
``("doc", table, docid)`` (DocID locks, §5.1) or ``("node", docid, nodeid)``
(node locks, §5.2); the manager itself is agnostic, exactly as in the paper
where one lock manager covers relational and XML resources.
"""

from __future__ import annotations

import enum
import threading

from repro.analyze import sanitize as _sanitize
from repro.core.stats import StatsRegistry, default_stats


class LockMode(enum.IntEnum):
    """Multiple-granularity lock modes [4]."""

    IS = 0
    IX = 1
    S = 2
    SIX = 3
    U = 4
    X = 5


_M = LockMode
#: compat[a][b] — may a newly requested mode `a` coexist with granted `b`?
_COMPAT: dict[LockMode, set[LockMode]] = {
    _M.IS: {_M.IS, _M.IX, _M.S, _M.SIX, _M.U},
    _M.IX: {_M.IS, _M.IX},
    _M.S: {_M.IS, _M.S, _M.U},
    _M.SIX: {_M.IS},
    _M.U: {_M.IS, _M.S},
    _M.X: set(),
}

#: Least upper bound of two modes, used for lock upgrades.
_LUB: dict[tuple[LockMode, LockMode], LockMode] = {}
for _a in _M:
    for _b in _M:
        if _a == _b:
            _LUB[(_a, _b)] = _a
        elif {_a, _b} == {_M.IS, _M.IX}:
            _LUB[(_a, _b)] = _M.IX
        elif {_a, _b} == {_M.IS, _M.S}:
            _LUB[(_a, _b)] = _M.S
        elif {_a, _b} == {_M.IS, _M.SIX} or {_a, _b} == {_M.IX, _M.S} or \
                {_a, _b} == {_M.IX, _M.SIX} or {_a, _b} == {_M.S, _M.SIX} or \
                {_a, _b} == {_M.SIX, _M.U}:
            _LUB[(_a, _b)] = _M.SIX
        elif {_a, _b} == {_M.IS, _M.U} or {_a, _b} == {_M.S, _M.U}:
            _LUB[(_a, _b)] = _M.U
        else:
            _LUB[(_a, _b)] = _M.X


def mode_compatible(requested: LockMode, granted: LockMode) -> bool:
    """Whether ``requested`` may be granted alongside ``granted``."""
    return granted in _COMPAT[requested]


def mode_lub(a: LockMode, b: LockMode) -> LockMode:
    """Least mode at least as strong as both ``a`` and ``b``."""
    return _LUB[(a, b)]


def _stripe_latch(token: str) -> object:
    """A stripe latch: tracked when the sanitizers are armed at build time.

    Token identity is the stripe *family*, not the instance — the lockset
    discipline reasons about "some resource-stripe latch held", which is
    the same granularity the static guard inference uses.  Plain
    ``threading.Lock`` when disarmed: stripes are the lock manager's hot
    path and the tracked wrapper is not free.
    """
    if _sanitize.enabled():
        return _sanitize.TrackedLock(token)
    return threading.Lock()


class _ResourceStripe:
    """One shard of the granted-lock table, with its own latch."""

    __slots__ = ("latch", "granted")

    def __init__(self) -> None:
        self.latch = _stripe_latch("lock.resource_stripe")
        #: {resource: {txn_id: mode}}
        self.granted: dict[object, dict[int, LockMode]] = {}


class _TxnStripe:
    """One shard of the per-transaction bookkeeping (held + waits-for)."""

    __slots__ = ("latch", "held", "waits_for")

    def __init__(self) -> None:
        self.latch = _stripe_latch("lock.txn_stripe")
        #: {txn_id: set of resources held}
        self.held: dict[int, set[object]] = {}
        #: {waiter txn_id: set of blocker txn_ids}
        self.waits_for: dict[int, set[int]] = {}


class LockManager:
    """Striped lock table with per-transaction bookkeeping.

    The table is sharded the way DB2's IRLM hashes lock names: resources
    hash onto :class:`_ResourceStripe` shards of the granted-lock table and
    transaction ids onto :class:`_TxnStripe` shards of the held/waits-for
    maps, each stripe with its own latch.  A request touches exactly one
    stripe of each kind and never holds two stripe latches at once, so the
    stripes cannot deadlock against each other and concurrent requests on
    different resources no longer serialize on one hot dict lock.

    Consistency note: an operation sees each stripe atomically but the
    *cross*-stripe view (``lock_table``, ``find_deadlock``) is a sequence
    of per-stripe snapshots — the same fuzziness a real striped lock
    manager accepts, and engine entries still run under the engine latch.
    """

    #: Declared resource capture (SHARD003): the lock manager's stats
    #: sink may be supplied by its owner.
    _shard_scoped_ = ("stats",)

    def __init__(self, stats: StatsRegistry | None = None,
                 stripes: int = 16) -> None:
        self.stats = default_stats(stats)
        count = max(1, stripes)
        self._resource_stripes = [_ResourceStripe() for _ in range(count)]
        self._txn_stripes = [_TxnStripe() for _ in range(count)]

    def _resource_stripe(self, resource: object) -> _ResourceStripe:
        return self._resource_stripes[hash(resource)
                                      % len(self._resource_stripes)]

    def _txn_stripe(self, txn_id: int) -> _TxnStripe:
        return self._txn_stripes[hash(txn_id) % len(self._txn_stripes)]

    def try_acquire(self, txn_id: int, resource: object, mode: LockMode) -> bool:
        """Grant ``mode`` on ``resource`` to ``txn_id`` if compatible.

        Re-requests upgrade to the least upper bound of held and requested
        modes.  On conflict, records waits-for edges and returns ``False``.
        """
        stripe = self._resource_stripe(resource)
        with stripe.latch:
            if _sanitize.enabled():
                _sanitize.shared_access(self.stats, "LockStripe",
                                        "granted", write=True)
            holders = stripe.granted.setdefault(resource, {})
            held = holders.get(txn_id)
            effective = mode if held is None else mode_lub(held, mode)
            blockers = [
                other for other, other_mode in holders.items()
                if other != txn_id
                and not mode_compatible(effective, other_mode)
            ]
            if not blockers:
                holders[txn_id] = effective
        txn_stripe = self._txn_stripe(txn_id)
        if blockers:
            self.stats.add("lock.waits")
            self.stats.trace_event("lock.wait", txn=txn_id,
                                   resource=str(resource),
                                   mode=effective.name,
                                   blockers=len(blockers))
            with txn_stripe.latch:
                if _sanitize.enabled():
                    _sanitize.shared_access(self.stats, "LockStripe",
                                            "waits_for", write=True)
                txn_stripe.waits_for.setdefault(txn_id, set()) \
                    .update(blockers)
            return False
        with txn_stripe.latch:
            if _sanitize.enabled():
                _sanitize.shared_access(self.stats, "LockStripe",
                                        "held", write=True)
                _sanitize.shared_access(self.stats, "LockStripe",
                                        "waits_for", write=True)
            txn_stripe.held.setdefault(txn_id, set()).add(resource)
            txn_stripe.waits_for.pop(txn_id, None)
        self.stats.add("lock.acquired")
        if _sanitize.enabled():
            _sanitize.on_lock_acquired(self.stats, txn_id, resource)
        return True

    def holds(self, txn_id: int, resource: object,
              mode: LockMode | None = None) -> bool:
        """Whether ``txn_id`` holds ``resource`` (at least in ``mode``)."""
        stripe = self._resource_stripe(resource)
        with stripe.latch:
            held = stripe.granted.get(resource, {}).get(txn_id)
        if held is None:
            return False
        return mode is None or mode_lub(held, mode) == held

    def holders(self, resource: object) -> dict[int, LockMode]:
        """Snapshot of granted modes on ``resource``."""
        stripe = self._resource_stripe(resource)
        with stripe.latch:
            return dict(stripe.granted.get(resource, {}))

    def release_all(self, txn_id: int) -> None:
        """Drop every lock held by ``txn_id`` (commit/abort time).

        Also erases ``txn_id`` from every other waiter's edge set, and —
        crucially — drops waiters whose edge set *empties*: a leftover
        ``{waiter: set()}`` entry would keep counting in
        :meth:`waiter_count` as a phantom waiter (the serving layer's
        overload guard sheds on that number) even though nothing blocks
        the transaction any more.
        """
        txn_stripe = self._txn_stripe(txn_id)
        with txn_stripe.latch:
            if _sanitize.enabled():
                _sanitize.shared_access(self.stats, "LockStripe",
                                        "held", write=True)
                _sanitize.shared_access(self.stats, "LockStripe",
                                        "waits_for", write=True)
            held = txn_stripe.held.pop(txn_id, set())
            txn_stripe.waits_for.pop(txn_id, None)
        for resource in held:
            stripe = self._resource_stripe(resource)
            with stripe.latch:
                if _sanitize.enabled():
                    _sanitize.shared_access(self.stats, "LockStripe",
                                            "granted", write=True)
                holders = stripe.granted.get(resource)
                if holders is not None:
                    holders.pop(txn_id, None)
                    if not holders:
                        del stripe.granted[resource]
        for stripe in self._txn_stripes:
            with stripe.latch:
                for waiter in list(stripe.waits_for):
                    edges = stripe.waits_for[waiter]
                    edges.discard(txn_id)
                    if not edges:
                        del stripe.waits_for[waiter]
        if _sanitize.enabled():
            _sanitize.on_locks_released(txn_id)

    def clear_waits(self, txn_id: int) -> None:
        """Forget ``txn_id``'s waits-for edges without releasing its locks.

        Called when a blocked request gives up (lock timeout): the
        transaction keeps what it holds but no longer waits, so its stale
        edges cannot produce false deadlock cycles.
        """
        stripe = self._txn_stripe(txn_id)
        with stripe.latch:
            stripe.waits_for.pop(txn_id, None)

    def locks_held(self, txn_id: int) -> int:
        """Number of resources currently locked by ``txn_id``."""
        stripe = self._txn_stripe(txn_id)
        with stripe.latch:
            return len(stripe.held.get(txn_id, ()))

    # -- introspection (DISPLAY-style snapshots, repro.obs.monitor) --------

    def lock_table(self) -> dict[object, dict[int, LockMode]]:
        """Copy of the granted-lock table: ``{resource: {txn: mode}}``.

        Empty holder maps (a resource whose last lock was just released)
        are omitted, so the result reflects only live grants.
        """
        table: dict[object, dict[int, LockMode]] = {}
        for stripe in self._resource_stripes:
            with stripe.latch:
                for resource, holders in stripe.granted.items():
                    if holders:
                        table[resource] = dict(holders)
        return table

    def waiter_count(self) -> int:
        """Number of transactions currently recorded as waiting.

        Unlike :meth:`waits_for_edges` this does not copy the graph — it
        sums per-stripe dict lengths, each atomic under the GIL — so it is
        safe (and O(stripes)) to call from a monitoring thread without the
        engine latch; the serving layer's overload guard reads it on the
        admission path.  :meth:`release_all` keeps the stripes free of
        empty edge sets, so every counted entry is a real waiter.

        Deliberately *not* witnessed by the lockset sanitizer: this is the
        one latch-free read of ``waits_for``, and it is latch-free by
        design — witnessing it would (correctly, per the Eraser rules)
        empty the field's candidate lockset and trip on an access the
        engine has decided to allow.
        """
        return sum(len(stripe.waits_for) for stripe in self._txn_stripes)

    def waits_for_edges(self) -> dict[int, frozenset[int]]:
        """Copy of the waits-for graph: ``{waiter: blockers}``."""
        edges: dict[int, frozenset[int]] = {}
        for stripe in self._txn_stripes:
            with stripe.latch:
                for waiter, blockers in stripe.waits_for.items():
                    if blockers:
                        edges[waiter] = frozenset(blockers)
        return edges

    def find_deadlock(self) -> list[int] | None:
        """Return a cycle of transaction ids in the waits-for graph, if any."""
        graph = {t: set(edges) for t, edges in self.waits_for_edges().items()}
        visited: set[int] = set()
        for start in graph:
            if start in visited:
                continue
            path: list[int] = []
            on_path: set[int] = set()

            def dfs(node: int) -> list[int] | None:
                visited.add(node)
                path.append(node)
                on_path.add(node)
                for succ in graph.get(node, ()):  # noqa: B023
                    if succ in on_path:
                        cycle = path[path.index(succ):]
                        return cycle
                    if succ not in visited:
                        found = dfs(succ)
                        if found is not None:
                            return found
                path.pop()
                on_path.discard(node)
                return None

            cycle = dfs(start)
            if cycle is not None:
                self.stats.add("lock.deadlocks")
                self.stats.trace_event("lock.deadlock",
                                       cycle=[int(t) for t in cycle])
                return cycle
        return None
