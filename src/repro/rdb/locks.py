"""Lock manager: multiple-granularity modes, upgrade, deadlock detection.

The relational lock manager of Fig. 1, "enhanced to support ... concurrency
of XML operations" (§2).  It is deliberately *non-blocking*: ``try_acquire``
either grants or reports a conflict, and the deterministic scheduler in
``repro.cc.scheduler`` retries blocked transactions, which keeps concurrency
experiments reproducible.  A waits-for graph detects deadlocks.

Resources are arbitrary hashable keys.  The XML services lock tuples such as
``("doc", table, docid)`` (DocID locks, §5.1) or ``("node", docid, nodeid)``
(node locks, §5.2); the manager itself is agnostic, exactly as in the paper
where one lock manager covers relational and XML resources.
"""

from __future__ import annotations

import enum
from collections import defaultdict

from repro.analyze import sanitize as _sanitize
from repro.core.stats import GLOBAL_STATS, StatsRegistry


class LockMode(enum.IntEnum):
    """Multiple-granularity lock modes [4]."""

    IS = 0
    IX = 1
    S = 2
    SIX = 3
    U = 4
    X = 5


_M = LockMode
#: compat[a][b] — may a newly requested mode `a` coexist with granted `b`?
_COMPAT: dict[LockMode, set[LockMode]] = {
    _M.IS: {_M.IS, _M.IX, _M.S, _M.SIX, _M.U},
    _M.IX: {_M.IS, _M.IX},
    _M.S: {_M.IS, _M.S, _M.U},
    _M.SIX: {_M.IS},
    _M.U: {_M.IS, _M.S},
    _M.X: set(),
}

#: Least upper bound of two modes, used for lock upgrades.
_LUB: dict[tuple[LockMode, LockMode], LockMode] = {}
for _a in _M:
    for _b in _M:
        if _a == _b:
            _LUB[(_a, _b)] = _a
        elif {_a, _b} == {_M.IS, _M.IX}:
            _LUB[(_a, _b)] = _M.IX
        elif {_a, _b} == {_M.IS, _M.S}:
            _LUB[(_a, _b)] = _M.S
        elif {_a, _b} == {_M.IS, _M.SIX} or {_a, _b} == {_M.IX, _M.S} or \
                {_a, _b} == {_M.IX, _M.SIX} or {_a, _b} == {_M.S, _M.SIX} or \
                {_a, _b} == {_M.SIX, _M.U}:
            _LUB[(_a, _b)] = _M.SIX
        elif {_a, _b} == {_M.IS, _M.U} or {_a, _b} == {_M.S, _M.U}:
            _LUB[(_a, _b)] = _M.U
        else:
            _LUB[(_a, _b)] = _M.X


def mode_compatible(requested: LockMode, granted: LockMode) -> bool:
    """Whether ``requested`` may be granted alongside ``granted``."""
    return granted in _COMPAT[requested]


def mode_lub(a: LockMode, b: LockMode) -> LockMode:
    """Least mode at least as strong as both ``a`` and ``b``."""
    return _LUB[(a, b)]


class LockManager:
    """Lock table keyed by resource, with per-transaction bookkeeping."""

    def __init__(self, stats: StatsRegistry | None = None) -> None:
        self.stats = stats if stats is not None else GLOBAL_STATS
        self._granted: dict[object, dict[int, LockMode]] = defaultdict(dict)
        self._held_by_txn: dict[int, set[object]] = defaultdict(set)
        self._waits_for: dict[int, set[int]] = defaultdict(set)

    def try_acquire(self, txn_id: int, resource: object, mode: LockMode) -> bool:
        """Grant ``mode`` on ``resource`` to ``txn_id`` if compatible.

        Re-requests upgrade to the least upper bound of held and requested
        modes.  On conflict, records waits-for edges and returns ``False``.
        """
        holders = self._granted[resource]
        held = holders.get(txn_id)
        effective = mode if held is None else mode_lub(held, mode)
        blockers = [
            other for other, other_mode in holders.items()
            if other != txn_id and not mode_compatible(effective, other_mode)
        ]
        if blockers:
            self.stats.add("lock.waits")
            self.stats.trace_event("lock.wait", txn=txn_id,
                                   resource=str(resource),
                                   mode=effective.name,
                                   blockers=len(blockers))
            self._waits_for[txn_id].update(blockers)
            return False
        holders[txn_id] = effective
        self._held_by_txn[txn_id].add(resource)
        self._waits_for.pop(txn_id, None)
        self.stats.add("lock.acquired")
        if _sanitize.enabled():
            _sanitize.on_lock_acquired(self.stats, txn_id, resource)
        return True

    def holds(self, txn_id: int, resource: object,
              mode: LockMode | None = None) -> bool:
        """Whether ``txn_id`` holds ``resource`` (at least in ``mode``)."""
        held = self._granted.get(resource, {}).get(txn_id)
        if held is None:
            return False
        return mode is None or mode_lub(held, mode) == held

    def holders(self, resource: object) -> dict[int, LockMode]:
        """Snapshot of granted modes on ``resource``."""
        return dict(self._granted.get(resource, {}))

    def release_all(self, txn_id: int) -> None:
        """Drop every lock held by ``txn_id`` (commit/abort time)."""
        for resource in self._held_by_txn.pop(txn_id, set()):
            holders = self._granted.get(resource)
            if holders is not None:
                holders.pop(txn_id, None)
                if not holders:
                    del self._granted[resource]
        self._waits_for.pop(txn_id, None)
        for edges in self._waits_for.values():
            edges.discard(txn_id)
        if _sanitize.enabled():
            _sanitize.on_locks_released(txn_id)

    def clear_waits(self, txn_id: int) -> None:
        """Forget ``txn_id``'s waits-for edges without releasing its locks.

        Called when a blocked request gives up (lock timeout): the
        transaction keeps what it holds but no longer waits, so its stale
        edges cannot produce false deadlock cycles.
        """
        self._waits_for.pop(txn_id, None)

    def locks_held(self, txn_id: int) -> int:
        """Number of resources currently locked by ``txn_id``."""
        return len(self._held_by_txn.get(txn_id, ()))

    # -- introspection (DISPLAY-style snapshots, repro.obs.monitor) --------

    def lock_table(self) -> dict[object, dict[int, LockMode]]:
        """Copy of the granted-lock table: ``{resource: {txn: mode}}``.

        Empty holder maps (a resource whose last lock was just released)
        are omitted, so the result reflects only live grants.
        """
        return {resource: dict(holders)
                for resource, holders in self._granted.items() if holders}

    def waiter_count(self) -> int:
        """Number of transactions currently recorded as waiting.

        Unlike :meth:`waits_for_edges` this does not iterate the graph, so
        it is safe to call from a monitoring thread without the engine
        latch (``len`` of a dict is atomic under the GIL) — the serving
        layer's overload guard reads it on the admission path.
        """
        return len(self._waits_for)

    def waits_for_edges(self) -> dict[int, frozenset[int]]:
        """Copy of the waits-for graph: ``{waiter: blockers}``."""
        return {waiter: frozenset(blockers)
                for waiter, blockers in self._waits_for.items() if blockers}

    def find_deadlock(self) -> list[int] | None:
        """Return a cycle of transaction ids in the waits-for graph, if any."""
        graph = {t: set(edges) for t, edges in self._waits_for.items()}
        visited: set[int] = set()
        for start in graph:
            if start in visited:
                continue
            path: list[int] = []
            on_path: set[int] = set()

            def dfs(node: int) -> list[int] | None:
                visited.add(node)
                path.append(node)
                on_path.add(node)
                for succ in graph.get(node, ()):  # noqa: B023
                    if succ in on_path:
                        cycle = path[path.index(succ):]
                        return cycle
                    if succ not in visited:
                        found = dfs(succ)
                        if found is not None:
                            return found
                path.pop()
                on_path.discard(node)
                return None

            cycle = dfs(start)
            if cycle is not None:
                self.stats.add("lock.deadlocks")
                self.stats.trace_event("lock.deadlock",
                                       cycle=[int(t) for t in cycle])
                return cycle
        return None
