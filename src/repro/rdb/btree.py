"""Page-based B+tree with variable-length byte keys.

This is the index-manager infrastructure of Fig. 1.  Exactly as in the paper,
one mechanism backs relational indexes, the DocID index, the NodeID index and
the XPath value indexes: the only extension the XML services need is allowing
*zero, one or more* entries per data record (§3.3), which falls out naturally
because the tree stores arbitrary ``(key, value)`` pairs with duplicates.

Entries are totally ordered by the composite ``(key, value)``; internal-node
separators carry the full composite so duplicate keys that span node splits
still scan in order.  Nodes live on buffer-pool pages and are (de)serialized
on access, so page touches and physical I/O are accounted like every other
component.  Deletion is by simple removal without rebalancing (underfull
nodes persist until the index is rebuilt) — a common industrial
simplification; lookups and scans are unaffected.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Iterator

from repro.analyze import sanitize as _sanitize
from repro.errors import DuplicateKeyError, IndexError_
from repro.rdb import codec
from repro.rdb.buffer import BufferPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import ShardContext

_LEAF = 0
_INTERNAL = 1

Entry = tuple[bytes, bytes]


class _Leaf:
    __slots__ = ("entries", "next_leaf")

    def __init__(self, entries: list[Entry], next_leaf: int | None) -> None:
        self.entries = entries
        self.next_leaf = next_leaf

    def serialize(self, page_size: int) -> bytes:
        out = bytearray([_LEAF])
        codec.write_u32(out, 0 if self.next_leaf is None else self.next_leaf + 1)
        codec.write_uvarint(out, len(self.entries))
        for key, value in self.entries:
            codec.write_bytes(out, key)
            codec.write_bytes(out, value)
        if len(out) > page_size:
            raise IndexError_(f"leaf node overflows page ({len(out)} > {page_size})")
        return bytes(out) + bytes(page_size - len(out))

    def size(self) -> int:
        return 6 + sum(
            codec.uvarint_size(len(k)) + len(k) + codec.uvarint_size(len(v)) + len(v)
            for k, v in self.entries)


class _Internal:
    __slots__ = ("seps", "children")

    def __init__(self, seps: list[Entry], children: list[int]) -> None:
        self.seps = seps
        self.children = children

    def serialize(self, page_size: int) -> bytes:
        out = bytearray([_INTERNAL])
        codec.write_uvarint(out, len(self.seps))
        codec.write_u32(out, self.children[0])
        for (key, value), child in zip(self.seps, self.children[1:], strict=True):
            codec.write_bytes(out, key)
            codec.write_bytes(out, value)
            codec.write_u32(out, child)
        if len(out) > page_size:
            raise IndexError_(f"internal node overflows page ({len(out)} > {page_size})")
        return bytes(out) + bytes(page_size - len(out))

    def size(self) -> int:
        return 6 + sum(
            codec.uvarint_size(len(k)) + len(k) + codec.uvarint_size(len(v)) + len(v) + 4
            for k, v in self.seps)


def _deserialize(data: bytes | bytearray) -> _Leaf | _Internal:
    kind = data[0]
    if kind == _LEAF:
        raw_next, pos = codec.read_u32(data, 1)
        count, pos = codec.read_uvarint(data, pos)
        entries = []
        for _ in range(count):
            key, pos = codec.read_bytes(data, pos)
            value, pos = codec.read_bytes(data, pos)
            entries.append((key, value))
        return _Leaf(entries, None if raw_next == 0 else raw_next - 1)
    if kind == _INTERNAL:
        count, pos = codec.read_uvarint(data, 1)
        first_child, pos = codec.read_u32(data, pos)
        seps: list[Entry] = []
        children = [first_child]
        for _ in range(count):
            key, pos = codec.read_bytes(data, pos)
            value, pos = codec.read_bytes(data, pos)
            child, pos = codec.read_u32(data, pos)
            seps.append((key, value))
            children.append(child)
        return _Internal(seps, children)
    raise IndexError_(f"corrupt index node (kind byte {kind})")


class BTree:
    """B+tree index over ``(key: bytes, value: bytes)`` pairs.

    Duplicate keys are allowed; entries are ordered by ``(key, value)``.
    ``unique=True`` rejects duplicate keys at insert, which is how the DocID
    and NodeID indexes enforce their invariants.
    """

    #: Declared resource captures (SHARD003): an index manager lives on
    #: the buffer pool it was built over, and charges that pool's stats
    #: sink — both shard-scoped with the tree itself.
    _shard_scoped_ = ("pool", "stats")

    def __init__(self, pool: BufferPool, name: str = "ix", unique: bool = False,
                 order_bytes: int | None = None,
                 context: "ShardContext | None" = None) -> None:
        self.pool = pool
        self.name = name
        self.unique = unique
        self.context = context
        _sanitize.inherit_shard(self, pool)
        if context is not None:
            context.register_index(name, self)
        self.order_bytes = order_bytes or max(pool.page_size - 512, 512)
        if self.order_bytes > pool.page_size - 16:
            self.order_bytes = pool.page_size - 16
        self.stats = pool.stats
        self._page_count = 1
        self.entry_count = 0
        self.root_page = self._write_new(_Leaf([], None))

    # -- node I/O -----------------------------------------------------------

    def _read(self, page_id: int) -> _Leaf | _Internal:
        with self.pool.page(page_id) as data:
            return _deserialize(data)

    def _write(self, page_id: int, node: _Leaf | _Internal) -> None:
        image = node.serialize(self.pool.page_size)
        with self.pool.page(page_id, write=True) as data:
            data[:] = image

    def _write_new(self, node: _Leaf | _Internal) -> int:
        page_id, data = self.pool.new_page()
        try:
            data[:] = node.serialize(self.pool.page_size)
        finally:
            # Unpin even when serialize raises: a frame pinned by a failed
            # split can never be evicted and fails the next quiesce point.
            self.pool.unpin(page_id, dirty=True)
        return page_id

    # -- public API -----------------------------------------------------------

    @property
    def page_count(self) -> int:
        """Pages ever allocated to this index."""
        return self._page_count

    def insert(self, key: bytes, value: bytes) -> None:
        """Insert ``(key, value)``.

        Raises :class:`DuplicateKeyError` for a unique index when ``key`` is
        already present; duplicate ``(key, value)`` pairs are rejected always.
        """
        with self.stats.trace("btree.insert", index=self.name):
            self.stats.add("btree.inserts")
            result = self._insert(self.root_page, key, value)
            if result is not None:
                sep, right = result
                new_root = _Internal([sep], [self.root_page, right])
                self.root_page = self._write_new(new_root)
                self._page_count += 1
            self.entry_count += 1

    def _insert(self, page_id: int, key: bytes,
                value: bytes) -> tuple[Entry, int] | None:
        node = self._read(page_id)
        if isinstance(node, _Leaf):
            pos = bisect.bisect_left(node.entries, (key, value))
            if self.unique:
                if (pos < len(node.entries) and node.entries[pos][0] == key) or \
                        (pos > 0 and node.entries[pos - 1][0] == key):
                    raise DuplicateKeyError(
                        f"duplicate key in unique index {self.name!r}")
            elif pos < len(node.entries) and node.entries[pos] == (key, value):
                raise DuplicateKeyError(
                    f"duplicate entry in index {self.name!r}")
            node.entries.insert(pos, (key, value))
            if node.size() <= self.order_bytes:
                self._write(page_id, node)
                return None
            return self._split_leaf(page_id, node)
        child_index = bisect.bisect_right(node.seps, (key, value))
        result = self._insert(node.children[child_index], key, value)
        if result is None:
            return None
        sep, right = result
        node.seps.insert(child_index, sep)
        node.children.insert(child_index + 1, right)
        if node.size() <= self.order_bytes:
            self._write(page_id, node)
            return None
        return self._split_internal(page_id, node)

    def _split_leaf(self, page_id: int, node: _Leaf) -> tuple[Entry, int]:
        mid = len(node.entries) // 2
        right = _Leaf(node.entries[mid:], node.next_leaf)
        right_page = self._write_new(right)
        self._page_count += 1
        node.entries = node.entries[:mid]
        node.next_leaf = right_page
        self._write(page_id, node)
        return right.entries[0], right_page

    def _split_internal(self, page_id: int, node: _Internal) -> tuple[Entry, int]:
        mid = len(node.seps) // 2
        sep = node.seps[mid]
        right = _Internal(node.seps[mid + 1:], node.children[mid + 1:])
        right_page = self._write_new(right)
        self._page_count += 1
        node.seps = node.seps[:mid]
        node.children = node.children[:mid + 1]
        self._write(page_id, node)
        return sep, right_page

    def delete(self, key: bytes, value: bytes | None = None) -> bool:
        """Delete one entry.

        With ``value`` given, removes that exact pair; otherwise removes the
        first entry with ``key``.  Returns whether an entry was removed.
        """
        with self.stats.trace("btree.delete", index=self.name):
            self.stats.add("btree.deletes")
            page_id = self._leaf_for(key)
            while page_id is not None:
                node = self._read(page_id)
                assert isinstance(node, _Leaf)
                for pos, (k, v) in enumerate(node.entries):
                    if k > key:
                        return False
                    if k == key and (value is None or v == value):
                        del node.entries[pos]
                        self._write(page_id, node)
                        self.entry_count -= 1
                        return True
                page_id = node.next_leaf
            return False

    def search(self, key: bytes) -> list[bytes]:
        """All values stored under exactly ``key``."""
        with self.stats.trace("btree.search", index=self.name) as span:
            self.stats.add("btree.searches")
            before = self.stats.get("btree.entries_scanned")
            out = [v for k, v in self.scan(low=key, high=key,
                                           high_inclusive=True)]
            self.stats.observe("btree.search_entries",
                               self.stats.get("btree.entries_scanned") - before)
            if span is not None:
                span.set("hits", len(out))
            return out

    def search_one(self, key: bytes) -> bytes | None:
        """First value under ``key`` or None (for unique indexes)."""
        with self.stats.trace("btree.search", index=self.name):
            self.stats.add("btree.searches")
            before = self.stats.get("btree.entries_scanned")
            out = None
            for _, v in self.scan(low=key, high=key, high_inclusive=True):
                out = v
                break
            self.stats.observe("btree.search_entries",
                               self.stats.get("btree.entries_scanned") - before)
            return out

    def seek_ge(self, key: bytes) -> Entry | None:
        """Smallest entry with key ≥ ``key`` (the NodeID-index probe, §3.4)."""
        with self.stats.trace("btree.search", index=self.name):
            self.stats.add("btree.searches")
            before = self.stats.get("btree.entries_scanned")
            out = None
            for entry in self.scan(low=key):
                out = entry
                break
            self.stats.observe("btree.search_entries",
                               self.stats.get("btree.entries_scanned") - before)
            return out

    def scan(self, low: bytes | None = None, high: bytes | None = None,
             low_inclusive: bool = True,
             high_inclusive: bool = False) -> Iterator[Entry]:
        """Ordered range scan of ``(key, value)`` pairs."""
        page_id = self._leaf_for(low if low is not None else b"")
        while page_id is not None:
            node = self._read(page_id)
            assert isinstance(node, _Leaf)
            for key, value in node.entries:
                if low is not None:
                    if key < low or (not low_inclusive and key == low):
                        continue
                if high is not None:
                    if key > high or (not high_inclusive and key == high):
                        return
                self.stats.add("btree.entries_scanned")
                yield key, value
            page_id = node.next_leaf

    def scan_prefix(self, prefix: bytes) -> Iterator[Entry]:
        """All entries whose key starts with ``prefix``, in order."""
        for key, value in self.scan(low=prefix):
            if not key.startswith(prefix):
                return
            yield key, value

    def height(self) -> int:
        """Levels from root to leaf (1 for a single-leaf tree)."""
        levels = 1
        node = self._read(self.root_page)
        while isinstance(node, _Internal):
            levels += 1
            node = self._read(node.children[0])
        return levels

    def _leaf_for(self, key: bytes) -> int:
        page_id = self.root_page
        node = self._read(page_id)
        while isinstance(node, _Internal):
            page_id = node.children[bisect.bisect_left(node.seps, (key, b""))]
            node = self._read(page_id)
        return page_id

    def __len__(self) -> int:
        return self.entry_count
