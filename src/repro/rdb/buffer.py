"""Buffer pool: LRU page cache between the engine and the simulated disk.

Components never touch :class:`~repro.rdb.storage.Disk` directly; they fetch
pages through the pool so experiments can separate logical page touches
(``buffer.hits`` + ``buffer.misses``) from physical I/O (``disk.page_*``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator

from repro.analyze import sanitize as _sanitize
from repro.core.stats import StatsRegistry
from repro.errors import BufferPoolError
from repro.rdb.storage import Disk


class _Frame:
    __slots__ = ("data", "pin_count", "dirty", "loaded_tick")

    def __init__(self, data: bytearray, loaded_tick: int = 0) -> None:
        self.data = data
        self.pin_count = 0
        self.dirty = False
        #: Pool access-clock reading when this frame was (re)loaded, so
        #: eviction can report how long the page stayed resident.
        self.loaded_tick = loaded_tick


class BufferPool:
    """Fixed-capacity LRU cache of disk pages with pin/unpin protocol."""

    #: Declared resource capture (SHARD003): the pool charges the stats
    #: sink of the device it caches — shard-scoped with the pool.
    _shard_scoped_ = ("stats",)

    def __init__(self, disk: Disk, capacity: int = 256) -> None:
        if capacity < 1:
            raise BufferPoolError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self.stats: StatsRegistry = disk.stats
        self._frames: OrderedDict[int, _Frame] = OrderedDict()
        self._clock = 0  # pool accesses; drives eviction-residency ages
        #: Per-thread pin ledger (page_id -> count).  Pins are always
        #: released on the thread that took them (``page()`` is a context
        #: manager), so the ledger lets quiesce checks scope to the calling
        #: thread — a latch-free monitor snapshot pinning a page from
        #: another thread is not *this* transaction's leak.
        self._local = threading.local()
        if _sanitize.enabled():
            _sanitize.register_pool(self)

    @property
    def page_size(self) -> int:
        return self.disk.page_size

    def new_page(self) -> tuple[int, bytearray]:
        """Allocate a disk page and return it pinned (and dirty).

        Room is made *before* the disk allocation: if every frame is pinned
        the failure must not leak a freshly allocated (and never freed)
        disk page.
        """
        self._make_room()
        page_id = self.disk.allocate_page()
        self._clock += 1
        frame = _Frame(bytearray(self.page_size), loaded_tick=self._clock)
        frame.pin_count = 1
        frame.dirty = True
        self._frames[page_id] = frame
        self._note_pin(page_id)
        return page_id, frame.data

    def fetch(self, page_id: int) -> bytearray:
        """Pin page ``page_id`` and return its (mutable) frame bytes."""
        self._clock += 1
        frame = self._frames.get(page_id)
        if frame is not None:
            self.stats.add("buffer.hits")
            self._frames.move_to_end(page_id)
        else:
            self.stats.add("buffer.misses")
            self._make_room()
            # The miss path's device read is the synchronous database I/O
            # suspension (DB2 class-3 "sync DB I/O").
            with self.stats.wait_timer("buffer.read_io"):
                data = bytearray(self.disk.read_page(page_id))
            frame = _Frame(data, loaded_tick=self._clock)
            self._frames[page_id] = frame
        frame.pin_count += 1
        self._note_pin(page_id)
        return frame.data

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin on ``page_id``; ``dirty`` marks it modified."""
        frame = self._frames.get(page_id)
        if frame is None or frame.pin_count == 0:
            if _sanitize.enabled():
                self.stats.add("sanitize.double_unpin")
            raise BufferPoolError(f"page {page_id} is not pinned")
        frame.pin_count -= 1
        frame.dirty = frame.dirty or dirty
        self._note_unpin(page_id)

    @contextmanager
    def page(self, page_id: int, write: bool = False) -> Iterator[bytearray]:
        """Context manager pairing :meth:`fetch` with :meth:`unpin`."""
        data = self.fetch(page_id)
        try:
            yield data
        finally:
            self.unpin(page_id, dirty=write)

    def flush_page(self, page_id: int) -> None:
        """Write ``page_id`` back to disk if it is resident and dirty.

        The frame is marked clean only after the write returns, so an
        injected write failure leaves the page dirty and a later flush
        retries it.
        """
        frame = self._frames.get(page_id)
        if frame is not None and frame.dirty:
            # Checkpoint flushes, lazy-writer trickles and eviction
            # writeback all suspend here (DB2 class-3 "write I/O").
            with self.stats.wait_timer("buffer.write_io"):
                self.disk.write_page(page_id, bytes(frame.data))
            frame.dirty = False
            self.stats.add("buffer.flushes")

    def flush_all(self) -> None:
        """Write every dirty resident page back to disk."""
        with self.stats.trace("buffer.flush_all") as span:
            flushed = 0
            for page_id in list(self._frames):
                frame = self._frames.get(page_id)
                dirty = frame is not None and frame.dirty
                self.flush_page(page_id)
                flushed += dirty
            if span is not None:
                span.set("flushed", flushed)

    def dirty_count(self) -> int:
        """Number of resident frames holding unflushed modifications."""
        return sum(1 for frame in self._frames.values() if frame.dirty)

    def dirty_page_ages(self) -> list[tuple[int, int]]:
        """``(residency age, page_id)`` of dirty unpinned frames, oldest
        first.

        Age is pool accesses since the frame was loaded — the same
        quantity the ``buffer.eviction_residency`` histogram observes at
        eviction time, which is how the background lazy writer picks
        victims: a dirty page whose age has reached the histogram median
        is one eviction would soon write back *synchronously* anyway.
        """
        ages = [(self._clock - frame.loaded_tick, page_id)
                for page_id, frame in self._frames.items()
                if frame.dirty and frame.pin_count == 0]
        ages.sort(reverse=True)
        return ages

    def pinned_pages(self) -> list[int]:
        """Page ids of frames currently pinned (sanitizer/quiesce probe)."""
        return [page_id for page_id, frame in self._frames.items()
                if frame.pin_count]

    def pinned_by_caller(self) -> list[int]:
        """Page ids the *calling thread* currently holds pins on.

        The transaction-end quiesce check uses this instead of
        :meth:`pinned_pages`: a transaction runs on one thread, so only
        that thread's leftover pins indict it.  Concurrent pins from other
        threads (a DISPLAY-style monitor snapshot walking an index
        latch-free) are transient and legitimately visible at a foreign
        transaction's end.
        """
        return sorted(self._caller_pins())

    def _caller_pins(self) -> dict[int, int]:
        pins = getattr(self._local, "pins", None)
        if pins is None:
            pins = {}
            self._local.pins = pins
        return pins

    def _note_pin(self, page_id: int) -> None:
        pins = self._caller_pins()
        pins[page_id] = pins.get(page_id, 0) + 1

    def _note_unpin(self, page_id: int) -> None:
        pins = self._caller_pins()
        count = pins.get(page_id, 0)
        if count <= 1:
            pins.pop(page_id, None)
        else:
            pins[page_id] = count - 1

    def assert_unpinned(self) -> None:
        """Raise :class:`BufferPoolError` if any frame is still pinned.

        Checkpoints and crash-harness restarts call this first: a pinned
        frame means some component is mid-operation and the pool contents
        are not a consistent image to flush.
        """
        pinned = self.pinned_pages()
        if pinned:
            raise BufferPoolError(
                f"pages still pinned at quiesce point: {pinned[:8]}")

    def evict_all(self) -> None:
        """Flush then drop every unpinned frame (simulates pool restart)."""
        self.flush_all()
        for page_id in list(self._frames):
            if self._frames[page_id].pin_count == 0:
                del self._frames[page_id]

    def resident(self, page_id: int) -> bool:
        """Whether ``page_id`` currently occupies a frame."""
        return page_id in self._frames

    def resident_count(self) -> int:
        """Number of frames currently holding a page (the LRU depth)."""
        return len(self._frames)

    def _make_room(self) -> None:
        if len(self._frames) < self.capacity:
            return
        for page_id, frame in self._frames.items():
            if frame.pin_count == 0:
                # Writeback goes through flush_page so eviction I/O counts
                # into ``buffer.flushes`` and shares the clean-only-after-
                # write guarantee (an injected write failure leaves the
                # frame dirty *and resident* for a later retry).
                was_dirty = frame.dirty
                self.flush_page(page_id)
                self.stats.add("buffer.evictions")
                # Residency: pool accesses that elapsed while the victim
                # was resident — small values mean the pool is thrashing.
                self.stats.observe("buffer.eviction_residency",
                                   self._clock - frame.loaded_tick)
                self.stats.trace_event("buffer.evict", page=page_id,
                                       dirty=was_dirty)
                del self._frames[page_id]
                return
        raise BufferPoolError("all buffer frames are pinned")
