"""On-disk cache for parsed :class:`~repro.analyze.framework.Program`.

Parsing every module, indexing parent links, resolving the call graph and
running the effect fixpoint dominates analyzer latency, and none of it
changes unless a source file (or the analyzer itself) changes.  The cache
pickles the fully built :class:`Program` — modules, call graph *and*
effect summaries — keyed by a digest over:

* every analyzer source file (``repro/analyze/*.py``): an analyzer change
  changes the semantics of a cached result, so it must miss;
* every analyzed file's path and content hash: any edit, addition or
  removal misses.

The cache is strictly an optimization: corrupt or unreadable entries are
discarded and the program is rebuilt; failures to *write* are ignored
(read-only checkouts still analyze).  Cache files live under
``.repro_analyze_cache/`` next to the analysis root and are disposable.
"""

from __future__ import annotations

import hashlib
import pickle
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.analyze.framework import Program, SourceModule, iter_python_files

#: Cache directory created under the analysis root (gitignored).
CACHE_DIR_NAME = ".repro_analyze_cache"

#: Deep ASTs plus parent back-links exceed the default recursion limit
#: while pickling; raised temporarily around dump/load.
_PICKLE_RECURSION_LIMIT = 100_000


@dataclass(frozen=True)
class CacheInfo:
    """What the cache did for one run (reported in ``--format json``)."""

    enabled: bool
    hit: bool
    key: str
    path: str

    def as_dict(self) -> dict[str, object]:
        return {"enabled": self.enabled, "hit": self.hit,
                "key": self.key, "path": self.path}


def _analyzer_sources() -> list[Path]:
    return sorted(Path(__file__).resolve().parent.glob("*.py"))


def compute_key(files: Iterable[Path]) -> str:
    """Digest over analyzer sources and analyzed file contents."""
    digest = hashlib.sha256()
    for source in _analyzer_sources():
        digest.update(source.name.encode())
        digest.update(hashlib.sha256(source.read_bytes()).digest())
    digest.update(b"--analyzed--")
    for path in files:
        digest.update(str(path).encode())
        try:
            content = path.read_bytes()
        except OSError:
            content = b"<unreadable>"
        digest.update(hashlib.sha256(content).digest())
    return digest.hexdigest()[:32]


def _pickle_guard(operation: Callable[..., Any], *args: Any) -> Any:
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, _PICKLE_RECURSION_LIMIT))
    try:
        return operation(*args)
    finally:
        sys.setrecursionlimit(limit)


def cached_program(paths: Iterable[Path], root: Path | None = None,
                   enabled: bool = True
                   ) -> tuple[Program, list[str], CacheInfo]:
    """The Program for ``paths``, from cache when possible.

    Returns ``(program, parse_errors, info)``; ``parse_errors`` are the
    rendered ``"path: error"`` strings for files that failed to parse
    (replayed from the cache on a hit, so output is identical either way).
    """
    root = root if root is not None else Path.cwd()
    files = list(iter_python_files(paths))
    key = compute_key(files)
    cache_path = root / CACHE_DIR_NAME / f"program-{key}.pickle"
    info = CacheInfo(enabled=enabled, hit=False, key=key,
                     path=str(cache_path))
    if enabled and cache_path.exists():
        try:
            payload = _pickle_guard(pickle.loads, cache_path.read_bytes())
            cached: Program = payload["program"]
            cached_errors = [str(text) for text in payload["parse_errors"]]
        except Exception:  # corrupt/stale cache: fall through and rebuild
            pass
        else:
            return cached, cached_errors, CacheInfo(
                enabled=True, hit=True, key=key, path=str(cache_path))
    program = Program()
    parse_errors: list[str] = []
    for path in files:
        try:
            module = SourceModule(path, root)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            parse_errors.append(f"{path}: {exc}")
            continue
        program.add(module)
    # Build the expensive whole-program structures *before* caching so a
    # hit skips the call-graph resolution and the effect fixpoint too.
    program.callgraph()
    program.effects()
    if enabled:
        try:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            payload_bytes = _pickle_guard(
                pickle.dumps,
                {"program": program, "parse_errors": parse_errors})
            tmp = cache_path.with_suffix(".tmp")
            tmp.write_bytes(payload_bytes)
            tmp.replace(cache_path)
        except Exception:  # caching is best-effort; analysis succeeded
            pass
    return program, parse_errors, info
