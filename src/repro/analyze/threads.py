"""Thread-entry reachability and shared-field/latch inference.

The serving layer (PRs 6–7) made the engine multi-threaded the way DB2
for z/OS is: a worker pool, a background checkpointer, leader/follower
group commit, and striped latches.  This module gives the static analyzer
the thread model those PRs only documented in prose:

1. **Thread roots** — functions that start executing on their own thread.
   Spawn sites (``threading.Thread(target=self._worker_loop)``) are
   detected syntactically; entry points reached through *dynamic dispatch*
   (``db.group_commit.commit`` from every committing worker,
   ``txns.checkpoint_async`` posting to the checkpointer) are declared in
   :data:`KNOWN_ROOTS` — the same philosophy as the call graph: every edge
   either proven from the AST or explicitly documented.

2. **Contexts** — for every function, the set of roots that reach it over
   the call graph.  A function no root reaches runs only on the main
   (test/harness) thread.  Because arbitrary-receiver calls are unresolved
   (the documented call-graph blind spot), contexts are *under*-approximate
   — which is the useful direction for a race checker: a field is reported
   shared only on proven evidence, and the runtime lockset sanitizer
   (:mod:`repro.analyze.sanitize`) covers the dynamic remainder.

3. **Shared fields** — ``self.<field>`` accesses collected per class; a
   field is *thread-shared* when it is written outside ``__init__`` and
   its accesses span two contexts (or one root that spawns *many*
   threads).  Fields used purely as synchronization objects (only
   ``set``/``wait``/``is_set``/``clear`` style calls — Events, Conditions)
   are exempt: they are the safe cross-thread signalling primitives.

4. **Latch inference** — the guard of a shared field is the intersection
   of lock-ish ``with`` guards over its guarded accesses, where each
   access's lockset is the syntactic ``with`` nest *plus* the function's
   **entry lockset**: the intersection, over all resolved call sites, of
   the locks provably held at the call — so a helper only ever invoked
   under ``with self.db.latch:`` counts as latched without repeating the
   ``with`` in its own body.

The checkers in :mod:`repro.analyze.races` turn these views into RACE001
(access outside the inferred guard), RACE002 (check-then-act across guard
regions) and LATCH001 (blocking call while a latch is held).
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Iterator

from repro.analyze.callgraph import CallGraph, CallSite, FunctionInfo
from repro.analyze.framework import Program, SourceModule, call_name

#: Concurrent entry points the AST cannot prove (dynamic dispatch):
#: qualname -> (why it runs concurrently, whether many threads enter it).
#: The table is part of the thread model — reviewed like code, mirrored in
#: DESIGN.md's thread-safety table.
KNOWN_ROOTS: dict[str, tuple[str, bool]] = {
    "DatabaseServer.submit":
        ("client threads admit requests concurrently", True),
    "DatabaseServer.session":
        ("client threads open sessions concurrently", True),
    "DatabaseServer._release_session":
        ("Session.close runs on the closing client's thread", True),
    "GroupCommitter.commit":
        ("every committing worker enters via Database.group_commit", True),
    "Checkpointer.request_checkpoint":
        ("committing threads post checkpoint requests via "
         "TransactionManager.checkpoint_async", True),
    "StatsRegistry.add":
        ("every thread reports counters", True),
    "StatsRegistry.observe":
        ("every thread reports distributions", True),
}

#: Method names that mutate their receiver in place: a call
#: ``self.field.append(...)`` is a *write* to ``field``'s object.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
    "put", "put_nowait",
})

#: Method names of synchronization protocols (Event/Condition/Lock).  A
#: field used *only* through these (plus ``clear``) is a sync object, not
#: shared data — cross-thread use is its purpose.
_SYNC_METHODS = frozenset({
    "set", "is_set", "wait", "notify", "notify_all",
    "acquire", "release", "locked",
})

#: Methods whose unguarded *reads* are never reported: debug formatting
#: helpers, exempt by convention (a torn read in a repr is harmless).
_READ_EXEMPT_METHODS = frozenset({"__repr__", "__str__"})


def _is_safe_delegate(field: str) -> bool:
    """Fields holding internally-synchronized components.

    A mutator call on ``self.stats`` or ``self.queue`` mutates the
    *registry/queue object*, which carries its own striped latches
    (StatsRegistry) or lock (queue.Queue) — the stats-hygiene checker and
    the component's own tests cover those.  Only *rebinding* such a field
    counts as a write.
    """
    name = field.lower().lstrip("_")
    return name == "stats" or name.endswith("stats") or \
        name == "queue" or name.endswith("queue") or \
        name.endswith("registry")


#: Context name for code no thread root reaches.
MAIN_CONTEXT = "<main>"


def _dotted(node: ast.expr) -> str | None:
    """Dotted text of a Name/Attribute chain (None when not a chain)."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def guard_token(expr: ast.expr) -> str | None:
    """Normalized latch token of a ``with`` context expression, if lock-ish.

    ``with self._state_lock:`` -> ``_state_lock``; ``with self.db.latch:``
    -> ``db.latch``; ``with self._lock_for(name):`` -> ``_lock_for()``.
    Context managers whose last segment does not smell like a lock
    (``stats.trace(...)``, ``open(...)``) yield ``None`` — they scope
    resources, not mutual exclusion.
    """
    suffix = ""
    target = expr
    if isinstance(expr, ast.Call):
        target = expr.func
        suffix = "()"
    token = _dotted(target)
    if token is None:
        return None
    if token.startswith("self."):
        token = token[len("self."):]
    tail = token.rsplit(".", 1)[-1].lower()
    # "clock" contains "lock" but scopes time, not mutual exclusion —
    # ``with stats.request_clock():`` must not read as a latch region.
    if "clock" in tail:
        return None
    if "lock" in tail or "latch" in tail or "mutex" in tail:
        return token + suffix
    return None


def token_tail(token: str) -> str:
    """Last dotted segment of a latch token (for static/runtime matching)."""
    return token.rstrip("()").rsplit(".", 1)[-1]


class ThreadRoot:
    """One concurrent entry point: a function some thread starts in."""

    def __init__(self, info: FunctionInfo, reason: str, many: bool,
                 spawn_path: str | None = None, spawn_line: int = 0,
                 spawner: str | None = None) -> None:
        self.info = info
        self.name = info.qualname
        self.reason = reason
        #: more than one thread may execute this root concurrently
        self.many = many
        #: spawn site, when detected syntactically (None for KNOWN_ROOTS)
        self.spawn_path = spawn_path
        self.spawn_line = spawn_line
        self.spawner = spawner

    def provenance(self) -> str:
        """One display line saying why this is a concurrent root."""
        if self.spawn_path is not None:
            plural = "threads" if self.many else "a thread"
            return (f"{self.spawn_path}:{self.spawn_line}: {self.spawner} "
                    f"spawns {plural} running {self.name}")
        return (f"{self.info.path}:{self.info.line}: {self.name} is a "
                f"declared concurrent entry point ({self.reason})")


class FieldAccess:
    """One ``self.<field>`` access inside a method."""

    __slots__ = ("info", "node", "field", "kind", "line", "method_call")

    def __init__(self, info: FunctionInfo, node: ast.Attribute, field: str,
                 kind: str, method_call: str | None = None) -> None:
        self.info = info
        self.node = node
        self.field = field
        self.kind = kind  # "read" | "write" | "sync"
        self.line = node.lineno
        #: name of the method called on the field, when the access is a
        #: ``self.field.m(...)`` call (used for the sync-object exemption)
        self.method_call = method_call

    @property
    def is_write(self) -> bool:
        return self.kind == "write"


class SharedField:
    """Aggregated view of one class field across the program."""

    def __init__(self, cls: str, field: str) -> None:
        self.cls = cls
        self.field = field
        self.accesses: list[FieldAccess] = []
        #: union of contexts over all (non-init) accesses
        self.contexts: set[str] = set()
        self.write_contexts: set[str] = set()

    @property
    def key(self) -> tuple[str, str]:
        return (self.cls, self.field)

    def is_sync_object(self) -> bool:
        """Only ever used through synchronization-protocol calls."""
        saw_sync = False
        for access in self.accesses:
            if access.kind == "sync":
                saw_sync = True
                continue
            if access.method_call is not None and \
                    access.method_call == "clear":
                # Event.clear — allowed alongside sync methods; a dict's
                # .clear never appears alone (subscript stores disqualify).
                continue
            return False
        return saw_sync


class ThreadAnalysis:
    """Thread roots, per-function contexts, shared fields and locksets."""

    def __init__(self, program: Program) -> None:
        self.graph: CallGraph = program.callgraph()
        self._method_names = self._collect_method_names()
        self.roots: dict[str, ThreadRoot] = {}
        self._find_spawned_roots(program.modules)
        self._find_known_roots()
        #: fid -> set of root names reaching it
        self._contexts: dict[str, set[str]] = {}
        #: (root name, fid) -> parent call site on the BFS tree
        self._reach_parent: dict[tuple[str, str], CallSite] = {}
        for root in self.roots.values():
            self._mark_reachable(root)
        self.fields: dict[tuple[str, str], SharedField] = {}
        self._collect_field_accesses()
        self._entry_locks = self._compute_entry_locks()

    # -- thread roots ------------------------------------------------------

    def _collect_method_names(self) -> dict[str, set[str]]:
        names: dict[str, set[str]] = {}
        for info in self.graph.iter_functions():
            if info.cls is not None:
                names.setdefault(info.cls, set()).add(info.name)
        return names

    def _find_spawned_roots(self, modules: list[SourceModule]) -> None:
        for module in modules:
            for call in module.calls():
                if call_name(call) != "Thread":
                    continue
                target = self._thread_target(call)
                if target is None:
                    continue
                info = self._resolve_target(module, call, target)
                if info is None:
                    continue
                spawner_node = module.enclosing_function(call)
                spawner = module.scope_of(call) or "<module>"
                many = self._spawned_in_loop(module, call, spawner_node)
                plural = "spawned per client/worker" if many \
                    else "spawned as a singleton background thread"
                self.roots.setdefault(info.qualname, ThreadRoot(
                    info, plural, many,
                    spawn_path=module.relpath, spawn_line=call.lineno,
                    spawner=spawner))

    @staticmethod
    def _thread_target(call: ast.Call) -> ast.expr | None:
        for keyword in call.keywords:
            if keyword.arg == "target":
                return keyword.value
        return None

    def _resolve_target(self, module: SourceModule, call: ast.Call,
                        target: ast.expr) -> FunctionInfo | None:
        if isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id in ("self", "cls"):
            cls = self._enclosing_class_name(module, call)
            if cls is None:
                return None
            for info in self.graph.iter_functions():
                if info.cls == cls and info.name == target.attr:
                    return info
            return None
        if isinstance(target, ast.Name):
            for info in self.graph.iter_functions():
                if info.cls is None and info.name == target.id and \
                        info.module is module:
                    return info
        return None

    @staticmethod
    def _enclosing_class_name(module: SourceModule,
                              node: ast.AST) -> str | None:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor.name
        return None

    @staticmethod
    def _spawned_in_loop(module: SourceModule, call: ast.Call,
                         stop: ast.AST | None) -> bool:
        for ancestor in module.ancestors(call):
            if ancestor is stop:
                return False
            if isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While,
                                     ast.ListComp, ast.SetComp,
                                     ast.GeneratorExp, ast.DictComp)):
                return True
        return False

    def _find_known_roots(self) -> None:
        for qualname, (reason, many) in KNOWN_ROOTS.items():
            for info in self.graph.by_qualname(qualname):
                self.roots.setdefault(qualname, ThreadRoot(
                    info, reason, many))

    # -- reachability ------------------------------------------------------

    def _mark_reachable(self, root: ThreadRoot) -> None:
        start = root.info.fid
        queue = deque([start])
        seen = {start}
        self._contexts.setdefault(start, set()).add(root.name)
        while queue:
            fid = queue.popleft()
            for site in self.graph.callees_of.get(fid, ()):
                callee = site.callee.fid
                if callee in seen:
                    continue
                seen.add(callee)
                self._contexts.setdefault(callee, set()).add(root.name)
                self._reach_parent[(root.name, callee)] = site
                queue.append(callee)

    def contexts_of(self, fid: str) -> frozenset[str]:
        """Root names reaching ``fid`` (``{MAIN_CONTEXT}`` when none)."""
        contexts = self._contexts.get(fid)
        if not contexts:
            return frozenset((MAIN_CONTEXT,))
        return frozenset(contexts)

    def reach_path(self, root_name: str, fid: str) -> list[str]:
        """Display lines: the BFS call chain from ``root_name`` to ``fid``.

        Starts with the root's provenance line; empty when the root does
        not reach ``fid``.
        """
        root = self.roots.get(root_name)
        if root is None:
            return []
        if fid != root.info.fid and (root_name, fid) not in self._reach_parent:
            return []
        steps: list[str] = []
        current = fid
        while current != root.info.fid:
            site = self._reach_parent[(root_name, current)]
            steps.append(f"{site.caller.path}:{site.line}: "
                         f"{site.caller.qualname} calls {site.text}()")
            current = site.caller.fid
        steps.append(root.provenance())
        return list(reversed(steps))

    # -- field accesses ----------------------------------------------------

    def _collect_field_accesses(self) -> None:
        for info in self.graph.iter_functions():
            if info.cls is None or info.name == "__init__":
                continue
            for access in self._accesses_in(info):
                record = self.fields.setdefault(
                    (info.cls, access.field),
                    SharedField(info.cls, access.field))
                record.accesses.append(access)
        for record in self.fields.values():
            for access in record.accesses:
                contexts = self.contexts_of(access.info.fid)
                record.contexts.update(contexts)
                if access.is_write:
                    record.write_contexts.update(contexts)

    def _accesses_in(self, info: FunctionInfo) -> Iterator[FieldAccess]:
        methods = self._method_names.get(info.cls or "", set())
        module = info.module
        for node in ast.walk(info.node):
            if module.enclosing_function(node) is not info.node:
                continue
            if not isinstance(node, ast.Attribute):
                continue
            if not (isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                continue
            field = node.attr
            if field in methods:
                continue  # bound-method reference / self.m(...) call
            yield self._classify(info, node, field, module)

    @staticmethod
    def _classify(info: FunctionInfo, node: ast.Attribute, field: str,
                  module: SourceModule) -> FieldAccess:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            return FieldAccess(info, node, field, "write")
        parent = module.parent(node)
        if isinstance(parent, ast.withitem):
            return FieldAccess(info, node, field, "sync")
        if isinstance(parent, ast.Attribute):
            grand = module.parent(parent)
            if isinstance(grand, ast.Call) and grand.func is parent:
                called = parent.attr
                if called in _SYNC_METHODS:
                    return FieldAccess(info, node, field, "sync",
                                       method_call=called)
                if called in _MUTATOR_METHODS and \
                        not _is_safe_delegate(field):
                    return FieldAccess(info, node, field, "write",
                                       method_call=called)
                return FieldAccess(info, node, field, "read",
                                   method_call=called)
        if isinstance(parent, ast.Subscript) and parent.value is node and \
                isinstance(parent.ctx, (ast.Store, ast.Del)):
            return FieldAccess(info, node, field, "write")
        return FieldAccess(info, node, field, "read")

    def shared_fields(self) -> list[SharedField]:
        """Fields provably shared across threads (see module docstring)."""
        shared: list[SharedField] = []
        for record in sorted(self.fields.values(), key=lambda r: r.key):
            if not record.write_contexts:
                continue  # never written outside __init__
            if record.is_sync_object():
                continue
            many = any(self.roots[name].many for name in record.contexts
                       if name in self.roots)
            if len(record.contexts) >= 2 or many:
                shared.append(record)
        return shared

    # -- locksets ----------------------------------------------------------

    def syntactic_guards(self, module: SourceModule, node: ast.AST
                         ) -> list[tuple[str, int]]:
        """(token, region id) per enclosing lock-ish ``with``, inner-first.

        The region id (the ``With`` node's line) distinguishes two
        acquisitions of the *same* latch — what RACE002 needs to see a
        guard released between a check and its dependent act.
        """
        guards: list[tuple[str, int]] = []
        previous: ast.AST = node
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.With) and \
                    not isinstance(previous, ast.withitem):
                for item in ancestor.items:
                    token = guard_token(item.context_expr)
                    if token is not None:
                        guards.append((token, ancestor.lineno))
            previous = ancestor
        return guards

    def _compute_entry_locks(self) -> dict[str, frozenset[str]]:
        """Locks provably held on *every* resolved path into each function.

        Descending intersection fixpoint: roots and functions without
        resolved callers start at the empty set; everything else meets
        (intersects) ``caller's entry locks | with-guards at the site``
        over its call sites.  Under-approximate — an unresolved (dynamic)
        call site contributes nothing — but that only *widens* RACE001,
        never silences it, matching the analyzer's conservative direction.
        """
        locks: dict[str, frozenset[str] | None] = {}
        root_fids = {root.info.fid for root in self.roots.values()}
        for info in self.graph.iter_functions():
            has_callers = bool(self.graph.callers_of.get(info.fid))
            if info.fid in root_fids or not has_callers:
                locks[info.fid] = frozenset()
            else:
                locks[info.fid] = None  # top: not yet constrained
        changed = True
        while changed:
            changed = False
            for caller_fid, sites in self.graph.callees_of.items():
                base = locks.get(caller_fid)
                if base is None:
                    continue
                for site in sites:
                    held = base | {token for token, _ in
                                   self.syntactic_guards(
                                       site.caller.module, site.call)}
                    current = locks.get(site.callee.fid)
                    merged = frozenset(held) if current is None \
                        else current & held
                    if merged != current:
                        locks[site.callee.fid] = merged
                        changed = True
        return {fid: (held if held is not None else frozenset())
                for fid, held in locks.items()}

    def entry_locks(self, fid: str) -> frozenset[str]:
        return self._entry_locks.get(fid, frozenset())

    def access_lockset(self, access: FieldAccess) -> frozenset[str]:
        """Latch tokens provably held at one field access."""
        tokens = {token for token, _ in self.syntactic_guards(
            access.info.module, access.node)}
        return frozenset(tokens) | self.entry_locks(access.info.fid)

    def inferred_guards(self) -> dict[tuple[str, str], frozenset[str]]:
        """Per shared field: latch tokens held at *every* guarded access.

        Empty set = no single latch dominates the field's accesses (either
        nothing guards it, or different sites use different latches).  The
        runtime sanitizer's :func:`repro.analyze.sanitize.
        cross_check_field_guards` compares witnessed locksets against this
        map.
        """
        guards: dict[tuple[str, str], frozenset[str]] = {}
        for record in self.shared_fields():
            inferred: frozenset[str] | None = None
            for access in record.accesses:
                if access.kind == "sync":
                    continue
                lockset = self.access_lockset(access)
                if not lockset:
                    continue
                inferred = lockset if inferred is None \
                    else inferred & lockset
            guards[record.key] = inferred or frozenset()
        return guards
