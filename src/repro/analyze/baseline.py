"""Suppression baseline: documented, reviewed exceptions to the checkers.

A finding the team has looked at and decided to keep is *baselined*: its
line-independent fingerprint goes into a checked-in text file together with
a mandatory reason.  CI fails on any finding not in the baseline, so new
violations cannot ride in silently, while the baseline file itself is the
documentation trail for every intentional exception.

File format — one entry per line::

    PIN001  repro/rdb/buffer.py:BufferPool.new_page:self.pool.new_page  # handed off: caller unpins

i.e. ``CODE<whitespace>fingerprint-without-code  # reason``.  Blank lines
and ``#`` comment lines are ignored.  Entries *must* carry a reason: an
undocumented entry is itself an error (the baseline is documentation, not a
mute button).  Race findings (``RACE*``/``LATCH*``) are held to a stricter
form — their comment must start with ``reason:`` — because a baselined race
is a claim about *runtime behaviour* ("only one thread ever writes this",
"every caller holds the engine latch") that review has to be able to find
and challenge; a bare remark does not qualify.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.analyze.findings import Finding


class BaselineError(ValueError):
    """Malformed or undocumented baseline entry."""


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    reason: str
    lineno: int = 0


class Baseline:
    """Set of documented suppressions loaded from a baseline file."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: dict[str, BaselineEntry] = {
            entry.fingerprint: entry for entry in entries}
        self._matched: set[str] = set()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        entries: list[BaselineEntry] = []
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            body, sep, reason = line.partition("#")
            reason = reason.strip()
            if not sep or not reason:
                raise BaselineError(
                    f"{path}:{lineno}: baseline entry has no reason — every "
                    f"suppression must document why it is intentional")
            # Split on the first whitespace run only: fingerprints may
            # themselves contain spaces (e.g. WAL002's 'except Exception:').
            parts = body.split(None, 1)
            if len(parts) != 2:
                raise BaselineError(
                    f"{path}:{lineno}: expected 'CODE fingerprint  # reason'")
            code, rest = parts[0], parts[1].strip()
            if code.startswith(("RACE", "LATCH", "SHARD")) and \
                    not reason.lower().startswith("reason:"):
                raise BaselineError(
                    f"{path}:{lineno}: baselined {code} entries must carry "
                    f"a '# reason: ...' comment stating the runtime claim "
                    f"that makes the race (or cross-shard reach) "
                    f"intentional")
            entries.append(BaselineEntry(f"{code}:{rest}", reason, lineno))
        return cls(entries)

    def suppresses(self, finding: Finding) -> bool:
        entry = self.entries.get(finding.fingerprint)
        if entry is not None:
            self._matched.add(finding.fingerprint)
            return True
        return False

    def split(self, findings: Iterable[Finding]
              ) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, baselined) findings."""
        new: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in findings:
            (suppressed if self.suppresses(finding) else new).append(finding)
        return new, suppressed

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries that matched nothing: the violation was fixed, so the
        suppression should be deleted (reported, not fatal)."""
        return [entry for fingerprint, entry in sorted(self.entries.items())
                if fingerprint not in self._matched]


def prune_stale(path: Path, stale_fingerprints: set[str]) -> int:
    """Rewrite the baseline at ``path`` without the stale entries.

    Comment and blank lines survive untouched; only entry lines whose
    fingerprint is in ``stale_fingerprints`` are dropped.  Returns the
    number of lines removed.
    """
    kept: list[str] = []
    dropped = 0
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            body = line.partition("#")[0].split(None, 1)
            if len(body) == 2 and f"{body[0]}:{body[1].strip()}" in \
                    stale_fingerprints:
                dropped += 1
                continue
        kept.append(raw)
    path.write_text("\n".join(kept) + "\n")
    return dropped


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as a baseline skeleton; reasons must be filled in."""
    lines = [
        "# repro.analyze suppression baseline.",
        "# Every entry must end with '# <reason>' documenting why the",
        "# finding is intentional; undocumented entries fail the load.",
        "",
    ]
    count = 0
    seen: set[str] = set()
    for finding in sorted(findings, key=lambda f: f.fingerprint):
        if finding.fingerprint in seen:
            continue  # fingerprints are the identity; lines are not
        seen.add(finding.fingerprint)
        fingerprint_rest = finding.fingerprint[len(finding.code) + 1:]
        lines.append(f"{finding.code}  {fingerprint_rest}"
                     f"  # TODO: document why this is intentional")
        count += 1
    path.write_text("\n".join(lines) + "\n")
    return count
