"""Race and latch-discipline checkers over the thread model.

Three codes, all driven by :class:`repro.analyze.threads.ThreadAnalysis`:

* **RACE001** — a thread-shared field is accessed with *no* latch provably
  held: every write fires; a read fires only when the field is latched
  somewhere else (a wholly-unguarded field reports its writes once instead
  of every read).  An access under a *different* latch than the inferred
  guard is deliberately not reported — distinguishing a wrong latch from
  an outer ambient one (the engine latch every caller holds) is beyond
  syntactic inference, and exactly what the runtime lockset sanitizer's
  cross-check exists for.

* **RACE002** — check-then-act: inside one method, a shared field is
  *tested* under its guard, the guard is released, and a dependent *write*
  happens under a second acquisition of the same guard.  The state the
  decision was based on may be stale by the time the write runs.

* **LATCH001** — a blocking call while a latch is held, proven either
  directly or through the ``may_block`` effect summaries: a lock ``with``
  region that sleeps, waits, joins, takes another lock, or (for non-engine
  latches) forces pages to disk serializes every other thread behind the
  sleeper.  The *engine* latch is exempt from the disk-I/O rule: DB2-style
  engines flush under it by design (checkpoints force pages under the
  engine latch), and it is an RLock whose yield discipline the serving
  layer owns.

``--explain`` renders the witness: for RACE001 the path from a thread root
(spawn site or declared entry) down the call graph to the racy access; for
LATCH001 the chain from the ``with`` into the callee that blocks.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analyze import effects as fx
from repro.analyze.callgraph import FunctionInfo
from repro.analyze.findings import Finding
from repro.analyze.framework import (Checker, Program, SourceModule,
                                     call_name, receiver_text)
from repro.analyze.threads import (MAIN_CONTEXT, _READ_EXEMPT_METHODS,
                                   FieldAccess, SharedField, ThreadAnalysis,
                                   guard_token, token_tail)


class SharedStateRaceChecker(Checker):
    """RACE001/RACE002: shared fields accessed outside their latch."""

    name = "thread-races"
    codes = ("RACE001", "RACE002")
    description = ("thread-shared fields are accessed under their inferred "
                   "guarding latch, and never check-then-act across it")
    code_descriptions = {
        "RACE001": "shared-field access with no latch held "
                   "(write, or read of an otherwise-guarded field)",
        "RACE002": "guard released between a shared-state test and the "
                   "dependent write (check-then-act)",
    }

    def begin(self, program: Program) -> None:
        self._program = program

    def finish(self) -> Iterable[Finding]:
        analysis = ThreadAnalysis(self._program)
        findings: list[Finding] = []
        for record in analysis.shared_fields():
            findings.extend(self._check_field(analysis, record))
        return findings

    # -- RACE001 -----------------------------------------------------------

    def _check_field(self, analysis: ThreadAnalysis,
                     record: SharedField) -> Iterable[Finding]:
        locksets = {id(access): analysis.access_lockset(access)
                    for access in record.accesses}
        guarded_anywhere = any(locksets[id(a)] for a in record.accesses
                               if a.kind != "sync")
        guard = self._inferred_guard(record, locksets)
        #: (method fid, kind) -> representative access + extra lines
        offenders: dict[tuple[str, str], list[FieldAccess]] = {}
        for access in record.accesses:
            if access.kind == "sync" or locksets[id(access)]:
                continue
            if access.kind == "read":
                if not guarded_anywhere:
                    continue  # wholly unguarded: the writes carry the report
                if access.info.name in _READ_EXEMPT_METHODS:
                    continue
            offenders.setdefault((access.info.fid, access.kind),
                                 []).append(access)
        for (_, kind), accesses in sorted(
                offenders.items(),
                key=lambda item: (item[1][0].line, item[0][1])):
            yield self._race001(analysis, record, kind, accesses, guard)
        yield from self._check_then_act(analysis, record, guard, locksets)

    @staticmethod
    def _inferred_guard(record: SharedField,
                        locksets: dict[int, frozenset[str]]
                        ) -> frozenset[str]:
        inferred: frozenset[str] | None = None
        for access in record.accesses:
            lockset = locksets[id(access)]
            if access.kind == "sync" or not lockset:
                continue
            inferred = lockset if inferred is None else inferred & lockset
        return inferred or frozenset()

    def _race001(self, analysis: ThreadAnalysis, record: SharedField,
                 kind: str, accesses: list[FieldAccess],
                 guard: frozenset[str]) -> Finding:
        access = accesses[0]
        module = access.info.module
        verb = "written" if kind == "write" else "read"
        if guard:
            guard_text = (f"outside its inferred guard "
                          f"{'/'.join(sorted(guard))!r}")
        else:
            guard_text = "with no latch held (and no single latch guards it)"
        contexts = sorted(record.contexts)
        message = (f"thread-shared field {record.cls}.{access.field} is "
                   f"{verb} {guard_text}; the field is reached from: "
                   f"{', '.join(contexts)}")
        related = tuple((other.info.path, other.line)
                        for other in accesses[1:])
        return module.finding(
            "RACE001", self.name, access.node, message,
            scope=access.info.qualname,
            detail=f"{record.cls}.{record.field}/{kind}",
            related=related,
            call_path=tuple(self._witness(analysis, record, access, verb)))

    def _witness(self, analysis: ThreadAnalysis, record: SharedField,
                 access: FieldAccess, verb: str) -> list[str]:
        """Thread-root witness: how a second thread reaches this field."""
        own_contexts = analysis.contexts_of(access.info.fid)
        root_name = self._pick_root(analysis, record, own_contexts)
        lines: list[str] = []
        if root_name is not None:
            if root_name in own_contexts:
                lines.extend(analysis.reach_path(root_name, access.info.fid))
            else:
                conflict = self._conflicting_access(
                    analysis, record, root_name, access)
                if conflict is not None:
                    lines.extend(analysis.reach_path(
                        root_name, conflict.info.fid))
                    lines.append(
                        f"{conflict.info.path}:{conflict.line}: "
                        f"{conflict.info.qualname} accesses "
                        f"{record.cls}.{record.field} on that thread")
        lines.append(f"{access.info.path}:{access.line}: "
                     f"{access.info.qualname} — {record.cls}."
                     f"{record.field} {verb} with no latch held")
        return lines

    @staticmethod
    def _pick_root(analysis: ThreadAnalysis, record: SharedField,
                   own_contexts: frozenset[str]) -> str | None:
        for pool in (own_contexts, record.write_contexts, record.contexts):
            candidates = sorted(name for name in pool
                                if name != MAIN_CONTEXT
                                and name in analysis.roots)
            if candidates:
                return candidates[0]
        return None

    @staticmethod
    def _conflicting_access(analysis: ThreadAnalysis, record: SharedField,
                            root_name: str,
                            access: FieldAccess) -> FieldAccess | None:
        for other in record.accesses:
            if other.info.fid == access.info.fid:
                continue
            if root_name in analysis.contexts_of(other.info.fid):
                return other
        return None

    # -- RACE002 -----------------------------------------------------------

    def _check_then_act(self, analysis: ThreadAnalysis, record: SharedField,
                        guard: frozenset[str],
                        locksets: dict[int, frozenset[str]]
                        ) -> Iterable[Finding]:
        if not guard:
            return
        by_method: dict[str, list[FieldAccess]] = {}
        for access in record.accesses:
            if access.kind != "sync":
                by_method.setdefault(access.info.fid, []).append(access)
        for accesses in by_method.values():
            tests: list[tuple[FieldAccess, int]] = []
            writes: list[tuple[FieldAccess, int]] = []
            for access in accesses:
                region = self._guard_region(analysis, access, guard)
                if region is None:
                    continue
                if access.kind == "read" and \
                        self._in_condition(access):
                    tests.append((access, region))
                elif access.is_write:
                    writes.append((access, region))
            #: regions that re-test the field: a write there is the
            #: *double-checked* idiom — the decision is re-validated under
            #: the guard, which is precisely the cure for check-then-act.
            rechecked = {region for _, region in tests}
            for test, test_region in tests:
                for write, write_region in writes:
                    if write_region != test_region and \
                            write_region not in rechecked and \
                            write.line > test.line:
                        yield self._race002(record, guard, test, write)
                        break
                else:
                    continue
                break  # one finding per method per field

    @staticmethod
    def _guard_region(analysis: ThreadAnalysis, access: FieldAccess,
                      guard: frozenset[str]) -> int | None:
        """Innermost syntactic ``with`` region acquiring the guard, if any.

        ``None`` when the access is not under a syntactic acquisition of
        the inferred guard in its own body — entry locksets do not count
        here: a guard held across the whole call cannot be released
        between a check and its act.
        """
        for token, region in analysis.syntactic_guards(
                access.info.module, access.node):
            if token in guard:
                return region
        return None

    @staticmethod
    def _in_condition(access: FieldAccess) -> bool:
        """The access feeds an ``if``/``while`` test."""
        previous: ast.AST = access.node
        for ancestor in access.info.module.ancestors(access.node):
            if isinstance(ancestor, (ast.If, ast.While)) and \
                    previous is ancestor.test:
                return True
            if isinstance(ancestor, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                return False
            previous = ancestor
        return False

    def _race002(self, record: SharedField, guard: frozenset[str],
                 test: FieldAccess, write: FieldAccess) -> Finding:
        module = write.info.module
        guard_name = "/".join(sorted(guard))
        message = (f"check-then-act on {record.cls}.{record.field}: tested "
                   f"under {guard_name!r} at line {test.line}, but the "
                   f"dependent write re-acquires the guard — the tested "
                   f"state may be stale by the time the write runs")
        return module.finding(
            "RACE002", self.name, write.node, message,
            scope=write.info.qualname,
            detail=f"{record.cls}.{record.field}/check-then-act",
            related=((test.info.path, test.line),),
            call_path=(
                f"{test.info.path}:{test.line}: {record.cls}."
                f"{record.field} tested under {guard_name!r}",
                f"{write.info.path}:{write.line}: guard released and "
                f"re-acquired before the dependent write",
            ))


class LatchBlockingChecker(Checker):
    """LATCH001: blocking calls while a latch is held."""

    name = "latch-blocking"
    codes = ("LATCH001",)
    description = ("no thread blocks (sleep/wait/join/lock-acquire, or "
                   "disk I/O under a non-engine latch) while holding a "
                   "latch")
    code_descriptions = {
        "LATCH001": "blocking call inside a `with <latch>:` region, "
                    "proven via the may_block effect summaries",
    }

    def begin(self, program: Program) -> None:
        self._program = program

    def finish(self) -> Iterable[Finding]:
        graph = self._program.callgraph()
        summaries = self._program.effects()
        findings: list[Finding] = []
        for info in graph.iter_functions():
            findings.extend(self._check_function(info, summaries))
        return findings

    def _check_function(self, info: FunctionInfo,
                        summaries: fx.EffectAnalysis) -> Iterable[Finding]:
        module = info.module
        reported: set[int] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.With):
                continue
            if module.enclosing_function(node) is not info.node:
                continue
            tokens = [guard_token(item.context_expr)
                      for item in node.items]
            held = [token for token in tokens if token is not None]
            if not held:
                continue
            for call in self._region_calls(module, node, info):
                if id(call) in reported:
                    continue
                finding = self._blocking_finding(
                    info, summaries, held, node, call)
                if finding is not None:
                    reported.add(id(call))
                    yield finding

    @staticmethod
    def _region_calls(module: SourceModule, with_node: ast.With,
                      info: FunctionInfo) -> Iterable[ast.Call]:
        for stmt in with_node.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and \
                        module.enclosing_function(node) is info.node:
                    yield node

    def _blocking_finding(self, info: FunctionInfo,
                          summaries: fx.EffectAnalysis, held: list[str],
                          with_node: ast.With,
                          call: ast.Call) -> Finding | None:
        module = info.module
        token = held[0]
        #: the engine latch may flush pages by design; other locks may not
        non_latch = [t for t in held
                     if "latch" not in token_tail(t).lower()]
        receiver = receiver_text(call)
        text = f"{receiver}.{call_name(call)}" if receiver \
            else call_name(call)
        direct = fx.blocking_reason(call)
        if direct is not None:
            return self._finding(
                info, with_node, call, token, text,
                f"{direct} while {token!r} is held",
                chain=())
        if call_name(call) in fx._FLUSH_METHODS and non_latch:
            return self._finding(
                info, with_node, call, non_latch[0], text,
                f"{text}() forces pages to disk while {non_latch[0]!r} "
                f"is held",
                chain=())
        for site in self._program.callgraph().callees_of.get(info.fid, ()):
            if site.call is not call:
                continue
            callee = site.callee.fid
            if summaries.has(callee, fx.BLOCKS):
                chain = summaries.render_path(callee, fx.BLOCKS)
                return self._finding(
                    info, with_node, call, token, text,
                    f"{text}() may block (via "
                    f"{site.callee.qualname}) while {token!r} is held",
                    chain=tuple(chain))
            if summaries.has(callee, fx.FLUSHES) and non_latch:
                chain = summaries.render_path(callee, fx.FLUSHES)
                return self._finding(
                    info, with_node, call, non_latch[0], text,
                    f"{text}() may force pages to disk (via "
                    f"{site.callee.qualname}) while {non_latch[0]!r} "
                    f"is held",
                    chain=tuple(chain))
        return None

    def _finding(self, info: FunctionInfo, with_node: ast.With,
                 call: ast.Call, token: str, text: str, message: str,
                 chain: tuple[str, ...]) -> Finding:
        module = info.module
        call_path = (
            f"{info.path}:{with_node.lineno}: {info.qualname} acquires "
            f"{token!r}",
            f"{info.path}:{call.lineno}: {text}() runs with the latch "
            f"held",
        ) + chain
        return module.finding(
            "LATCH001", self.name, call,
            f"latch held across a blocking call: {message}",
            scope=info.qualname,
            detail=f"{token}/{text}",
            call_path=call_path)
