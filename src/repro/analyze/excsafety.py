"""Exception-safety checker: no proven raiser between acquire and release.

The intraprocedural checkers flag the *shape* of an unsafe window (PIN002:
unpin not in a finally).  This checker proves the window is *live*: between
acquiring a resource and releasing it, the function calls something whose
effect summary (:mod:`repro.analyze.effects`) says ``may_raise`` — an
exception there unwinds past the release and leaks the resource.  Because
``may_raise`` is evidence-based (only functions containing a real ``raise``,
transitively, carry it), every finding's ``--explain`` path ends at the
``raise`` statement that proves the hazard — no intraprocedural analysis
can produce that witness.

* **EXC001** (error) — a buffer-pool pin (direct ``fetch``/``new_page``, or
  a call to a ``returns_pin`` helper) followed by a call to a proven raiser
  before the ``unpin``, with no protecting ``finally``.  The frame leaks on
  the error path; a quiesce point then fails on it.
* **EXC002** (warning) — a lock acquisition followed by a proven raiser
  before the function's own ``release``/``release_all``/``unlock``, with no
  protecting ``finally``.  Warning severity: transaction-end release is the
  engine's backstop, but the early-release intent of this code is defeated
  on the error path (the lock is held for the rest of the transaction).

Functions that acquire and never locally release are out of scope here —
PIN001 owns structural pin leaks, and lock lifetimes without a local
release belong to the transaction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze import effects as fx
from repro.analyze.callgraph import CallGraph, FunctionInfo
from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import Checker, Program, call_name, receiver_text

_PIN_METHODS = {"fetch", "new_page"}
_ACQUIRE_METHODS = {"try_acquire", "lock", "try_lock"}
_PIN_RELEASES = {"unpin"}
_LOCK_RELEASES = {"release", "release_all", "unlock"}

_Pos = tuple[int, int]


class _Acquire:
    """One resource acquisition with its release vocabulary."""

    def __init__(self, code: str, call: ast.Call, text: str,
                 releases: frozenset[str], severity: Severity,
                 noun: str, chain: tuple[str, ...] = ()) -> None:
        self.code = code
        self.call = call
        self.pos: _Pos = (call.lineno, call.col_offset)
        self.text = text
        self.releases = releases
        self.severity = severity
        self.noun = noun       # "pin" / "lock", for messages
        self.chain = chain     # witness of the acquisition itself, if any


class ExceptionSafetyChecker(Checker):
    """EXC001/EXC002: proven raiser inside an acquire→release window."""

    name = "exception-safety"
    codes = ("EXC001", "EXC002")
    description = ("no call to a proven raiser between resource acquisition "
                   "and release outside try/finally")
    code_descriptions = {
        "EXC001": "proven raiser between pin and unpin outside a finally "
                  "(frame leaks on the error path)",
        "EXC002": "proven raiser between lock acquisition and local release "
                  "outside a finally (early release defeated)",
    }

    def __init__(self) -> None:
        self._program: Program | None = None

    def begin(self, program: Program) -> None:
        self._program = program

    def finish(self) -> Iterator[Finding]:
        if self._program is None:  # pragma: no cover - driver always begins
            return
        graph = self._program.callgraph()
        summaries = self._program.effects()
        for info in graph.iter_functions():
            yield from self._check_function(info, graph, summaries)

    # -- per-function ------------------------------------------------------

    def _check_function(self, info: FunctionInfo, graph: CallGraph,
                        summaries: fx.EffectAnalysis) -> Iterator[Finding]:
        acquires = self._acquires_of(info, graph, summaries)
        if not acquires:
            return
        raisers = self._raiser_sites(info, graph, summaries)
        if not raisers:
            return
        for acq in acquires:
            if self._protected_by_finally(info, acq.call, acq.releases):
                continue
            release = self._first_release_after(info, acq)
            if release is None:
                continue  # structural leak: PIN001 / txn-end release owns it
            for pos, site_text, callee_fid, line in raisers:
                if not acq.pos < pos < release:
                    continue
                chain = tuple(
                    [f"{info.path}:{acq.pos[0]}: {info.qualname} "
                     f"{acq.noun}s via {acq.text}()"]
                    + list(acq.chain)
                    + [f"{info.path}:{line}: {info.qualname} calls "
                       f"{site_text}() before releasing"]
                    + summaries.render_path(callee_fid, fx.MAY_RAISE))
                yield info.module.finding(
                    acq.code, self.name, acq.call,
                    f"{acq.text}() {acq.noun} is not exception-safe: "
                    f"{site_text}() is a proven raiser called before the "
                    f"{acq.noun} is released, and the release is not in a "
                    f"finally — an exception there leaks the {acq.noun}",
                    severity=acq.severity,
                    detail=f"{acq.text}@{site_text}",
                    call_path=chain)
                break  # one finding per acquisition

    def _acquires_of(self, info: FunctionInfo, graph: CallGraph,
                     summaries: fx.EffectAnalysis) -> list[_Acquire]:
        acquires: list[_Acquire] = []
        for call in self._own_calls(info):
            name = call_name(call)
            text = f"{receiver_text(call)}.{name}" if receiver_text(call) \
                else name
            if name in _PIN_METHODS and fx.is_pool_receiver(call):
                acquires.append(_Acquire(
                    "EXC001", call, text, frozenset(_PIN_RELEASES),
                    Severity.ERROR, "pin"))
            elif name in _ACQUIRE_METHODS:
                acquires.append(_Acquire(
                    "EXC002", call, text, frozenset(_LOCK_RELEASES),
                    Severity.WARNING, "lock"))
        seen = {id(a.call) for a in acquires}
        for site in graph.callees_of.get(info.fid, []):
            if id(site.call) in seen:
                continue
            if summaries.has(site.callee.fid, fx.RETURNS_PIN):
                seen.add(id(site.call))
                acquires.append(_Acquire(
                    "EXC001", site.call, site.text,
                    frozenset(_PIN_RELEASES), Severity.ERROR, "pin",
                    chain=tuple(summaries.render_path(
                        site.callee.fid, fx.RETURNS_PIN))))
        acquires.sort(key=lambda a: a.pos)
        return acquires

    def _raiser_sites(self, info: FunctionInfo, graph: CallGraph,
                      summaries: fx.EffectAnalysis
                      ) -> list[tuple[_Pos, str, str, int]]:
        """Resolved calls of ``info`` whose callee may provably raise."""
        sites: list[tuple[_Pos, str, str, int]] = []
        seen: set[int] = set()
        for site in graph.callees_of.get(info.fid, []):
            if id(site.call) in seen:
                continue
            if not summaries.has(site.callee.fid, fx.MAY_RAISE):
                continue
            seen.add(id(site.call))
            sites.append(((site.line, site.call.col_offset), site.text,
                          site.callee.fid, site.line))
        return sites

    def _first_release_after(self, info: FunctionInfo,
                             acq: _Acquire) -> _Pos | None:
        best: _Pos | None = None
        for call in self._own_calls(info):
            if call_name(call) not in acq.releases:
                continue
            pos = (call.lineno, call.col_offset)
            if pos > acq.pos and (best is None or pos < best):
                best = pos
        return best

    @staticmethod
    def _own_calls(info: FunctionInfo) -> Iterator[ast.Call]:
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call) and \
                    info.module.enclosing_function(node) is info.node:
                yield node

    @staticmethod
    def _protected_by_finally(info: FunctionInfo, call: ast.Call,
                              releases: frozenset[str]) -> bool:
        """Acquire inside (or immediately before) a try whose finally
        releases — the structurally safe idioms the pin checker accepts."""
        module = info.module
        stmt: ast.AST | None = call
        while stmt is not None and not isinstance(stmt, ast.stmt):
            stmt = module.parent(stmt)
        if stmt is None:  # pragma: no cover - calls always sit in statements
            return False
        def finally_releases(try_node: ast.Try) -> bool:
            for node in try_node.finalbody:
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call) and \
                            call_name(sub) in releases:
                        return True
            return False
        for ancestor in module.ancestors(stmt):
            if isinstance(ancestor, ast.Try) and ancestor.finalbody and \
                    finally_releases(ancestor):
                return True
        parent = module.parent(stmt)
        if parent is None:
            return False
        for field_name in ("body", "orelse", "finalbody"):
            block = getattr(parent, field_name, None)
            if isinstance(block, list) and stmt in block:
                index = block.index(stmt)
                if index + 1 < len(block):
                    nxt = block[index + 1]
                    if isinstance(nxt, ast.Try) and nxt.finalbody and \
                            finally_releases(nxt):
                        return True
        return False
