"""Pin-leak checker: every buffer-pool pin must reach ``unpin`` on all paths.

The buffer pool's contract (``repro.rdb.buffer``) is strict pin/unpin
pairing: a frame pinned by ``fetch``/``new_page`` that is never unpinned can
never be evicted, and a quiesce point (checkpoint, crash-harness restart)
fails on it.  The safe idioms are:

* the ``pool.page(...)`` context manager (pairing is structural);
* ``fetch``/``new_page`` immediately guarded by ``try``/``finally`` whose
  ``finally`` unpins;
* an explicit *handoff*: the function returns the pinned result to a caller
  that owns the unpin (the pool's own ``new_page`` does this).

Everything else is reported:

* **PIN001** — a pin with no ``unpin`` anywhere in the enclosing function
  (and no handoff): a structural leak.
* **PIN002** — a pin whose ``unpin`` is not in a ``finally``: leaks the
  frame whenever an intervening statement raises (the error-path leak class
  the runtime sanitizer catches one test too late).

Both codes are *interprocedural*: a call to a function whose effect summary
(:mod:`repro.analyze.effects`) says ``returns_pin`` — it hands a pinned
frame to its caller — is a pin at the call site, subject to the same rules.
``--explain`` prints the call chain down to the primitive ``fetch``/
``new_page`` that proves it.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analyze import effects as fx
from repro.analyze.findings import Finding
from repro.analyze.framework import (Checker, Program, SourceModule,
                                     call_name, receiver_text)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analyze.callgraph import CallSite, FunctionInfo

_PIN_METHODS = {"fetch", "new_page"}
_POOLISH = ("pool",)


def _is_pool_receiver(call: ast.Call) -> bool:
    receiver = receiver_text(call).lower()
    if not receiver:
        return False
    last = receiver.rsplit(".", 1)[-1]
    return any(last == p or last.endswith("_" + p) or last.endswith(p)
               for p in _POOLISH)


def _assigned_names(stmt: ast.stmt) -> set[str]:
    """Names bound by an assignment statement (tuple targets included)."""
    names: set[str] = set()
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.add(node.id)
    return names


def _contains_unpin(nodes: Iterable[ast.stmt]) -> bool:
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and call_name(node) == "unpin":
                return True
    return False


def _statement_of(module: SourceModule, node: ast.AST) -> ast.stmt | None:
    current: ast.AST | None = node
    while current is not None and not isinstance(current, ast.stmt):
        current = module.parent(current)
    return current  # type: ignore[return-value]


def _block_of(module: SourceModule, stmt: ast.stmt) -> list[ast.stmt]:
    parent = module.parent(stmt)
    if parent is None:
        return []
    for field_name in ("body", "orelse", "finalbody", "handlers"):
        block = getattr(parent, field_name, None)
        if isinstance(block, list) and stmt in block:
            return block
    return []


class PinLeakChecker(Checker):
    """PIN001/PIN002: buffer-pool pins must reach ``unpin`` on all paths."""

    name = "pin-leak"
    codes = ("PIN001", "PIN002")
    description = ("BufferPool.fetch/new_page results must be unpinned on "
                   "all paths (finally) or explicitly handed off — "
                   "including pins inherited from returns_pin callees")
    code_descriptions = {
        "PIN001": "pin (direct or via a returns_pin helper) never unpinned "
                  "and never handed off",
        "PIN002": "unpin exists but is not in a finally: the error path "
                  "leaks the frame",
    }

    def __init__(self) -> None:
        self._program: Program | None = None

    def begin(self, program: Program) -> None:
        self._program = program

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for call in module.calls():
            if call_name(call) not in _PIN_METHODS:
                continue
            if not _is_pool_receiver(call):
                continue
            function = module.enclosing_function(call)
            if function is None:
                continue  # module-level experiment scripts own their pins
            yield from self._check_pin(module, call, function)

    def finish(self) -> Iterator[Finding]:
        """Interprocedural pass: calls to ``returns_pin`` callees are pins.

        A helper that pins and returns the frame transfers the unpin
        obligation to its caller; the caller is held to the same rules as a
        direct pin site.  Primitive pool calls are excluded here — the
        per-module pass already owns them.
        """
        if self._program is None:  # pragma: no cover - driver always begins
            return
        graph = self._program.callgraph()
        summaries = self._program.effects()
        for info in graph.iter_functions():
            reported: set[int] = set()
            for site in graph.callees_of.get(info.fid, ()):
                if id(site.call) in reported:
                    continue  # one finding per call even with 2+ candidates
                if not summaries.has(site.callee.fid, fx.RETURNS_PIN):
                    continue
                if call_name(site.call) in _PIN_METHODS and \
                        _is_pool_receiver(site.call):
                    continue  # primitive pin: check_module owns it
                reported.add(id(site.call))
                yield from self._check_inherited_pin(info, site, summaries)

    def _check_inherited_pin(self, info: FunctionInfo, site: CallSite,
                             summaries: fx.EffectAnalysis
                             ) -> Iterator[Finding]:
        module = info.module
        call = site.call
        function = info.node
        stmt = _statement_of(module, call)
        if stmt is None:  # pragma: no cover - calls always sit in statements
            return
        if self._protected_by_finally(module, stmt):
            return
        detail = f"{site.text}->{site.callee.qualname}"
        call_path = tuple(
            [f"{info.path}:{call.lineno}: {info.qualname} calls "
             f"{site.text}()"]
            + summaries.render_path(site.callee.fid, fx.RETURNS_PIN))
        if not _contains_unpin(function.body):
            if self._handed_off(function, stmt):
                return
            yield module.finding(
                "PIN001", self.name, call,
                f"{site.text}() hands back a frame pinned by "
                f"{site.callee.qualname}() but {function.name}() never "
                f"unpins and never hands the pin off",
                detail=detail, call_path=call_path)
        else:
            yield module.finding(
                "PIN002", self.name, call,
                f"{site.text}() hands back a pinned frame (via "
                f"{site.callee.qualname}()) and the unpin is not in a "
                f"finally: an error between the call and the unpin leaks "
                f"the frame", detail=detail, call_path=call_path)

    def _check_pin(self, module: SourceModule, call: ast.Call,
                   function: ast.FunctionDef | ast.AsyncFunctionDef
                   ) -> Iterator[Finding]:
        stmt = _statement_of(module, call)
        if stmt is None:  # pragma: no cover - calls always sit in statements
            return
        detail = f"{receiver_text(call)}.{call_name(call)}"
        if self._protected_by_finally(module, stmt):
            return
        if not _contains_unpin(function.body):
            # A function that never unpins may still be correct: it hands
            # the pinned result to its caller (the pool's own new_page).
            if self._handed_off(function, stmt):
                return
            yield module.finding(
                "PIN001", self.name, call,
                f"{detail}() pins a frame but {function.name}() never "
                f"unpins and never hands the pin off", detail=detail)
        else:
            yield module.finding(
                "PIN002", self.name, call,
                f"{detail}() pin is not exception-safe: unpin is not in a "
                f"finally, so an error between pin and unpin leaks the "
                f"frame (use pool.page() or try/finally)", detail=detail)

    @staticmethod
    def _protected_by_finally(module: SourceModule, stmt: ast.stmt) -> bool:
        """Pin inside a try whose finally unpins, or immediately followed
        by such a try (the ``data = pool.fetch(p)`` / ``try: ... finally:
        unpin`` idiom of ``BufferPool.page``)."""
        for ancestor in module.ancestors(stmt):
            if isinstance(ancestor, ast.Try) and ancestor.finalbody and \
                    _contains_unpin(ancestor.finalbody):
                return True
        block = _block_of(module, stmt)
        if stmt in block:
            index = block.index(stmt)
            if index + 1 < len(block):
                nxt = block[index + 1]
                if isinstance(nxt, ast.Try) and nxt.finalbody and \
                        _contains_unpin(nxt.finalbody):
                    return True
        return False

    @staticmethod
    def _handed_off(function: ast.FunctionDef | ast.AsyncFunctionDef,
                    stmt: ast.stmt) -> bool:
        """The pinned result escapes through a return: the caller owns it."""
        if isinstance(stmt, ast.Return):
            return True
        names = _assigned_names(stmt)
        if not names:
            return False
        for node in ast.walk(function):
            if isinstance(node, ast.Return) and node.value is not None:
                for ref in ast.walk(node.value):
                    if isinstance(ref, ast.Name) and ref.id in names:
                        return True
        return False
