"""Checker framework: parsed modules, scope resolution, and the driver.

The analyzer is purely AST-based — it never imports the code under analysis,
so it can run against any tree (including deliberately broken test fixtures)
without executing engine code.  Each :class:`SourceModule` wraps one parsed
file with the parent links and scope qualnames every checker needs; a
:class:`Checker` visits modules one at a time and may emit cross-module
findings in :meth:`Checker.finish` (the lock-order graph and the stats
registry are whole-program properties).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.analyze.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.analyze.callgraph import CallGraph
    from repro.analyze.effects import EffectAnalysis

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules",
              "build", "dist", ".ruff_cache", ".mypy_cache"}


class SourceModule:
    """One parsed python file plus the lookup structures checkers share."""

    def __init__(self, path: Path, root: Path, text: str | None = None) -> None:
        self.path = path
        self.root = root
        self.relpath = self._relativize(path, root)
        self.text = path.read_text() if text is None else text
        self.tree = ast.parse(self.text, filename=str(path))
        self._parents: dict[ast.AST, ast.AST] = {}
        self._scopes: dict[ast.AST, str] = {}
        self._index(self.tree, parent=None, scope="")

    @staticmethod
    def _relativize(path: Path, root: Path) -> str:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def _index(self, node: ast.AST, parent: ast.AST | None, scope: str) -> None:
        if parent is not None:
            self._parents[node] = parent
        self._scopes[node] = scope
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            scope = f"{scope}.{node.name}" if scope else node.name
        for child in ast.iter_child_nodes(node):
            self._index(child, node, scope)

    # -- lookups -----------------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def scope_of(self, node: ast.AST) -> str:
        """Dotted qualname of the scope enclosing ``node`` ('' = module)."""
        return self._scopes.get(node, "")

    def enclosing_function(self, node: ast.AST
                           ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self._parents.get(current)
        return None

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def calls(self) -> Iterator[ast.Call]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                yield node

    def finding(self, code: str, checker: str, node: ast.AST, message: str,
                **kwargs: Any) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        kwargs.setdefault("scope", self.scope_of(node))
        return Finding(code=code, checker=checker, path=self.relpath,
                       line=getattr(node, "lineno", 0),
                       column=getattr(node, "col_offset", 0),
                       message=message, **kwargs)


def call_name(call: ast.Call) -> str:
    """Name of the called attribute/function (``''`` when unnameable)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def receiver_text(call: ast.Call) -> str:
    """Dotted text of a call's receiver (``'self.pool'`` for
    ``self.pool.fetch(...)``; ``''`` for plain-name calls)."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return ""
    parts: list[str] = []
    node: ast.expr = func.value
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("<expr>")
    return ".".join(reversed(parts))


class Program:
    """Every module of one analysis run, plus lazily built whole-program
    structures (call graph, effect summaries).

    The driver hands one :class:`Program` to every checker through
    :meth:`Checker.begin` and appends each successfully parsed module to
    it, so cross-module checkers share a single call-graph/effect
    computation instead of each building their own.  The expensive
    structures are built on first request: runs that select only
    intraprocedural checkers never pay for them.
    """

    def __init__(self) -> None:
        self.modules: list[SourceModule] = []
        self._callgraph: CallGraph | None = None
        self._effects: EffectAnalysis | None = None

    def add(self, module: SourceModule) -> None:
        self.modules.append(module)
        # A new module invalidates anything built from the old set.
        self._callgraph = None
        self._effects = None

    def callgraph(self) -> CallGraph:
        """The whole-program call graph (built on first use)."""
        from repro.analyze.callgraph import CallGraph
        if self._callgraph is None:
            graph = CallGraph()
            for module in self.modules:
                graph.add_module(module)
            graph.resolve()
            self._callgraph = graph
        return self._callgraph

    def effects(self) -> EffectAnalysis:
        """Fixpoint resource-effect summaries (built on first use)."""
        from repro.analyze.effects import EffectAnalysis
        if self._effects is None:
            self._effects = EffectAnalysis(self.callgraph())
        return self._effects


class Checker:
    """Base class: one engine invariant, one or more finding codes."""

    #: short identifier used in reports and ``--select``
    name: str = ""
    #: finding codes this checker can emit
    codes: tuple[str, ...] = ()
    #: one-line description of the encoded invariant
    description: str = ""
    #: per-code one-line descriptions (``--list-checkers``)
    code_descriptions: dict[str, str] = {}

    def begin(self, program: Program) -> None:
        """Receive the shared :class:`Program` before any module is visited.

        Interprocedural checkers keep the reference and consult
        ``program.callgraph()`` / ``program.effects()`` in :meth:`finish`,
        once every module has been parsed and added.
        """

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        """Per-file pass; yield findings local to ``module``."""
        return ()

    def finish(self) -> Iterable[Finding]:
        """Cross-file pass, run once after every module was visited."""
        return ()


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (_SKIP_DIRS & set(part.name for part in p.parents)))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def run_checkers(checkers: Iterable[Checker], paths: Iterable[Path],
                 root: Path | None = None,
                 on_error: Callable[[Path, Exception], None] | None = None,
                 program: Program | None = None) -> list[Finding]:
    """Parse every file under ``paths`` and run ``checkers`` over them.

    Files that fail to parse are reported through ``on_error`` (a callable
    receiving ``(path, exception)``) and skipped — the analyzer must degrade
    gracefully on a broken tree rather than crash the CI job.

    A pre-built ``program`` (e.g. from
    :func:`repro.analyze.progcache.cached_program`) skips parsing entirely:
    ``paths`` and ``on_error`` are then ignored and the checkers visit the
    program's modules as-is.
    """
    checkers = list(checkers)
    root = root if root is not None else Path.cwd()
    findings: list[Finding] = []
    if program is not None:
        for checker in checkers:
            checker.begin(program)
        for module in program.modules:
            for checker in checkers:
                findings.extend(checker.check_module(module))
    else:
        program = Program()
        for checker in checkers:
            checker.begin(program)
        for path in iter_python_files(paths):
            try:
                module = SourceModule(path, root)
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                if on_error is not None:
                    on_error(path, exc)
                continue
            program.add(module)
            for checker in checkers:
                findings.extend(checker.check_module(module))
    for checker in checkers:
        findings.extend(checker.finish())
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings
