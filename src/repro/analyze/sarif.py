"""SARIF 2.1.0 export for ``python -m repro.analyze --format sarif``.

SARIF (Static Analysis Results Interchange Format) is the lingua franca
code-scanning UIs ingest.  The export is deliberately minimal-but-valid:
one run, one tool driver named ``repro.analyze``, rule metadata taken from
the same checker ``codes``/``code_descriptions`` tables that feed
``--list-checkers``, and every result carrying the finding's
line-independent baseline fingerprint as a ``partialFingerprints`` entry
(key ``repro/v1``) so scanning UIs track findings across unrelated edits
exactly like the suppression baseline does.  Baselined findings are
emitted with a ``suppressions`` entry (kind ``external``) whose
justification is the baseline's documented reason, instead of being
dropped — the SARIF consumer sees the full picture.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import Checker

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
#: partialFingerprints key carrying the baseline fingerprint.
FINGERPRINT_KEY = "repro/v1"


def rules_from_checkers(checkers: Iterable[Checker]) -> list[dict[str, object]]:
    """One SARIF ``reportingDescriptor`` per finding code, from the same
    metadata ``--list-checkers`` prints."""
    rules: list[dict[str, object]] = []
    for checker in checkers:
        for code in checker.codes:
            about = checker.code_descriptions.get(code, "")
            rules.append({
                "id": code,
                "name": code,
                "shortDescription": {"text": about or checker.description},
                "fullDescription": {"text": checker.description},
                "defaultConfiguration": {"level": "error"},
                "properties": {"checker": checker.name},
            })
    return rules


def _result(finding: Finding,
            suppressed: bool, justification: str) -> dict[str, object]:
    location: dict[str, object] = {
        "physicalLocation": {
            "artifactLocation": {"uri": finding.path,
                                 "uriBaseId": "SRCROOT"},
            "region": {"startLine": max(1, finding.line),
                       "startColumn": finding.column + 1},
        },
    }
    if finding.scope:
        location["logicalLocations"] = [
            {"fullyQualifiedName": finding.scope}]
    result: dict[str, object] = {
        "ruleId": finding.code,
        "level": "error" if finding.severity is Severity.ERROR
                 else "warning",
        "message": {"text": finding.message},
        "locations": [location],
        "partialFingerprints": {FINGERPRINT_KEY: finding.fingerprint},
    }
    if finding.call_path:
        result["properties"] = {"callPath": list(finding.call_path)}
    if finding.related:
        result["relatedLocations"] = [
            {"physicalLocation": {
                "artifactLocation": {"uri": path, "uriBaseId": "SRCROOT"},
                "region": {"startLine": max(1, line)}}}
            for path, line in finding.related]
    if suppressed:
        suppression: dict[str, object] = {"kind": "external"}
        if justification:
            suppression["justification"] = justification
        result["suppressions"] = [suppression]
    return result


def to_sarif(checkers: Iterable[Checker],
             new: Sequence[Finding],
             baselined: Sequence[Finding] = (),
             parse_errors: Sequence[str] = (),
             justifications: Mapping[str, str] | None = None
             ) -> dict[str, object]:
    """The complete SARIF log for one analyzer run.

    ``justifications`` maps baseline fingerprints to their documented
    reasons (shown as the suppression justification).
    """
    justifications = justifications or {}
    results = [_result(finding, suppressed=False, justification="")
               for finding in new]
    results += [_result(finding, suppressed=True,
                        justification=justifications.get(
                            finding.fingerprint, ""))
                for finding in baselined]
    invocation: dict[str, object] = {
        "executionSuccessful": True,
    }
    if parse_errors:
        invocation["toolExecutionNotifications"] = [
            {"level": "error", "message": {"text": text}}
            for text in parse_errors]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "repro.analyze",
                "informationUri":
                    "https://example.invalid/repro/analyze",
                "rules": rules_from_checkers(checkers),
            }},
            "invocations": [invocation],
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///./"}},
            "results": results,
        }],
    }
