"""Stats-hygiene checker: metric names are conventional and registered once.

Every layer reports into the shared :class:`~repro.core.stats.StatsRegistry`
and counters are created on first use — so a typo'd name silently splits a
metric in two, and experiments comparing ``buffer.hits`` across runs read
garbage.  Three invariants keep the namespace sound:

* **STAT001** — the ``component.metric`` convention: lowercase dotted names,
  at least two segments (``buffer.hits``, ``sanitize.double_unpin``).
  Applies to counters, gauges, histograms, spans and trace events alike.
* **STAT002** — single registration point: every counter/gauge name used by
  engine code must appear in ``METRICS`` in ``repro/core/stats.py``.  The
  registry is extracted from the analyzed tree's own ``core/stats.py`` (no
  import of the code under analysis), so the check stays honest on any
  tree.  A name in code but not in the registry is a typo or an
  undocumented metric; either way the registry is the fix.
* **STAT003** — the same single-registration rule for histograms: every
  literal ``observe()`` name must appear in ``HISTOGRAMS`` beside
  ``METRICS``, so distribution metrics get the same typo protection.
* **STAT004** — wait-state discipline, two halves.  (a) Every literal
  wait class passed to ``wait_timer()``/``charge_wait()`` must appear in
  the ``WAITS`` registry — a typo'd class would silently charge a
  counter the profilers never fold in.  (b) Every blocking sleep
  (``time.sleep(...)`` or the engine's bare ``sleep(...)`` alias) must be
  lexically inside a ``with`` whose items include a ``wait_timer(...)``
  call, so no suspension site can dodge the wait clock.  The one
  allowlisted scope is ``DatabaseServer._latch_sleep`` — the
  release-sleep-reacquire yield primitive whose callers (lock-wait
  backoff, the group-commit window, retry backoff) each charge their own
  class; timing it again here would double-count every yielded wait.
  ``Event.wait``/``queue.get`` coordination waits are out of scope by
  documented choice: they park worker threads, not units of work.
* **STAT005** — registry drift, the converse of STAT002/003/004: an entry
  in ``METRICS``/``HISTOGRAMS``/``WAITS`` that *no* source site ever
  charges or observes is a dead metric — a renamed counter whose registry
  entry was left behind, or a planned metric that never landed.  Either
  way dashboards comparing it read zeros forever.  Aliveness is counted
  over literal charge sites on *any* receiver (``self.observe`` inside
  the registry class counts), plus two documented derivations: every
  ``trip(stats, "<name>", ...)`` call keeps ``sanitize.<name>`` alive,
  and every used wait class keeps its ``wait_counter()``-derived
  ``waits.<class>_us`` counter alive.  Reads (``get``/``gauge``/
  ``histogram``) deliberately do not count — observing a dead metric is
  how it stays unnoticed.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analyze.findings import Finding
from repro.analyze.framework import Checker, SourceModule, call_name

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: StatsRegistry entry points taking a counter/gauge name as first argument.
_REGISTERED_METHODS = {"add", "set_high_water"}
#: Entry points taking a histogram name (checked against HISTOGRAMS).
_HISTOGRAM_METHODS = {"observe"}
#: Entry points taking a wait-class name (checked against WAITS).
_WAIT_METHODS = {"wait_timer", "charge_wait"}
_CONVENTION_ONLY_METHODS = {"trace", "trace_event", "get", "gauge",
                            "histogram"}

#: Scopes whose bare sleeps are the engine's latch-yield primitive: the
#: *callers* charge the wait (lock.wait, wal.group_commit,
#: txn.retry_backoff), so a timer here would nest and double-count.
#: Qualnames, same shape the race checkers use for entry roots.
_SLEEP_ALLOWLIST = {"DatabaseServer._latch_sleep"}

_STATSISH = re.compile(r"(^|\.|_)stats$", re.IGNORECASE)


def _is_stats_receiver(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    value = func.value
    if isinstance(value, ast.Name):
        return bool(_STATSISH.search(value.id))
    if isinstance(value, ast.Attribute):
        return bool(_STATSISH.search(value.attr))
    return False


def _is_sleep_call(call: ast.Call) -> bool:
    """``time.sleep(...)`` or the engine's bare ``sleep(...)`` alias.

    Method sleeps on other receivers (``deadline.sleep(...)``) are *not*
    sleep sites: :meth:`Deadline.sleep` charges its own wait class
    internally, which is exactly why callers go through it.
    """
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr == "sleep" and \
            isinstance(func.value, ast.Name) and func.value.id == "time"
    return isinstance(func, ast.Name) and func.id == "sleep"


def _is_wait_timer_item(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Call) and \
        isinstance(expr.func, ast.Attribute) and \
        expr.func.attr == "wait_timer"


class StatsHygieneChecker(Checker):
    """STAT001-004: metric naming, registration, and wait discipline."""

    name = "stats-hygiene"
    codes = ("STAT001", "STAT002", "STAT003", "STAT004", "STAT005")
    description = ("counter/gauge/histogram names follow component.metric "
                   "and are registered in repro.core.stats METRICS / "
                   "HISTOGRAMS; wait classes are registered in WAITS, "
                   "every blocking sleep is charged to one, and no "
                   "registry entry is dead")
    code_descriptions = {
        "STAT001": "metric name violates the component.metric convention",
        "STAT002": "counter/gauge name not registered in METRICS",
        "STAT003": "histogram name not registered in HISTOGRAMS",
        "STAT004": "wait class not registered in WAITS, or a blocking "
                   "sleep outside any wait_timer",
        "STAT005": "registry entry (METRICS/HISTOGRAMS/WAITS) that no "
                   "source site ever charges or observes (dead metric)",
    }

    def __init__(self) -> None:
        self.registry: dict[str, int] | None = None
        self.histogram_registry: dict[str, int] | None = None
        self.wait_registry: dict[str, int] | None = None
        self._registry_path: str | None = None
        #: (module, call node info) of registered-method uses, checked in
        #: finish() once the registry module has been seen.
        self._uses: list[tuple[str, int, int, str, str]] = []
        self._observe_uses: list[tuple[str, int, int, str, str]] = []
        self._wait_uses: list[tuple[str, int, int, str, str]] = []
        #: literal names charged anywhere (any receiver): STAT005 aliveness
        self._alive_metrics: set[str] = set()
        self._alive_histograms: set[str] = set()
        self._alive_waits: set[str] = set()

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if module.relpath.endswith("core/stats.py"):
            self.registry = _extract_registry(module.tree, "METRICS")
            self.histogram_registry = _extract_registry(module.tree,
                                                        "HISTOGRAMS")
            self.wait_registry = _extract_registry(module.tree, "WAITS")
            self._registry_path = module.relpath
        self._collect_aliveness(module)
        for call in module.calls():
            method = call_name(call)
            if method not in _REGISTERED_METHODS and \
                    method not in _HISTOGRAM_METHODS and \
                    method not in _WAIT_METHODS and \
                    method not in _CONVENTION_ONLY_METHODS:
                continue
            if not _is_stats_receiver(call):
                continue
            if not call.args:
                continue
            arg = call.args[0]
            if not (isinstance(arg, ast.Constant) and
                    isinstance(arg.value, str)):
                continue  # dynamic names are the registry's blind spot
            metric = arg.value
            if method in _WAIT_METHODS:
                # Wait classes are dotted but checked against WAITS, not
                # METRICS (their counters are derived via wait_counter).
                self._wait_uses.append(
                    (module.relpath, call.lineno, call.col_offset,
                     module.scope_of(call), metric))
                continue
            if not _NAME_RE.match(metric):
                yield module.finding(
                    "STAT001", self.name, call,
                    f"metric name {metric!r} violates the component.metric "
                    f"convention (lowercase dotted, >= 2 segments)",
                    detail=metric)
            elif method in _REGISTERED_METHODS:
                self._uses.append((module.relpath, call.lineno,
                                   call.col_offset, module.scope_of(call),
                                   metric))
            elif method in _HISTOGRAM_METHODS:
                self._observe_uses.append(
                    (module.relpath, call.lineno, call.col_offset,
                     module.scope_of(call), metric))
        yield from self._check_sleep_discipline(module)

    def _collect_aliveness(self, module: SourceModule) -> None:
        """STAT005 evidence: literal names charged through any receiver.

        Deliberately looser than the registration checks (no stats-receiver
        test): over-approximating aliveness can only silence a dead-metric
        report, never invent one.
        """
        for call in module.calls():
            method = call_name(call)
            if method == "trip" and len(call.args) >= 2:
                arg = call.args[1]
                if isinstance(arg, ast.Constant) and \
                        isinstance(arg.value, str):
                    # trip(stats, name, ...) charges "sanitize.<name>".
                    self._alive_metrics.add(f"sanitize.{arg.value}")
                continue
            if not call.args:
                continue
            arg = call.args[0]
            if not (isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)):
                continue
            if method in _REGISTERED_METHODS:
                self._alive_metrics.add(arg.value)
            elif method in _HISTOGRAM_METHODS:
                self._alive_histograms.add(arg.value)
            elif method in _WAIT_METHODS:
                self._alive_waits.add(arg.value)

    def _check_sleep_discipline(self, module: SourceModule
                                ) -> Iterator[Finding]:
        """STAT004(b): every blocking sleep runs under a wait timer."""
        covered: set[int] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(_is_wait_timer_item(item.context_expr)
                       for item in node.items):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.Call) and _is_sleep_call(inner):
                    covered.add(id(inner))
        for call in module.calls():
            if not _is_sleep_call(call) or id(call) in covered:
                continue
            scope = module.scope_of(call)
            if scope in _SLEEP_ALLOWLIST:
                continue
            yield module.finding(
                "STAT004", self.name, call,
                f"blocking sleep in {scope or 'module scope'} is not "
                f"charged to any wait class — wrap it in "
                f"stats.wait_timer(<class>) (or add the scope to the "
                f"documented latch-yield allowlist)",
                detail=scope)

    def finish(self) -> Iterator[Finding]:
        if self.wait_registry is not None:
            for path, line, column, scope, wait_class in self._wait_uses:
                if wait_class in self.wait_registry:
                    continue
                yield Finding(
                    code="STAT004", checker=self.name, path=path, line=line,
                    column=column, scope=scope, detail=wait_class,
                    message=(f"wait class {wait_class!r} is not registered "
                             f"in repro.core.stats.WAITS — register it "
                             f"once there (or fix the typo)"))
        if self.registry is not None:
            for path, line, column, scope, metric in self._uses:
                if metric in self.registry:
                    continue
                yield Finding(
                    code="STAT002", checker=self.name, path=path, line=line,
                    column=column, scope=scope, detail=metric,
                    message=(f"metric {metric!r} is not registered in "
                             f"repro.core.stats.METRICS — register it once "
                             f"there (or fix the typo)"))
        if self.histogram_registry is not None:
            for path, line, column, scope, metric in self._observe_uses:
                if metric in self.histogram_registry:
                    continue
                yield Finding(
                    code="STAT003", checker=self.name, path=path, line=line,
                    column=column, scope=scope, detail=metric,
                    message=(f"histogram {metric!r} is not registered in "
                             f"repro.core.stats.HISTOGRAMS — register it "
                             f"once there (or fix the typo)"))
        yield from self._check_registry_drift()

    def _check_registry_drift(self) -> Iterator[Finding]:
        """STAT005: registry entries no source site ever charges."""
        if self._registry_path is None:
            return
        # Every used wait class keeps its derived microsecond counter
        # alive (wait_counter(): "waits." + class.replace(".", "_") + "_us").
        derived = {"waits." + cls.replace(".", "_") + "_us"
                   for cls in self._alive_waits}
        drift: list[tuple[str, str, int]] = []
        for metric, line in (self.registry or {}).items():
            if metric not in self._alive_metrics and metric not in derived:
                drift.append(("METRICS", metric, line))
        for metric, line in (self.histogram_registry or {}).items():
            if metric not in self._alive_histograms:
                drift.append(("HISTOGRAMS", metric, line))
        for wait_class, line in (self.wait_registry or {}).items():
            if wait_class not in self._alive_waits:
                drift.append(("WAITS", wait_class, line))
        for binding, metric, line in sorted(drift):
            yield Finding(
                code="STAT005", checker=self.name,
                path=self._registry_path, line=line, column=0,
                scope=binding, detail=metric,
                message=(f"{binding} entry {metric!r} is never charged or "
                         f"observed by any analyzed source site — a dead "
                         f"metric reads zero forever; delete the entry or "
                         f"wire up the charge site"))


def _extract_registry(tree: ast.Module, binding: str) -> dict[str, int]:
    """Literal string members of a ``<binding> = frozenset({...})``
    binding, mapped to their source line (for STAT005 reports)."""
    names: dict[str, int] = {}
    for node in ast.walk(tree):
        target_names = []
        if isinstance(node, ast.Assign):
            target_names = [t.id for t in node.targets
                            if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                target_names = [node.target.id]
            value = node.value
        else:
            continue
        if binding not in target_names:
            continue
        for constant in ast.walk(value):
            if isinstance(constant, ast.Constant) and \
                    isinstance(constant.value, str):
                names.setdefault(constant.value, constant.lineno)
    return names
