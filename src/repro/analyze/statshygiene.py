"""Stats-hygiene checker: metric names are conventional and registered once.

Every layer reports into the shared :class:`~repro.core.stats.StatsRegistry`
and counters are created on first use — so a typo'd name silently splits a
metric in two, and experiments comparing ``buffer.hits`` across runs read
garbage.  Three invariants keep the namespace sound:

* **STAT001** — the ``component.metric`` convention: lowercase dotted names,
  at least two segments (``buffer.hits``, ``sanitize.double_unpin``).
  Applies to counters, gauges, histograms, spans and trace events alike.
* **STAT002** — single registration point: every counter/gauge name used by
  engine code must appear in ``METRICS`` in ``repro/core/stats.py``.  The
  registry is extracted from the analyzed tree's own ``core/stats.py`` (no
  import of the code under analysis), so the check stays honest on any
  tree.  A name in code but not in the registry is a typo or an
  undocumented metric; either way the registry is the fix.
* **STAT003** — the same single-registration rule for histograms: every
  literal ``observe()`` name must appear in ``HISTOGRAMS`` beside
  ``METRICS``, so distribution metrics get the same typo protection.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analyze.findings import Finding
from repro.analyze.framework import Checker, SourceModule, call_name

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: StatsRegistry entry points taking a counter/gauge name as first argument.
_REGISTERED_METHODS = {"add", "set_high_water"}
#: Entry points taking a histogram name (checked against HISTOGRAMS).
_HISTOGRAM_METHODS = {"observe"}
_CONVENTION_ONLY_METHODS = {"trace", "trace_event", "get", "gauge",
                            "histogram"}

_STATSISH = re.compile(r"(^|\.|_)stats$", re.IGNORECASE)


def _is_stats_receiver(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    value = func.value
    if isinstance(value, ast.Name):
        return bool(_STATSISH.search(value.id))
    if isinstance(value, ast.Attribute):
        return bool(_STATSISH.search(value.attr))
    return False


class StatsHygieneChecker(Checker):
    """STAT001/STAT002/STAT003: metric naming convention and registration."""

    name = "stats-hygiene"
    codes = ("STAT001", "STAT002", "STAT003")
    description = ("counter/gauge/histogram names follow component.metric "
                   "and are registered in repro.core.stats METRICS / "
                   "HISTOGRAMS")

    def __init__(self) -> None:
        self.registry: set[str] | None = None
        self.histogram_registry: set[str] | None = None
        #: (module, call node info) of registered-method uses, checked in
        #: finish() once the registry module has been seen.
        self._uses: list[tuple[str, int, int, str, str]] = []
        self._observe_uses: list[tuple[str, int, int, str, str]] = []

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if module.relpath.endswith("core/stats.py"):
            self.registry = _extract_registry(module.tree, "METRICS")
            self.histogram_registry = _extract_registry(module.tree,
                                                        "HISTOGRAMS")
        for call in module.calls():
            method = call_name(call)
            if method not in _REGISTERED_METHODS and \
                    method not in _HISTOGRAM_METHODS and \
                    method not in _CONVENTION_ONLY_METHODS:
                continue
            if not _is_stats_receiver(call):
                continue
            if not call.args:
                continue
            arg = call.args[0]
            if not (isinstance(arg, ast.Constant) and
                    isinstance(arg.value, str)):
                continue  # dynamic names are the registry's blind spot
            metric = arg.value
            if not _NAME_RE.match(metric):
                yield module.finding(
                    "STAT001", self.name, call,
                    f"metric name {metric!r} violates the component.metric "
                    f"convention (lowercase dotted, >= 2 segments)",
                    detail=metric)
            elif method in _REGISTERED_METHODS:
                self._uses.append((module.relpath, call.lineno,
                                   call.col_offset, module.scope_of(call),
                                   metric))
            elif method in _HISTOGRAM_METHODS:
                self._observe_uses.append(
                    (module.relpath, call.lineno, call.col_offset,
                     module.scope_of(call), metric))

    def finish(self) -> Iterator[Finding]:
        if self.registry is not None:
            for path, line, column, scope, metric in self._uses:
                if metric in self.registry:
                    continue
                yield Finding(
                    code="STAT002", checker=self.name, path=path, line=line,
                    column=column, scope=scope, detail=metric,
                    message=(f"metric {metric!r} is not registered in "
                             f"repro.core.stats.METRICS — register it once "
                             f"there (or fix the typo)"))
        if self.histogram_registry is not None:
            for path, line, column, scope, metric in self._observe_uses:
                if metric in self.histogram_registry:
                    continue
                yield Finding(
                    code="STAT003", checker=self.name, path=path, line=line,
                    column=column, scope=scope, detail=metric,
                    message=(f"histogram {metric!r} is not registered in "
                             f"repro.core.stats.HISTOGRAMS — register it "
                             f"once there (or fix the typo)"))


def _extract_registry(tree: ast.Module, binding: str) -> set[str]:
    """Literal string members of a ``<binding> = frozenset({...})`` binding."""
    names: set[str] = set()
    for node in ast.walk(tree):
        target_names = []
        if isinstance(node, ast.Assign):
            target_names = [t.id for t in node.targets
                            if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                target_names = [node.target.id]
            value = node.value
        else:
            continue
        if binding not in target_names:
            continue
        for constant in ast.walk(value):
            if isinstance(constant, ast.Constant) and \
                    isinstance(constant.value, str):
                names.add(constant.value)
    return names
