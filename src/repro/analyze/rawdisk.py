"""Raw-disk bypass checker: all page I/O goes through the buffer pool.

The engine's reuse of relational infrastructure only measures (and only
recovers) what flows through the buffer pool: ``disk.page_reads`` /
``disk.page_writes`` stand in for physical I/O, eviction writeback keeps the
clean-only-after-write guarantee, and the WAL's log-before-flush discipline
is enforced at the pool boundary.  A component that touches the device's
page primitives directly bypasses all three.

**DISK001** flags calls to the :class:`~repro.rdb.storage.Disk` page
primitives (``read_page``, ``write_page``, ``raw_page``, ``corrupt_page``,
``allocate_page``) in any module other than the storage layer itself
(``repro/rdb/storage.py``), the buffer pool (``repro/rdb/buffer.py``) and
the fault injector's device wrapper (``repro/fault/disk.py``), which models
the hardware and must reach under the checksums by design.
"""

from __future__ import annotations

from typing import Iterator

from repro.analyze.findings import Finding
from repro.analyze.framework import (Checker, SourceModule, call_name,
                                     receiver_text)

_PRIMITIVES = {"read_page", "write_page", "raw_page", "corrupt_page",
               "allocate_page"}

#: path suffixes (posix, relative) allowed to touch the device directly.
_ALLOWED_SUFFIXES = (
    "repro/rdb/storage.py",
    "repro/rdb/buffer.py",
    "repro/fault/disk.py",
)


class RawDiskChecker(Checker):
    """DISK001: no component bypasses the buffer pool for page I/O."""

    name = "raw-disk"
    codes = ("DISK001",)
    description = ("only rdb.storage, rdb.buffer and fault.disk may call "
                   "disk page primitives directly")

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if module.relpath.endswith(_ALLOWED_SUFFIXES):
            return
        for call in module.calls():
            method = call_name(call)
            if method not in _PRIMITIVES:
                continue
            receiver = receiver_text(call)
            yield module.finding(
                "DISK001", self.name, call,
                f"{receiver or '<call>'}.{method}() bypasses the buffer "
                f"pool: page I/O outside rdb.storage/rdb.buffer/fault.disk "
                f"evades I/O accounting, eviction writeback and WAL "
                f"ordering", detail=f"{method}")
