"""Whole-program call graph over every analyzed :class:`SourceModule`.

The intraprocedural checkers of PR 3 see one function body at a time, so a
protocol violation routed through a helper (``_write_new`` calling a pinning
helper, a lock taken inside a utility invoked from an except handler) is
invisible to them.  This module builds the call graph the interprocedural
checkers and the effect-summary engine (:mod:`repro.analyze.effects`) walk.

Resolution rules — deliberately simple, each one either *precise* or a
documented approximation (see DESIGN.md "Interprocedural analysis"):

* ``self.m(...)`` / ``cls.m(...)`` — method ``m`` of the enclosing class if
  it defines one; otherwise the known base-class chain (matched by name) is
  searched; otherwise, conservatively, *every* class method named ``m`` in
  the program (the class may inherit from something outside the analyzed
  tree).
* plain ``f(...)`` — the module-level function ``f`` of the same module, or
  the function a ``from X import f`` binds (when ``X`` is an analyzed
  module).  A plain name that resolves to a known *class* resolves to that
  class's ``__init__``.
* ``ClassName.m(...)`` — method ``m`` of the named class (unbound call).
* ``obj.m(...)`` on any other receiver — **unresolved**.  Resolving by bare
  method name would conflate ``lines.append`` with ``LogManager.append`` and
  poison every summary; the runtime sanitizers cover this blind spot and
  :func:`repro.analyze.sanitize.cross_check_lock_summaries` cross-checks it.

Calls passed as values (callbacks), decorators and ``getattr`` dispatch are
not resolved — the same conservative direction: the graph may miss edges on
dynamic receivers but never invents impossible ones, so every reported call
path is a real path through the source.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from typing import Iterator

from repro.analyze.framework import SourceModule, call_name, receiver_text


def _method_table() -> dict[str, list["FunctionInfo"]]:
    """Picklable default factory for the per-class method index."""
    return defaultdict(list)


class FunctionInfo:
    """One function (or method) of the analyzed program."""

    def __init__(self, module: SourceModule,
                 node: ast.FunctionDef | ast.AsyncFunctionDef,
                 cls: str | None) -> None:
        self.module = module
        self.node = node
        self.cls = cls  # enclosing class name, None for module-level/nested
        scope = module.scope_of(node)
        self.qualname = f"{scope}.{node.name}" if scope else node.name
        #: program-wide identity: ``relpath::qualname``
        self.fid = f"{module.relpath}::{self.qualname}"

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def path(self) -> str:
        return self.module.relpath

    @property
    def line(self) -> int:
        return self.node.lineno

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"FunctionInfo({self.fid})"


class CallSite:
    """One resolved call edge: ``caller`` invokes ``callee`` at a line."""

    def __init__(self, caller: FunctionInfo, callee: FunctionInfo,
                 call: ast.Call) -> None:
        self.caller = caller
        self.callee = callee
        self.call = call
        self.line = call.lineno
        receiver = receiver_text(call)
        name = call_name(call)
        self.text = f"{receiver}.{name}" if receiver else name

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"CallSite({self.caller.qualname} -> "
                f"{self.callee.qualname} @{self.line})")


class CallGraph:
    """Functions indexed for resolution, plus the resolved edge set."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        #: caller fid -> resolved call sites, in source order
        self.callees_of: dict[str, list[CallSite]] = defaultdict(list)
        #: callee fid -> call sites targeting it
        self.callers_of: dict[str, list[CallSite]] = defaultdict(list)
        self._modules: list[SourceModule] = []
        #: (relpath, name) -> module-level function
        self._module_functions: dict[tuple[str, str], FunctionInfo] = {}
        #: class name -> {method name -> [FunctionInfo]} (name collisions
        #: across modules keep every candidate — conservative).  The
        #: factory is a named function so the graph stays picklable for
        #: the on-disk program cache.
        self._class_methods: dict[str, dict[str, list[FunctionInfo]]] = \
            defaultdict(_method_table)
        #: method name -> every class method with that name
        self._methods_by_name: dict[str, list[FunctionInfo]] = \
            defaultdict(list)
        #: class name -> base-class names (textual, first-match resolution)
        self._bases: dict[str, list[str]] = {}
        #: (relpath, local name) -> imported dotted source ("pkg.mod.f")
        self._imports: dict[tuple[str, str], str] = {}
        #: dotted module path guesses -> relpath of an analyzed module
        self._dotted_modules: dict[str, str] = {}

    # -- construction ------------------------------------------------------

    def add_module(self, module: SourceModule) -> None:
        """Index one module's functions, classes and imports."""
        self._modules.append(module)
        relpath = module.relpath
        dotted = relpath[:-3].replace("/", ".") if relpath.endswith(".py") \
            else relpath.replace("/", ".")
        self._dotted_modules[dotted] = relpath
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls = self._enclosing_class(module, node)
                info = FunctionInfo(module, node, cls)
                self.functions[info.fid] = info
                if cls is None and module.scope_of(node) == "":
                    self._module_functions[(relpath, node.name)] = info
                if cls is not None:
                    self._class_methods[cls][node.name].append(info)
                    self._methods_by_name[node.name].append(info)
            elif isinstance(node, ast.ClassDef):
                bases: list[str] = []
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        bases.append(base.id)
                    elif isinstance(base, ast.Attribute):
                        bases.append(base.attr)
                self._bases.setdefault(node.name, bases)
            elif isinstance(node, ast.ImportFrom) and node.module and \
                    node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._imports[(relpath, local)] = \
                        f"{node.module}.{alias.name}"

    @staticmethod
    def _enclosing_class(module: SourceModule,
                         node: ast.FunctionDef | ast.AsyncFunctionDef
                         ) -> str | None:
        """Name of the class this function is a direct method of."""
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor.name
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return None  # nested function, not a method
        return None

    def resolve(self) -> None:
        """Build the edge set once every module has been added."""
        for info in list(self.functions.values()):
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                if info.module.enclosing_function(node) is not info.node:
                    continue  # belongs to a nested function
                for callee in self.resolve_call(info, node):
                    site = CallSite(info, callee, node)
                    self.callees_of[info.fid].append(site)
                    self.callers_of[callee.fid].append(site)
        for sites in self.callees_of.values():
            sites.sort(key=lambda s: (s.line, s.call.col_offset))

    # -- resolution --------------------------------------------------------

    def resolve_call(self, caller: FunctionInfo,
                     call: ast.Call) -> list[FunctionInfo]:
        """Candidate callees of ``call`` (empty when unresolvable)."""
        name = call_name(call)
        if not name:
            return []
        receiver = receiver_text(call)
        if receiver == "":
            return self._resolve_plain(caller.module, name)
        if receiver in ("self", "cls") and caller.cls is not None:
            return self._resolve_self(caller.cls, name)
        if "." not in receiver and receiver in self._class_methods:
            # class-qualified call: ClassName.method(...)
            return list(self._class_methods[receiver].get(name, ()))
        return []  # arbitrary receiver: documented blind spot

    def _resolve_plain(self, module: SourceModule,
                       name: str) -> list[FunctionInfo]:
        local = self._module_functions.get((module.relpath, name))
        if local is not None:
            return [local]
        dotted = self._imports.get((module.relpath, name))
        if dotted is not None:
            source, _, original = dotted.rpartition(".")
            target = self._lookup_dotted(source)
            if target is not None:
                imported = self._module_functions.get((target, original))
                if imported is not None:
                    return [imported]
                # ``from mod import ClassName`` used as a constructor.
                ctor = self._constructor(original)
                if ctor:
                    return ctor
        if name in self._class_methods and \
                name not in self._methods_by_name:
            # bare ClassName(...) constructor call on a known class
            return self._constructor(name)
        return []

    def _constructor(self, class_name: str) -> list[FunctionInfo]:
        return list(self._class_methods.get(class_name, {}).get(
            "__init__", ()))

    def _lookup_dotted(self, dotted: str) -> str | None:
        """Relpath of the analyzed module a dotted import names, if any.

        Analysis roots rarely coincide with package roots, so the dotted
        name is matched by progressively dropping leading packages:
        ``repro.rdb.locks`` matches an analyzed ``repro/rdb/locks.py`` as
        well as ``src/repro/rdb/locks.py`` analyzed from the repo root.
        """
        parts = dotted.split(".")
        for start in range(len(parts)):
            suffix = ".".join(parts[start:])
            for known, relpath in self._dotted_modules.items():
                if known == suffix or known.endswith("." + suffix):
                    return relpath
        return None

    def _resolve_self(self, cls: str, name: str) -> list[FunctionInfo]:
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            methods = self._class_methods.get(current, {}).get(name)
            if methods:
                return list(methods)
            queue.extend(self._bases.get(current, ()))
        # The class (or a base outside the tree) may define it anywhere:
        # conservatively, every method with that name.
        return list(self._methods_by_name.get(name, ()))

    # -- lookups -----------------------------------------------------------

    def lookup(self, fid: str) -> FunctionInfo | None:
        return self.functions.get(fid)

    def by_qualname(self, qualname: str) -> list[FunctionInfo]:
        """Every function whose dotted qualname matches (any module)."""
        return [info for info in self.functions.values()
                if info.qualname == qualname]

    def iter_functions(self) -> Iterator[FunctionInfo]:
        return iter(self.functions.values())
