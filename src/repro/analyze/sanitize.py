"""Runtime invariant sanitizers: the dynamic half of ``repro.analyze``.

The static checkers prove what is visible in the AST; the sanitizers catch
what only shows up at runtime.  When armed (``REPRO_SANITIZE=1`` in the
environment, or :func:`enable`), the storage substrate turns its protocol
assumptions into hard assertions:

* **buffer pool** — double-unpin detection, and zero pinned frames at every
  transaction boundary and at ``Database.close``;
* **lock manager** — all locks of a transaction released at commit/abort,
  and the *witnessed* lock-acquisition order recorded per transaction so a
  runtime inversion (class B taken while A is held on one path, A-after-B
  on another) trips immediately and can be cross-checked against the static
  lock-order graph;
* **WAL** — LSN monotonicity across appends.

Every trip increments a ``sanitize.*`` counter on the component's stats
registry (so ``explain_analyze`` traces and experiment reports show them)
and raises :class:`~repro.errors.SanitizerError`.  Checks performed count
into ``sanitize.checks``: a sanitized run that did no checking is itself a
signal the wiring broke.

This module is imported by the substrate (buffer/locks/wal/txn), so it must
not import any engine component — only the error hierarchy.  All hooks are
no-ops while disarmed; the hot-path cost is one module-level bool test.
"""

from __future__ import annotations

import os
from collections import Counter, defaultdict
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import SanitizerError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.stats import StatsRegistry

_ENV_FLAG = "REPRO_SANITIZE"

#: armed state; resolved lazily from the environment on first query.
_enabled: bool | None = None

#: buffer pools created while armed (for end-of-test quiesce checks).
#: Strong references on purpose: a pool that leaked pins and then went out
#: of scope must still be visible at the checkpoint.  The harness clears
#: the set at every test boundary, so nothing accumulates.
_pools: set[object] = set()

#: per-transaction ordered list of distinct lock classes acquired.
_lock_classes: dict[int, list[str]] = {}
#: witnessed class graph: a -> set of b acquired while a was held.
_witnessed_edges: dict[str, set[str]] = defaultdict(set)
#: every lock class witnessed since the last reset (survives txn end, for
#: cross-checking against the static effect summaries).
_witnessed_classes: set[str] = set()


def enabled() -> bool:
    """Whether sanitizers are armed (env ``REPRO_SANITIZE`` or programmatic)."""
    global _enabled
    if _enabled is None:
        _enabled = os.environ.get(_ENV_FLAG, "").strip() not in ("", "0")
    return _enabled


def enable() -> None:
    """Arm the sanitizers for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Disarm the sanitizers and drop witnessed state."""
    global _enabled
    _enabled = False
    reset_witness()
    _pools.clear()


def trip(stats: "StatsRegistry", name: str, message: str) -> None:
    """Record a sanitizer trip and fail loudly.

    ``name`` becomes the counter ``sanitize.<name>``; the counter is bumped
    *before* raising so a harness that catches the error still sees the
    trip in its stats snapshot.
    """
    stats.add(f"sanitize.{name}")
    stats.trace_event(f"sanitize.{name}")
    raise SanitizerError(f"sanitizer [{name}]: {message}")


# -- buffer pool -----------------------------------------------------------

def register_pool(pool: object) -> None:
    """Track ``pool`` for quiesce checks (called from BufferPool.__init__)."""
    _pools.add(pool)


def tracked_pools() -> list[object]:
    """Live pools registered since the last :func:`clear_tracked_pools`."""
    return list(_pools)


def clear_tracked_pools() -> None:
    _pools.clear()


def check_pool_quiesced(pool: Any, stats: "StatsRegistry",
                        where: str = "txn end") -> None:
    """Assert no frame of ``pool`` is pinned (transaction boundary check)."""
    stats.add("sanitize.checks")
    pinned = pool.pinned_pages()
    if pinned:
        trip(stats, "pinned_at_txn_end",
             f"{len(pinned)} frame(s) still pinned at {where}: "
             f"pages {pinned[:8]} — some component lost an unpin")


# -- lock manager ----------------------------------------------------------

def classify_lock_resource(resource: object) -> str:
    """Runtime lock class of a resource (mirrors the static classifier)."""
    if isinstance(resource, tuple) and resource and \
            isinstance(resource[0], str):
        return resource[0]
    return type(resource).__name__


def on_lock_acquired(stats: "StatsRegistry", txn_id: int,
                     resource: object) -> None:
    """Witness one granted lock; trip on a runtime lock-order inversion."""
    lock_class = classify_lock_resource(resource)
    _witnessed_classes.add(lock_class)
    held = _lock_classes.setdefault(txn_id, [])
    if held and held[-1] == lock_class:
        return
    if lock_class in held:
        return  # re-acquisition of an earlier class: no new edge
    for earlier in held:
        _witnessed_edges[earlier].add(lock_class)
        if earlier in _witnessed_edges.get(lock_class, ()):
            trip(stats, "lock_order",
                 f"witnessed lock-order inversion: txn {txn_id} acquired "
                 f"{lock_class!r} while holding {earlier!r}, but another "
                 f"transaction acquired them in the opposite order — "
                 f"potential deadlock the static graph should also show")
    held.append(lock_class)


def on_locks_released(txn_id: int) -> None:
    _lock_classes.pop(txn_id, None)


def lock_witness_txns() -> list[int]:
    """Txn ids with live per-txn witness state.

    Every released/finished transaction must have been popped by
    :func:`on_locks_released`; a txn id lingering here after its program
    ended is a witness-state leak (the map grows for the whole process and
    later transactions inherit stale inversion context).  Tests assert this
    is empty after a workload quiesces.
    """
    return sorted(_lock_classes)


def check_txn_locks_released(locks: Any, txn_id: int,
                             stats: "StatsRegistry") -> None:
    """Assert the lock manager holds nothing for ``txn_id`` any more."""
    stats.add("sanitize.checks")
    held = locks.locks_held(txn_id)
    if held:
        trip(stats, "locks_at_txn_end",
             f"txn {txn_id} still holds {held} lock(s) after commit/abort — "
             f"release_all was skipped or raced")


def witnessed_edges() -> dict[str, set[str]]:
    """Copy of the witnessed lock-class graph (for cross-checks/tests)."""
    return {a: set(bs) for a, bs in _witnessed_edges.items() if bs}


def cross_check_static_order(static_edges: Iterable[tuple[str, str]]
                             ) -> list[str]:
    """Contradictions between witnessed runtime order and the static graph.

    Returns human-readable descriptions of witnessed edges whose *reverse*
    appears in the static graph: runtime behaviour the static analysis
    would call a cycle.  Empty list = the two views agree.
    """
    static = {(a, b) for a, b in static_edges}
    contradictions: list[str] = []
    for a, successors in _witnessed_edges.items():
        for b in successors:
            if (b, a) in static:
                contradictions.append(
                    f"runtime acquired {a!r} before {b!r} but the static "
                    f"graph orders {b!r} before {a!r}")
    return sorted(contradictions)


def cross_check_lock_summaries(static_classes: Iterable[str]) -> list[str]:
    """Witnessed lock classes invisible to the static effect summaries.

    ``static_classes`` is every classified lock class the effect analysis
    (:class:`repro.analyze.effects.EffectAnalysis.all_lock_classes`) proved
    some function may acquire.  A class witnessed at runtime but absent
    statically means an acquisition site the call graph could not see —
    a dynamic receiver, a callback, an unclassifiable resource — i.e. a
    concrete instance of the analyzer's documented blind spot.  Empty list
    = every runtime acquisition is statically accounted for.
    """
    static = set(static_classes)
    return sorted(
        f"runtime witnessed lock class {cls!r} that no static effect "
        f"summary acquires — an acquisition site the call graph cannot see"
        for cls in _witnessed_classes if cls not in static)


def reset_witness() -> None:
    """Forget witnessed lock order (between tests/workloads)."""
    _lock_classes.clear()
    _witnessed_edges.clear()
    _witnessed_classes.clear()


# -- accounting ------------------------------------------------------------

def check_accounting_caps(stats: "StatsRegistry",
                          records: Iterable[Any]) -> None:
    """Assert per-txn accounting never over-charges the global counters.

    ``records`` are accounting records (anything with a ``counters`` dict).
    For every counter, the sum charged across transactions must be bounded
    by the global counter: per-txn sinks only ever mirror global
    increments, so a sum *exceeding* the global total means work was
    double-attributed — the failure mode of a racy sink under concurrent
    sessions (the thread-local-sink design exists to prevent exactly
    this).  The serving layer runs this check when it drains.
    """
    stats.add("sanitize.checks")
    totals: Counter[str] = Counter()
    for record in records:
        totals.update(record.counters)
    for name, charged in sorted(totals.items()):
        total = stats.get(name)
        if charged > total:
            trip(stats, "accounting_overcharge",
                 f"accounting records charge {charged} of {name!r} but the "
                 f"global counter only saw {total} — per-txn attribution "
                 f"double-counted under concurrency")


# -- WAL -------------------------------------------------------------------

def check_lsn_monotonic(stats: "StatsRegistry", last_lsn: int,
                        lsn: int) -> None:
    """Assert ``lsn`` advances past ``last_lsn`` (called on append)."""
    stats.add("sanitize.checks")
    if lsn <= last_lsn:
        trip(stats, "lsn_regression",
             f"WAL LSN regressed: append produced lsn {lsn} after "
             f"{last_lsn} — log ordering is broken")
