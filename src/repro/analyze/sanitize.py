"""Runtime invariant sanitizers: the dynamic half of ``repro.analyze``.

The static checkers prove what is visible in the AST; the sanitizers catch
what only shows up at runtime.  When armed (``REPRO_SANITIZE=1`` in the
environment, or :func:`enable`), the storage substrate turns its protocol
assumptions into hard assertions:

* **buffer pool** — double-unpin detection, and zero pinned frames at every
  transaction boundary and at ``Database.close``;
* **lock manager** — all locks of a transaction released at commit/abort,
  and the *witnessed* lock-acquisition order recorded per transaction so a
  runtime inversion (class B taken while A is held on one path, A-after-B
  on another) trips immediately and can be cross-checked against the static
  lock-order graph;
* **WAL** — LSN monotonicity across appends;
* **thread-shared state** — an Eraser-style lockset discipline: latches
  wrapped in :class:`TrackedLock` record per-thread held sets, registered
  shared structures report every access via :func:`shared_access`, and a
  field modified by two threads with no latch in common trips
  ``sanitize.race.lockset`` — the dynamic counterpart of the static
  ``RACE001`` guard inference (and :func:`cross_check_field_guards` makes
  the two views confront each other).

Every trip increments a ``sanitize.*`` counter on the component's stats
registry (so ``explain_analyze`` traces and experiment reports show them)
and raises :class:`~repro.errors.SanitizerError`.  Checks performed count
into ``sanitize.checks``: a sanitized run that did no checking is itself a
signal the wiring broke.

This module is imported by the substrate (buffer/locks/wal/txn), so it must
not import any engine component — only the error hierarchy.  All hooks are
no-ops while disarmed; the hot-path cost is one module-level bool test.
"""

from __future__ import annotations

import os
import threading
from collections import Counter, defaultdict
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import SanitizerError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.stats import StatsRegistry

_ENV_FLAG = "REPRO_SANITIZE"

#: armed state; resolved lazily from the environment on first query.
_enabled: bool | None = None

#: buffer pools created while armed (for end-of-test quiesce checks).
#: Strong references on purpose: a pool that leaked pins and then went out
#: of scope must still be visible at the checkpoint.  The harness clears
#: the set at every test boundary, so nothing accumulates.
_pools: set[object] = set()

#: per-transaction ordered list of distinct lock classes acquired.
_lock_classes: dict[int, list[str]] = {}
#: witnessed class graph: a -> set of b acquired while a was held.
_witnessed_edges: dict[str, set[str]] = defaultdict(set)
#: every lock class witnessed since the last reset (survives txn end, for
#: cross-checking against the static effect summaries).
_witnessed_classes: set[str] = set()


def enabled() -> bool:
    """Whether sanitizers are armed (env ``REPRO_SANITIZE`` or programmatic)."""
    global _enabled
    if _enabled is None:
        _enabled = os.environ.get(_ENV_FLAG, "").strip() not in ("", "0")
    return _enabled


def enable() -> None:
    """Arm the sanitizers for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Disarm the sanitizers and drop witnessed state."""
    global _enabled
    _enabled = False
    reset_witness()
    _pools.clear()


def trip(stats: "StatsRegistry", name: str, message: str) -> None:
    """Record a sanitizer trip and fail loudly.

    ``name`` becomes the counter ``sanitize.<name>``; the counter is bumped
    *before* raising so a harness that catches the error still sees the
    trip in its stats snapshot.
    """
    stats.add(f"sanitize.{name}")
    stats.trace_event(f"sanitize.{name}")
    raise SanitizerError(f"sanitizer [{name}]: {message}")


# -- buffer pool -----------------------------------------------------------

def register_pool(pool: object) -> None:
    """Track ``pool`` for quiesce checks (called from BufferPool.__init__)."""
    _pools.add(pool)


def tracked_pools() -> list[object]:
    """Live pools registered since the last :func:`clear_tracked_pools`."""
    return list(_pools)


def clear_tracked_pools() -> None:
    _pools.clear()


def check_pool_quiesced(pool: Any, stats: "StatsRegistry",
                        where: str = "txn end",
                        scope: str = "global") -> None:
    """Assert no frame of ``pool`` is pinned (transaction boundary check).

    ``scope="thread"`` restricts the probe to pins taken by the calling
    thread (:meth:`BufferPool.pinned_by_caller`) — the right scope at the
    end of a *transaction*, which runs on one thread: a concurrent pin
    from a latch-free monitor snapshot on another thread is transient,
    not this transaction's leak.  Shutdown checks keep the global scope
    (every thread must have quiesced by then).
    """
    stats.add("sanitize.checks")
    if scope == "thread" and hasattr(pool, "pinned_by_caller"):
        pinned = pool.pinned_by_caller()
    else:
        pinned = pool.pinned_pages()
    if pinned:
        trip(stats, "pinned_at_txn_end",
             f"{len(pinned)} frame(s) still pinned at {where}: "
             f"pages {pinned[:8]} — some component lost an unpin")


# -- lock manager ----------------------------------------------------------

def classify_lock_resource(resource: object) -> str:
    """Runtime lock class of a resource (mirrors the static classifier)."""
    if isinstance(resource, tuple) and resource and \
            isinstance(resource[0], str):
        return resource[0]
    return type(resource).__name__


def on_lock_acquired(stats: "StatsRegistry", txn_id: int,
                     resource: object) -> None:
    """Witness one granted lock; trip on a runtime lock-order inversion."""
    lock_class = classify_lock_resource(resource)
    _witnessed_classes.add(lock_class)
    held = _lock_classes.setdefault(txn_id, [])
    if held and held[-1] == lock_class:
        return
    if lock_class in held:
        return  # re-acquisition of an earlier class: no new edge
    for earlier in held:
        _witnessed_edges[earlier].add(lock_class)
        if earlier in _witnessed_edges.get(lock_class, ()):
            trip(stats, "lock_order",
                 f"witnessed lock-order inversion: txn {txn_id} acquired "
                 f"{lock_class!r} while holding {earlier!r}, but another "
                 f"transaction acquired them in the opposite order — "
                 f"potential deadlock the static graph should also show")
    held.append(lock_class)


def on_locks_released(txn_id: int) -> None:
    _lock_classes.pop(txn_id, None)


def lock_witness_txns() -> list[int]:
    """Txn ids with live per-txn witness state.

    Every released/finished transaction must have been popped by
    :func:`on_locks_released`; a txn id lingering here after its program
    ended is a witness-state leak (the map grows for the whole process and
    later transactions inherit stale inversion context).  Tests assert this
    is empty after a workload quiesces.
    """
    return sorted(_lock_classes)


def check_txn_locks_released(locks: Any, txn_id: int,
                             stats: "StatsRegistry") -> None:
    """Assert the lock manager holds nothing for ``txn_id`` any more."""
    stats.add("sanitize.checks")
    held = locks.locks_held(txn_id)
    if held:
        trip(stats, "locks_at_txn_end",
             f"txn {txn_id} still holds {held} lock(s) after commit/abort — "
             f"release_all was skipped or raced")


def witnessed_edges() -> dict[str, set[str]]:
    """Copy of the witnessed lock-class graph (for cross-checks/tests)."""
    return {a: set(bs) for a, bs in _witnessed_edges.items() if bs}


def cross_check_static_order(static_edges: Iterable[tuple[str, str]]
                             ) -> list[str]:
    """Contradictions between witnessed runtime order and the static graph.

    Returns human-readable descriptions of witnessed edges whose *reverse*
    appears in the static graph: runtime behaviour the static analysis
    would call a cycle.  Empty list = the two views agree.
    """
    static = {(a, b) for a, b in static_edges}
    contradictions: list[str] = []
    for a, successors in _witnessed_edges.items():
        for b in successors:
            if (b, a) in static:
                contradictions.append(
                    f"runtime acquired {a!r} before {b!r} but the static "
                    f"graph orders {b!r} before {a!r}")
    return sorted(contradictions)


def cross_check_lock_summaries(static_classes: Iterable[str]) -> list[str]:
    """Witnessed lock classes invisible to the static effect summaries.

    ``static_classes`` is every classified lock class the effect analysis
    (:class:`repro.analyze.effects.EffectAnalysis.all_lock_classes`) proved
    some function may acquire.  A class witnessed at runtime but absent
    statically means an acquisition site the call graph could not see —
    a dynamic receiver, a callback, an unclassifiable resource — i.e. a
    concrete instance of the analyzer's documented blind spot.  Empty list
    = every runtime acquisition is statically accounted for.
    """
    static = set(static_classes)
    return sorted(
        f"runtime witnessed lock class {cls!r} that no static effect "
        f"summary acquires — an acquisition site the call graph cannot see"
        for cls in _witnessed_classes if cls not in static)


def reset_witness() -> None:
    """Forget witnessed lock order, locksets and resource flows."""
    _lock_classes.clear()
    _witnessed_edges.clear()
    _witnessed_classes.clear()
    _witnessed_flows.clear()
    with _field_states_lock:
        _field_states.clear()


# -- Eraser-style lockset discipline ---------------------------------------
#
# The dynamic counterpart of the RACE001 latch inference: instrumented
# shared structures report every access together with the set of tracked
# latches the accessing thread holds.  Per field the sanitizer maintains the
# classic Eraser state machine (virgin -> exclusive -> shared ->
# shared-modified) and a *candidate lockset* — the intersection of the held
# sets across all post-exclusive accesses.  A field in shared-modified state
# whose candidate set goes empty has no latch that consistently protects it:
# that is a data race witnessed at runtime, regardless of whether the racy
# schedule actually interleaved badly on this run.

#: thread-local stack of TrackedLock tokens the current thread holds.
_held_locks = threading.local()

_VIRGIN, _EXCLUSIVE, _SHARED, _SHARED_MODIFIED = range(4)
_STATE_NAMES = {_VIRGIN: "virgin", _EXCLUSIVE: "exclusive",
                _SHARED: "shared", _SHARED_MODIFIED: "shared-modified"}


def _held_tokens() -> list[str]:
    tokens: list[str] | None = getattr(_held_locks, "tokens", None)
    if tokens is None:
        tokens = []
        _held_locks.tokens = tokens
    return tokens


def held_lock_tokens() -> tuple[str, ...]:
    """Tokens of every :class:`TrackedLock` the calling thread holds."""
    return tuple(_held_tokens())


class TrackedLock:
    """A latch whose ownership the lockset sanitizer can see.

    Wraps a ``threading.Lock`` (or ``RLock`` — re-entrant acquisitions push
    the token once per level) and records its *token* in a thread-local
    stack while held, so :func:`shared_access` can intersect candidate
    locksets against what the accessing thread actually holds.  The token
    is a stable name ("db.latch", "server._state_lock"), not the instance:
    stripe latches share one token per stripe *family*, which is exactly
    the granularity the static guard inference works at.

    Supports the same surface the engine uses on its latches: ``with``,
    explicit ``acquire``/``release`` (the serving layer's ``_latch_sleep``
    releases the engine latch around a sleep), and nothing else.  On a
    failed/raising ``release`` the token is *kept* — the underlying lock is
    still held, and the caller's RuntimeError handling must see a truthful
    held-stack.
    """

    __slots__ = ("token", "_lock")

    def __init__(self, token: str, lock: Any = None) -> None:
        self.token = token
        self._lock = lock if lock is not None else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired and enabled():
            _held_tokens().append(self.token)
        return acquired

    def release(self) -> None:
        self._lock.release()  # raises first: an unowned latch pops nothing
        tokens = _held_tokens()
        for index in range(len(tokens) - 1, -1, -1):
            if tokens[index] == self.token:
                del tokens[index]
                break

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class _FieldState:
    """Eraser per-field record: state machine + candidate lockset.

    ``lockset`` holds the *first* accessor's held set while the field is
    still exclusive (reported, never refined — a single-threaded
    initialization phase that writes latch-free is benign), and becomes
    the refining candidate set only once a second thread appears: Eraser's
    C(v) starts as the universal set, so the first post-exclusive access
    *replaces* rather than intersects.
    """

    __slots__ = ("state", "owner", "lockset", "tripped")

    def __init__(self, owner: int, lockset: frozenset[str]) -> None:
        self.state = _EXCLUSIVE
        self.owner = owner
        self.lockset = lockset
        self.tripped = False


#: per-(structure, field) Eraser records; guarded by a plain (untracked)
#: lock — the sanitizer must not witness its own bookkeeping.
_field_states: dict[tuple[str, str], _FieldState] = {}
_field_states_lock = threading.Lock()


def shared_access(stats: "StatsRegistry", struct: str, field: str,
                  write: bool, extra_held: tuple[str, ...] = ()) -> None:
    """Witness one access to a registered shared field.

    Call sites place this *inside* the latch region that protects the
    access (or deliberately outside one, for accesses whose safety rests
    on an ambient-latch claim — that is what the cross-check validates).
    Trips ``sanitize.race.lockset`` once per field when the candidate set
    empties in shared-modified state.

    ``extra_held`` names latches the caller verifiably held *during* the
    access but has already released by the time it can report — the stats
    registry's own whole-map operations use it, because reporting from
    inside their stripe region would recurse into ``stats.add`` against
    non-reentrant stripe locks.
    """
    if not enabled():
        return
    stats.add("sanitize.checks")
    thread_id = threading.get_ident()
    held = frozenset(_held_tokens()).union(extra_held)
    message: str | None = None
    with _field_states_lock:
        record = _field_states.get((struct, field))
        if record is None:
            _field_states[(struct, field)] = _FieldState(thread_id, held)
            return
        if record.state == _EXCLUSIVE and record.owner == thread_id:
            return  # still single-threaded: Eraser defers judgement
        if record.state == _EXCLUSIVE:
            record.state = _SHARED_MODIFIED if write else _SHARED
            # C(v) was universal through the exclusive phase; refinement
            # starts with this first second-thread access.
            record.lockset = held
        else:
            if write:
                record.state = _SHARED_MODIFIED
            record.lockset = record.lockset & held
        if record.state == _SHARED_MODIFIED and not record.lockset \
                and not record.tripped:
            record.tripped = True
            message = (
                f"no latch consistently guards {struct}.{field}: this "
                f"{'write' if write else 'read'} holds "
                f"{sorted(held) if held else 'no tracked latch'} and the "
                f"candidate lockset is now empty — a second thread has "
                f"modified the field with a disjoint (or no) latch held")
    if message is not None:
        trip(stats, "race.lockset", message)


def witnessed_locksets() -> dict[tuple[str, str], frozenset[str]]:
    """Candidate lockset per witnessed (structure, field), post-exclusive.

    Fields still in their exclusive (single-thread) phase report the
    initial holder's lockset; a field that tripped reports ``frozenset()``.
    """
    with _field_states_lock:
        return {key: frozenset(record.lockset)
                for key, record in _field_states.items()}


def witnessed_field_states() -> dict[tuple[str, str], str]:
    """Eraser state name per witnessed (structure, field) — for tests."""
    with _field_states_lock:
        return {key: _STATE_NAMES[record.state]
                for key, record in _field_states.items()}


def _token_tail(token: str) -> str:
    """Last dotted segment of a latch token, call suffix stripped.

    Static guard tokens look like ``db.latch`` or ``_lock_for()``; runtime
    TrackedLock tokens like ``db.latch`` or ``server._state_lock``.  Tails
    are the comparable part.
    """
    if token.endswith("()"):
        token = token[:-2]
    return token.rsplit(".", 1)[-1]


def cross_check_field_guards(
        static_guards: Iterable[tuple[str, str, str]]) -> list[str]:
    """Static guard inference vs. runtime locksets; returns discrepancies.

    ``static_guards`` is ``(class, field, guard_token)`` triples — what
    :class:`repro.analyze.threads.ThreadAnalysis` inferred protects each
    shared field.  For every triple whose field was witnessed at runtime,
    the inferred guard must appear (by token tail) in the field's candidate
    lockset.  A miss means the two views disagree: either the static
    inference named the wrong latch, or the runtime instrumentation sits
    outside the region the analysis looked at.  Empty list = agreement.
    """
    locksets = witnessed_locksets()
    discrepancies: list[str] = []
    for cls, field, guard in static_guards:
        lockset = locksets.get((cls, field))
        if lockset is None:
            continue  # not exercised at runtime: nothing to compare
        wanted = _token_tail(guard)
        if not any(_token_tail(token) == wanted for token in lockset):
            discrepancies.append(
                f"static analysis infers {cls}.{field} is guarded by "
                f"{guard!r} but the runtime candidate lockset is "
                f"{sorted(lockset)} — the witnessed accesses never hold it")
    return sorted(discrepancies)


# -- accounting ------------------------------------------------------------

def check_accounting_caps(stats: "StatsRegistry",
                          records: Iterable[Any]) -> None:
    """Assert per-txn accounting never over-charges the global counters.

    ``records`` are accounting records (anything with a ``counters`` dict).
    For every counter, the sum charged across transactions must be bounded
    by the global counter: per-txn sinks only ever mirror global
    increments, so a sum *exceeding* the global total means work was
    double-attributed — the failure mode of a racy sink under concurrent
    sessions (the thread-local-sink design exists to prevent exactly
    this).  The serving layer runs this check when it drains.
    """
    stats.add("sanitize.checks")
    totals: Counter[str] = Counter()
    for record in records:
        totals.update(record.counters)
    for name, charged in sorted(totals.items()):
        total = stats.get(name)
        if charged > total:
            trip(stats, "accounting_overcharge",
                 f"accounting records charge {charged} of {name!r} but the "
                 f"global counter only saw {total} — per-txn attribution "
                 f"double-counted under concurrency")


def check_wait_reconcile(stats: "StatsRegistry", wait_us: int,
                         elapsed_us: int) -> None:
    """Assert a wait clock's per-class waits fit inside its elapsed time.

    ``wait_us`` is the sum over the clock's per-class breakdown;
    ``elapsed_us`` the clock's own wall-clock span.  Wait regions are
    non-overlapping sub-intervals of the clocked interval measured on the
    same monotonic clock and the same thread, and each charge rounds down
    to whole microseconds, so Σ waits ≤ elapsed holds *mathematically* for
    correct instrumentation — a violation means a suspension was charged
    twice (nested ``wait_timer`` regions) or charged from a thread the
    clock does not cover.  The registry's ``request_clock`` runs this on
    every exit while sanitizers are armed.
    """
    stats.add("sanitize.checks")
    if wait_us > elapsed_us:
        trip(stats, "waits.reconcile",
             f"wait clock charged {wait_us}us of suspensions into an "
             f"interval only {elapsed_us}us long — a wait class was "
             f"double-charged (nested wait_timer?) or charged from a "
             f"thread this clock does not cover")


# -- WAL -------------------------------------------------------------------

def check_lsn_monotonic(stats: "StatsRegistry", last_lsn: int,
                        lsn: int) -> None:
    """Assert ``lsn`` advances past ``last_lsn`` (called on append)."""
    stats.add("sanitize.checks")
    if lsn <= last_lsn:
        trip(stats, "lsn_regression",
             f"WAL LSN regressed: append produced lsn {lsn} after "
             f"{last_lsn} — log ordering is broken")


# -- shard stamps ----------------------------------------------------------
#
# The dynamic counterpart of the SHARD001–004 resource-flow checkers
# (repro.analyze.resources).  Every poolable resource bundled into a
# ShardContext is stamped with the context's shard_id at construction;
# storage components built *with* a context inherit the stamp of the pool
# they were handed.  check_shard_mix sits at the engine sites where several
# resources combine (store insert, checkpoint trickle, ...) and trips
# ``sanitize.shard.mix`` the moment two stamps disagree — the runtime shape
# of the future cross-shard bug SHARD002 hunts statically.  Each check also
# witnesses a (site, resource-kind) flow, so cross_check_resource_footprints
# can confront the witnessed flows with the statically computed footprints,
# exactly like the lockset/guard cross-checks above.

_SHARD_ATTR = "_repro_shard_id"

#: runtime class name -> resource kind (mirrors the static classifier in
#: repro.analyze.resources; subclasses match through the MRO).
_RESOURCE_CLASS_KINDS = {
    "BufferPool": "pool",
    "LogManager": "log",
    "LockManager": "locks",
    "Catalog": "catalog",
    "StatsRegistry": "stats",
    "TableSpace": "tablespace",
    "BTree": "index",
    "NodeIdIndex": "index",
    "XPathValueIndex": "index",
}

#: witnessed (site qualname, resource kind) flows since the last reset.
_witnessed_flows: set[tuple[str, str]] = set()


def classify_resource(resource: object) -> str | None:
    """Resource kind of ``resource`` by class name, or ``None``."""
    for base in type(resource).__mro__:
        kind = _RESOURCE_CLASS_KINDS.get(base.__name__)
        if kind is not None:
            return kind
    return None


def stamp_shard(resource: object, shard_id: int) -> None:
    """Stamp ``resource`` as belonging to shard ``shard_id``.

    Stamps are inert metadata (one attribute), set unconditionally so a
    test can arm the sanitizers *after* engine construction and still get
    meaningful mix checks.  Restamping with the same id is idempotent;
    restamping with a different id is itself a wiring bug and raises.
    """
    current = getattr(resource, _SHARD_ATTR, None)
    if current is not None and current != shard_id:
        raise SanitizerError(
            f"resource {type(resource).__name__} already stamped for shard "
            f"{current}, cannot restamp for shard {shard_id} — one resource "
            f"bundled into two contexts")
    try:
        setattr(resource, _SHARD_ATTR, shard_id)
    except AttributeError:  # pragma: no cover - slotted resource class
        pass


def shard_stamp(resource: object) -> int | None:
    """The shard id stamped on ``resource``, or ``None`` if unstamped."""
    stamp = getattr(resource, _SHARD_ATTR, None)
    return stamp if isinstance(stamp, int) else None


def inherit_shard(resource: object, source: object) -> None:
    """Stamp ``resource`` with the shard id of ``source`` (if any).

    Called by storage components at construction: a table space built over
    a stamped pool belongs to that pool's shard.
    """
    stamp = shard_stamp(source)
    if stamp is not None:
        stamp_shard(resource, stamp)


def check_shard_mix(stats: "StatsRegistry", where: str,
                    *resources: object) -> None:
    """Witness one multi-resource operation; trip on cross-shard mixing.

    ``where`` is the qualified name of the operation (``Class.method``) —
    it must match the static analysis's function naming so the footprint
    cross-check can join the two views.  ``resources`` are the engine
    resources the operation is about to combine; ``None`` entries are
    skipped so call sites can pass optional collaborators unconditionally.
    """
    if not enabled():
        return
    stats.add("sanitize.checks")
    stamps: dict[int, str] = {}
    for resource in resources:
        if resource is None:
            continue
        kind = classify_resource(resource)
        if kind is not None:
            _witnessed_flows.add((where, kind))
        stamp = shard_stamp(resource)
        if stamp is not None:
            stamps.setdefault(stamp, type(resource).__name__)
    if len(stamps) > 1:
        described = ", ".join(
            f"shard {stamp} ({cls})" for stamp, cls in sorted(stamps.items()))
        trip(stats, "shard.mix",
             f"{where} combines resources stamped for different shards: "
             f"{described} — a cross-shard flow the shard context should "
             f"have prevented")


def witnessed_resource_flows() -> set[tuple[str, str]]:
    """Copy of the witnessed (site, kind) flows (for cross-checks/tests)."""
    return set(_witnessed_flows)


def cross_check_resource_footprints(
        static_footprints: "Iterable[tuple[str, Iterable[str]]] | "
                           "dict[str, Iterable[str]]") -> list[str]:
    """Witnessed resource flows the static footprints cannot account for.

    ``static_footprints`` maps function qualnames to the resource kinds the
    static analysis (:meth:`repro.analyze.resources.ResourceAnalysis.
    footprint_map`) proved may reach them.  A flow witnessed at runtime at a
    site the analysis knows, but of a kind absent from that site's static
    footprint, means a resource reached the operation through a path the
    call graph could not see — the resource-flow analogue of
    :func:`cross_check_lock_summaries`.  Sites unknown to the analysis are
    reported too: the runtime check names a function the static side never
    summarized, so one of the two views is mis-wired.  Empty list =
    agreement.
    """
    if isinstance(static_footprints, dict):
        items = static_footprints.items()
    else:
        items = static_footprints
    static: dict[str, set[str]] = {name: set(kinds) for name, kinds in items}
    discrepancies: list[str] = []
    for where, kind in sorted(_witnessed_flows):
        kinds = static.get(where)
        if kinds is None:
            discrepancies.append(
                f"runtime witnessed a {kind!r} flow at {where!r} but the "
                f"static analysis has no footprint for that function — "
                f"check-site naming and the call graph disagree")
        elif kind not in kinds:
            discrepancies.append(
                f"runtime witnessed a {kind!r} flow at {where!r} but its "
                f"static footprint only covers {sorted(kinds)} — a resource "
                f"reached the operation through a path the analysis "
                f"cannot see")
    return discrepancies
