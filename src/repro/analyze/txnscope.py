"""Transaction-scope checker: public mutators must run inside a transaction.

Every durable state change in this engine is witnessed by a WAL append — the
recovery protocol replays only what the log records, so a mutation reached
from a public :class:`~repro.core.engine.Database` entry point with *no
transaction in scope* writes log records against whatever transaction id
happens to be lying around (or none), and crash recovery cannot attribute
it.  The discipline is structural:

* an entry point either **establishes** a scope (calls ``begin`` /
  ``run_in_txn``) or **receives** one (takes a ``txn`` / ``txn_id``
  parameter — the caller owns the scope); and
* autonomous DDL is exempt: an append whose first argument is the literal
  ``-1`` is the engine's documented out-of-band record (schema/catalog
  operations journal themselves outside any transaction).

**TXN001** fires when a public ``Database`` method with neither form of
scope transitively reaches a primitive WAL append (excluding ``-1``
records) through the call graph — the reachability walk stops at any
callee that establishes or receives a scope, so delegation to transactional
helpers is not flagged.  ``--explain`` prints the call chain from the entry
point down to the offending append.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze import effects as fx
from repro.analyze.callgraph import CallGraph, FunctionInfo
from repro.analyze.findings import Finding
from repro.analyze.framework import Checker, Program, call_name

#: classes whose public methods are the engine's entry-point surface.
_ENTRY_CLASSES = {"Database"}
#: parameters whose presence means the caller passes a transaction scope.
_TXN_PARAMS = {"txn", "txn_id"}
#: calls that establish a transaction scope.
_SCOPE_CALLS = {"begin", "run_in_txn"}


class TxnScopeChecker(Checker):
    """TXN001: public entry points must not mutate outside a txn scope."""

    name = "txn-scope"
    codes = ("TXN001",)
    description = ("public Database entry points reaching a WAL append must "
                   "establish or receive a transaction scope")
    code_descriptions = {
        "TXN001": "public entry point reaches a WAL append with no "
                  "transaction in scope on the path",
    }

    def __init__(self) -> None:
        self._program: Program | None = None

    def begin(self, program: Program) -> None:
        self._program = program

    def finish(self) -> Iterator[Finding]:
        if self._program is None:  # pragma: no cover - driver always begins
            return
        graph = self._program.callgraph()
        for info in graph.iter_functions():
            if info.cls not in _ENTRY_CLASSES:
                continue
            if info.name.startswith("_"):
                continue  # only the public surface is an entry point
            if self._has_scope(info):
                continue
            trail = self._find_unscoped_append(info, graph)
            if trail is None:
                continue
            chain, append_call = trail
            yield info.module.finding(
                "TXN001", self.name, info.node,
                f"public entry point {info.cls}.{info.name}() reaches a WAL "
                f"append at {chain[-1].split(':', 2)[0]}:"
                f"{append_call.lineno} with no transaction in scope: it "
                f"neither takes a txn/txn_id parameter nor calls "
                f"begin()/run_in_txn(), so the mutation is unattributable "
                f"at recovery",
                detail=f"{info.cls}.{info.name}",
                call_path=tuple(chain))

    # -- scope and reachability --------------------------------------------

    def _has_scope(self, info: FunctionInfo) -> bool:
        """Does ``info`` establish or receive a transaction scope?"""
        args = info.node.args
        names = {a.arg for a in args.args + args.posonlyargs +
                 args.kwonlyargs}
        if names & _TXN_PARAMS:
            return True
        for call in self._own_calls(info):
            if call_name(call) in _SCOPE_CALLS:
                return True
        return False

    def _find_unscoped_append(self, start: FunctionInfo, graph: CallGraph
                              ) -> tuple[list[str], ast.Call] | None:
        """BFS from ``start`` to a primitive non-DDL WAL append.

        Descent stops at scope barriers (callees that establish or receive
        a scope) — a mutation below a barrier is the barrier's business.
        Returns the rendered call chain and the append call, or None.
        """
        queue: list[tuple[FunctionInfo, list[str]]] = [(start, [])]
        visited = {start.fid}
        while queue:
            info, chain = queue.pop(0)
            append = self._direct_append(info)
            if append is not None:
                receiver = call_name(append)
                step = (f"{info.path}:{append.lineno}: {info.qualname}: "
                        f"{receiver}() writes WAL outside any txn scope")
                return chain + [step], append
            for site in graph.callees_of.get(info.fid, []):
                callee = site.callee
                if callee.fid in visited:
                    continue
                visited.add(callee.fid)
                if self._has_scope(callee):
                    continue  # barrier: scope established or delegated
                step = (f"{info.path}:{site.line}: {info.qualname} calls "
                        f"{site.text}()")
                queue.append((callee, chain + [step]))
        return None

    def _direct_append(self, info: FunctionInfo) -> ast.Call | None:
        """First primitive WAL append of ``info``, minus ``-1`` DDL records."""
        for call in self._own_calls(info):
            name = call_name(call)
            if name not in ("append", "checkpoint", "log"):
                continue
            if not fx.is_log_receiver(call):
                continue
            if self._is_autonomous_ddl(call):
                continue
            return call
        return None

    @staticmethod
    def _is_autonomous_ddl(call: ast.Call) -> bool:
        """``log.append(-1, ...)``: documented out-of-band DDL record."""
        if not call.args:
            return False
        first = call.args[0]
        if isinstance(first, ast.UnaryOp) and \
                isinstance(first.op, ast.USub) and \
                isinstance(first.operand, ast.Constant) and \
                first.operand.value == 1:
            return True
        return isinstance(first, ast.Constant) and first.value == -1

    @staticmethod
    def _own_calls(info: FunctionInfo) -> Iterator[ast.Call]:
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call) and \
                    info.module.enclosing_function(node) is info.node:
                yield node
