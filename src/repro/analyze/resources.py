"""Instance-sensitive resource-flow analysis: is the engine shard-ready?

A shard-per-member engine (DB2 data-sharing style: one buffer pool, one
log, one lock structure per member, coordinated through group facilities)
can only be carved out of a single-node engine if every component reaches
its poolable resources — buffer pool, WAL, lock manager, catalog, stats
sink — through an *explicit* handle: a constructor capture it declared, a
parameter, or a :class:`repro.core.context.ShardContext` capability
bundle.  A component that reaches ``self.db.pool`` or a module global
instead is wired to *the* engine, and silently breaks the moment a second
shard exists.

This module classifies every resource reach in the program:

* **explicit** — rooted at ``self.<declared field>``, at a resource-kind
  parameter, at a context parameter/field (``context.pool``), or reached
  through another explicit resource (``self.pool.stats`` is the pool's
  own sink);
* **ambient** — the chain crosses a component boundary before reaching
  the resource (``self.db.pool``, ``manager.locks``) or roots at a
  module-level singleton defined elsewhere (``GLOBAL_STATS``).

Per-function *footprints* (kind -> explicit/ambient/mixed) are computed
directly and propagated to a fixpoint over the call graph, mirroring
:mod:`repro.analyze.effects`; :meth:`ResourceFlowAnalysis.footprint_map`
exports the direct footprints for the runtime cross-check
(:func:`repro.analyze.sanitize.cross_check_resource_footprints`).

Four finding codes enforce shard closure:

* **SHARD001** — a function reaches an engine singleton (pool, log,
  locks, catalog, stats) ambiently.  Constructor scopes are exempt —
  capture wiring is SHARD003's domain — as is the diagnostic plane
  (``repro/obs/``, ``repro/fault/``, the load generator, this analyzer),
  which deliberately observes across shard boundaries.
* **SHARD002** — one function uses resource instances of the same class
  from two distinct construction sites with no context parameter to tell
  them apart: the code is already multi-instance but has no way to say
  *which shard* it means.
* **SHARD003** — a constructor captures a resource-kind value into a
  field the class does not declare in ``_shard_scoped_``.  The tuple is
  the auditable inventory of long-lived resource captures; a capture
  outside it is invisible to any future shard-migration sweep.
  Self-constructed resources (``self.space = TableSpace(...)``) are the
  component's own property, not a capture, and are exempt.
* **SHARD004** — a function both writes WAL and forces pages (the
  recovery-critical pairing) with *differing* footprint labels for the
  log and the pool: half the durability protocol is shard-explicit, the
  other half ambient, so sharding would pair one shard's log with
  another's pages.

Approximations, all conservative toward silence (no invented chains):
locals are expanded one assignment deep and flow-insensitively; opaque
roots (call results, subscripts, loop variables) are skipped; names are
classified lexically (``pool``, ``*_log``, ``stats``...), the same
receiver-name philosophy the effect engine uses.  The runtime shard
stamps in :mod:`repro.analyze.sanitize` cover the dynamic blind spots.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.analyze import effects as fx
from repro.analyze.callgraph import CallSite, FunctionInfo
from repro.analyze.findings import Finding
from repro.analyze.framework import (Checker, Program, SourceModule,
                                     call_name, iter_python_files)

#: Engine classes whose instances are poolable, shard-scopable resources,
#: mapped to their resource kind.
RESOURCE_CLASSES = {
    "BufferPool": "pool",
    "LogManager": "log",
    "LockManager": "locks",
    "Catalog": "catalog",
    "StatsRegistry": "stats",
    "TableSpace": "tablespace",
    "BTree": "index",
    "NodeIdIndex": "index",
    "XPathValueIndex": "index",
}

#: Kinds with exactly one engine-wide instance today — the singletons a
#: ShardContext must replace.  SHARD001 restricts itself to these;
#: tablespaces and indexes are born per-table and are covered by the
#: instance-mixing rule (SHARD002) and the runtime stamps instead.
SINGLETON_KINDS = frozenset({"pool", "log", "locks", "catalog", "stats"})

#: Names that denote a capability bundle, not a resource: a chain hop
#: through one of these stays explicit (``self.context.pool``).
CONTEXT_NAMES = frozenset({"context", "ctx", "shard_context", "shard"})

#: Diagnostic-plane paths: cross-shard reach is their job, not a defect.
_EXEMPT_PATH_PARTS = ("/repro/obs/", "/repro/fault/", "/repro/analyze/",
                      "/repro/serve/loadgen.py")

#: Constructor scopes: capture wiring lives here and is judged by
#: SHARD003, not by the ambient-reach rule.
_CTOR_METHODS = ("__init__", "__post_init__", "__new__")

EXPLICIT = "explicit"
AMBIENT = "ambient"
MIXED = "mixed"


def kind_of_name(name: str) -> str | None:
    """Resource kind a field/parameter name denotes (None: not a resource).

    Lexical, like the effect engine's receiver tests: ``pool``/``*pool``,
    ``log``/``wal``/``*_log``/``*_wal``, ``locks``, ``catalog``,
    ``stats``/``*stats``, ``space``/``tablespace``/``*_space``,
    ``tree``/``index``/``node_index``/``*_index``.
    """
    token = name.lstrip("_").lower()
    if token == "pool" or token.endswith("pool"):
        return "pool"
    if token in ("log", "wal") or token.endswith(("_log", "_wal")):
        return "log"
    if token == "locks":
        return "locks"
    if token == "catalog":
        return "catalog"
    if token == "stats" or token.endswith("stats"):
        return "stats"
    if token in ("space", "tablespace") or token.endswith("_space"):
        return "tablespace"
    if token in ("tree", "index", "node_index") or token.endswith("_index"):
        return "index"
    return None


def diagnostic_plane(relpath: str) -> bool:
    """Is ``relpath`` part of the cross-shard diagnostic plane?"""
    probe = "/" + relpath
    return any(part in probe for part in _EXEMPT_PATH_PARTS)


def _chain_segments(expr: ast.expr) -> list[str] | None:
    """``['self', 'db', 'pool']`` for ``self.db.pool``; None when any link
    is not a plain Name/Attribute (call results, subscripts...)."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = node.args
    names = {p.arg for p in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


@dataclass(frozen=True)
class Instance:
    """One statically identified resource instance (a construction site)."""

    key: str    # unique identity: "relpath:line" of the constructor call
    label: str  # line-stable label used in fingerprints and messages
    cls: str    # constructing class name (BufferPool, BTree, ...)
    kind: str
    path: str
    line: int


@dataclass(frozen=True)
class ResourceRef:
    """One reach of a resource inside one function."""

    kind: str
    mode: str            # EXPLICIT or AMBIENT
    chain: str           # dotted chain text ("self.db.pool")
    hop: str | None      # the segment that made the chain ambient
    node: ast.AST
    instance: Instance | None = None


@dataclass(frozen=True)
class Capture:
    """One ``self.field = <resource>`` assignment in a constructor."""

    cls_name: str
    field: str
    kind: str
    value_text: str
    node: ast.stmt
    module: SourceModule
    cls_line: int


class FlowWitness:
    """How one footprint bit entered one function's summary."""

    def __init__(self, path: str, line: int, text: str,
                 via: CallSite | None = None) -> None:
        self.path = path
        self.line = line
        self.text = text
        self.via = via  # None => direct reach in this very function


class ResourceFlowAnalysis:
    """Resource references, instances and footprints for a whole program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.graph = program.callgraph()
        #: class name -> (_shard_scoped_ declaration, declaration found?)
        self._declared: dict[str, frozenset[str]] = {}
        self._captures: list[Capture] = []
        #: (class name, field) -> Instance for ``self.f = Ctor(...)``
        self._field_instances: dict[tuple[str, str], Instance] = {}
        #: bare global name -> Instance for module-level ``N = Ctor(...)``
        self._globals: dict[str, Instance] = {}
        #: id(ast.Call) -> Instance, so reference collection reuses the
        #: identities minted during indexing instead of minting duplicates
        self._instance_by_call: dict[int, Instance] = {}
        #: fid -> references
        self._refs: dict[str, list[ResourceRef]] = {}
        #: fid -> kind -> bit(EXPLICIT/AMBIENT) -> witness; direct only
        self._direct: dict[str, dict[str, dict[str, FlowWitness]]] = {}
        #: same shape, propagated to fixpoint over the call graph
        self._foot: dict[str, dict[str, dict[str, FlowWitness]]] = {}
        for module in program.modules:
            self._index_module(module)
        for info in self.graph.iter_functions():
            self._collect(info)
        self._propagate()

    # -- public API --------------------------------------------------------

    def references(self, fid: str) -> list[ResourceRef]:
        return self._refs.get(fid, [])

    def captures(self) -> list[Capture]:
        return list(self._captures)

    def declared(self, cls_name: str) -> frozenset[str]:
        """The class's ``_shard_scoped_`` declaration (empty if absent)."""
        return self._declared.get(cls_name, frozenset())

    def label(self, fid: str, kind: str) -> str | None:
        """Transitive footprint label of ``kind`` in ``fid`` (None: absent)."""
        bits = self._foot.get(fid, {}).get(kind)
        if not bits:
            return None
        if EXPLICIT in bits and AMBIENT in bits:
            return MIXED
        return EXPLICIT if EXPLICIT in bits else AMBIENT

    def direct_kinds(self, fid: str) -> frozenset[str]:
        return frozenset(self._direct.get(fid, ()))

    def footprint_map(self) -> dict[str, frozenset[str]]:
        """Qualname -> directly-reached resource kinds, for the runtime
        cross-check (runtime flow sites report dotted qualnames)."""
        out: dict[str, set[str]] = {}
        for fid, kinds in self._direct.items():
            info = self.graph.lookup(fid)
            if info is None:  # pragma: no cover - fids come from the graph
                continue
            out.setdefault(info.qualname, set()).update(kinds)
        return {name: frozenset(kinds) for name, kinds in out.items()}

    def flow_path(self, fid: str, kind: str,
                  bit: str) -> list[tuple[str, int, str]]:
        """Witness chain proving ``fid`` has the ``(kind, bit)`` footprint:
        ``(path, line, description)`` triples down to the direct reach."""
        steps: list[tuple[str, int, str]] = []
        current = fid
        guard = 0
        while True:
            witness = self._foot.get(current, {}).get(kind, {}).get(bit)
            if witness is None:
                break
            info = self.graph.lookup(current)
            where = info.qualname if info is not None else current
            if witness.via is None:
                steps.append((witness.path, witness.line,
                              f"{where}: {witness.text}"))
                break
            steps.append((witness.path, witness.line,
                          f"{where} calls {witness.via.callee.qualname}() "
                          f"[{witness.text}]"))
            current = witness.via.callee.fid
            guard += 1
            if guard > len(self._foot) + 1:  # pragma: no cover - guard
                break
        return steps

    def render_flow(self, fid: str, kind: str) -> list[str]:
        """Display lines for the kind's footprint (ambient bit preferred —
        it is the one a finding needs explained)."""
        bits = self._foot.get(fid, {}).get(kind, {})
        bit = AMBIENT if AMBIENT in bits else EXPLICIT
        return [f"{path}:{line}: {text}"
                for path, line, text in self.flow_path(fid, kind, bit)]

    # -- indexing ----------------------------------------------------------

    def _index_module(self, module: SourceModule) -> None:
        for stmt in module.tree.body:
            self._index_global(module, stmt)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                self._index_class(module, node)

    def _index_global(self, module: SourceModule, stmt: ast.stmt) -> None:
        """Module-level ``NAME = ResourceClass(...)`` singleton bindings."""
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        value = stmt.value
        if not (isinstance(target, ast.Name) and isinstance(value, ast.Call)):
            return
        cls = call_name(value)
        kind = RESOURCE_CLASSES.get(cls)
        if kind is None:
            return
        instance = Instance(
            key=f"{module.relpath}:{value.lineno}",
            label=f"{module.relpath}::{target.id}",
            cls=cls, kind=kind, path=module.relpath, line=value.lineno)
        self._globals[target.id] = instance
        self._instance_by_call[id(value)] = instance

    def _index_class(self, module: SourceModule, node: ast.ClassDef) -> None:
        declared = self._parse_declaration(node)
        self._declared.setdefault(node.name, declared)
        init = next((child for child in node.body
                     if isinstance(child, ast.FunctionDef)
                     and child.name in _CTOR_METHODS), None)
        if init is None:
            return
        for stmt in ast.walk(init):
            if module.enclosing_function(stmt) is not init:
                continue
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in ("self", "cls")):
                    continue
                self._index_capture(module, node, stmt, target.attr, value)

    def _index_capture(self, module: SourceModule, cls: ast.ClassDef,
                       stmt: ast.stmt, field: str, value: ast.expr) -> None:
        if isinstance(value, ast.Call):
            ctor = call_name(value)
            ctor_kind = RESOURCE_CLASSES.get(ctor)
            if ctor_kind is not None:
                # Self-constructed: the component's own property, and the
                # field name is the line-stable instance identity.
                instance = Instance(
                    key=f"{module.relpath}:{value.lineno}",
                    label=f"{cls.name}.{field}", cls=ctor, kind=ctor_kind,
                    path=module.relpath, line=value.lineno)
                self._field_instances[(cls.name, field)] = instance
                self._instance_by_call[id(value)] = instance
                return
        classified = self._value_kind(value)
        if classified is None:
            return
        kind, text = classified
        self._captures.append(Capture(
            cls_name=cls.name, field=field, kind=kind, value_text=text,
            node=stmt, module=module, cls_line=cls.lineno))

    def _value_kind(self, expr: ast.expr) -> tuple[str, str] | None:
        """Resource kind of a captured value expression, with its text."""
        if isinstance(expr, ast.Call):
            name = call_name(expr)
            if name in RESOURCE_CLASSES:  # pragma: no cover - handled above
                return None
            kind = kind_of_name(name)
            return (kind, f"{name}(...)") if kind is not None else None
        if isinstance(expr, ast.IfExp):
            return self._value_kind(expr.body) or \
                self._value_kind(expr.orelse)
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                classified = self._value_kind(value)
                if classified is not None:
                    return classified
            return None
        segments = _chain_segments(expr)
        if segments is not None:
            kind = kind_of_name(segments[-1])
            if kind is not None:
                return kind, ".".join(segments)
        return None

    @staticmethod
    def _parse_declaration(node: ast.ClassDef) -> frozenset[str]:
        for stmt in node.body:
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(isinstance(t, ast.Name) and t.id == "_shard_scoped_"
                       for t in stmt.targets):
                continue
            if isinstance(stmt.value, (ast.Tuple, ast.List)):
                return frozenset(
                    elt.value for elt in stmt.value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str))
        return frozenset()

    # -- reference collection ----------------------------------------------

    def _collect(self, info: FunctionInfo) -> None:
        module = info.module
        params = _param_names(info.node)
        locals_map = self._local_chains(info)
        refs: list[ResourceRef] = []
        for node in ast.walk(info.node):
            if module.enclosing_function(node) is not info.node:
                continue
            if isinstance(node, ast.Attribute) and \
                    kind_of_name(node.attr) is not None:
                segments = _chain_segments(node)
                if segments is None:
                    continue
                evaluated = self._evaluate(segments, params, locals_map,
                                           module.relpath)
                if evaluated is None:
                    continue
                kind, mode, hop = evaluated
                refs.append(ResourceRef(
                    kind=kind, mode=mode, chain=".".join(segments), hop=hop,
                    node=node, instance=self._instance_of(info, segments)))
            elif isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load) and \
                    node.id in self._globals and \
                    node.id not in params and node.id not in locals_map:
                instance = self._globals[node.id]
                foreign = instance.path != module.relpath
                refs.append(ResourceRef(
                    kind=instance.kind,
                    mode=AMBIENT if foreign else EXPLICIT,
                    chain=node.id, hop=node.id if foreign else None,
                    node=node, instance=instance))
            elif isinstance(node, ast.Call) and \
                    call_name(node) in RESOURCE_CLASSES:
                refs.append(self._ctor_ref(info, node))
        # Resource-kind parameters are part of the footprint even when the
        # body only forwards them (run_query's ``stats``).
        for name in params:
            kind = kind_of_name(name)
            if kind is not None:
                refs.append(ResourceRef(
                    kind=kind, mode=EXPLICIT, chain=name, hop=None,
                    node=info.node))
        self._refs[info.fid] = refs
        direct: dict[str, dict[str, FlowWitness]] = {}
        for ref in refs:
            line = getattr(ref.node, "lineno", info.line)
            direct.setdefault(ref.kind, {}).setdefault(
                ref.mode, FlowWitness(
                    info.path, line,
                    f"reaches {ref.kind} via '{ref.chain}' ({ref.mode})"))
        self._direct[info.fid] = direct

    def _ctor_ref(self, info: FunctionInfo, node: ast.Call) -> ResourceRef:
        instance = self._instance_by_call.get(id(node))
        if instance is None:
            cls = call_name(node)
            # Inline construction with no field/global binding: identity by
            # source order within the function, stable under line shifts.
            ordinal = 1 + sum(
                1 for existing in self._instance_by_call.values()
                if existing.cls == cls
                and existing.label.startswith(f"{info.qualname}~"))
            instance = Instance(
                key=f"{info.path}:{node.lineno}",
                label=f"{info.qualname}~{cls}#{ordinal}",
                cls=cls, kind=RESOURCE_CLASSES[cls],
                path=info.path, line=node.lineno)
            self._instance_by_call[id(node)] = instance
        return ResourceRef(kind=instance.kind, mode=EXPLICIT,
                           chain=f"{instance.cls}(...)", hop=None,
                           node=node, instance=instance)

    def _instance_of(self, info: FunctionInfo,
                     segments: list[str]) -> Instance | None:
        if len(segments) == 2 and segments[0] in ("self", "cls") and \
                info.cls is not None:
            return self._field_instances.get((info.cls, segments[1]))
        if len(segments) == 1:
            return self._globals.get(segments[0])
        return None

    def _local_chains(self, info: FunctionInfo) -> dict[str, list[str] | None]:
        """``name -> chain`` for simple local aliases (``pool =
        context.pool``); ``None`` marks a name with any opaque binding."""
        out: dict[str, list[str] | None] = {}
        for node in ast.walk(info.node):
            if info.module.enclosing_function(node) is not info.node:
                continue
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                chain = _chain_segments(node.value)
                if name in out and out[name] != chain:
                    out[name] = None  # conflicting rebind: opaque
                else:
                    out[name] = chain
            else:
                # Any other binding form (for targets, with-as, augmented
                # or tuple assignment) makes the name opaque.
                for target in _bound_names(node):
                    out[target] = None
        return out

    def _evaluate(self, segments: list[str], params: set[str],
                  locals_map: dict[str, list[str] | None],
                  relpath: str) -> tuple[str, str, str | None] | None:
        """Mode of one chain: ``(kind, EXPLICIT/AMBIENT, ambient hop)``.

        None means the chain's root is opaque — conservatively silent.
        """
        for _ in range(8):  # bounded alias expansion
            expansion = locals_map.get(segments[0], ())
            if expansion == ():
                break
            if expansion is None:
                return None  # opaque local
            if expansion[0] == segments[0]:
                break  # self-referential rebind (x = x.pool)
            segments = list(expansion) + segments[1:]
        kind = kind_of_name(segments[-1])
        if kind is None:  # pragma: no cover - callers pre-filter
            return None
        root, hops = segments[0], segments[1:]
        seen_resource = False
        ambient_hop: str | None = None
        if root in ("self", "cls"):
            pass  # own fields: judged hop by hop below
        elif kind_of_name(root) is not None:
            seen_resource = True  # resource-named root: explicit handle
        elif root in CONTEXT_NAMES:
            pass  # capability bundle: its members are explicit
        elif root in params:
            ambient_hop = root  # reaching through a component parameter
        elif root in self._globals:
            seen_resource = True
            if self._globals[root].path != relpath:
                ambient_hop = root  # foreign module-level singleton
        else:
            return None  # unknown root (opaque local, import alias...)
        for segment in hops:
            if seen_resource:
                break  # inside an explicit resource: its own internals
            if kind_of_name(segment) is not None:
                seen_resource = True
            elif segment in CONTEXT_NAMES:
                continue
            elif ambient_hop is None:
                ambient_hop = segment  # component hop before any resource
        mode = AMBIENT if ambient_hop is not None else EXPLICIT
        return kind, mode, ambient_hop

    # -- footprint propagation ---------------------------------------------

    def _propagate(self) -> None:
        for fid, direct in self._direct.items():
            self._foot[fid] = {kind: dict(bits)
                               for kind, bits in direct.items()}
        pending = list(self._foot)
        queued = set(pending)
        while pending:
            fid = pending.pop()
            queued.discard(fid)
            if self._fold_callees(fid):
                for site in self.graph.callers_of.get(fid, ()):
                    caller = site.caller.fid
                    if caller not in queued:
                        queued.add(caller)
                        pending.append(caller)

    def _fold_callees(self, fid: str) -> bool:
        summary = self._foot.setdefault(fid, {})
        changed = False
        for site in self.graph.callees_of.get(fid, ()):
            callee = self._foot.get(site.callee.fid, {})
            for kind, bits in callee.items():
                mine = summary.setdefault(kind, {})
                for bit in bits:
                    if bit not in mine:
                        mine[bit] = FlowWitness(
                            site.caller.path, site.line, site.text, via=site)
                        changed = True
        return changed


def _bound_names(node: ast.AST) -> Iterator[str]:
    """Names bound by non-alias binding forms (loops, with-as, tuples...)."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign) and (
            len(node.targets) != 1
            or not isinstance(node.targets[0], ast.Name)):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        targets = [node.target]
    elif isinstance(node, (ast.With, ast.AsyncWith)):
        targets = [item.optional_vars for item in node.items
                   if item.optional_vars is not None]
    for target in targets:
        for inner in ast.walk(target):
            # Only Store-context names are bound: in ``self.x[k] = v`` the
            # target names ``self`` and ``k`` are loads, not bindings.
            if isinstance(inner, ast.Name) and \
                    isinstance(inner.ctx, ast.Store):
                yield inner.id


class ResourceFlowChecker(Checker):
    """SHARD001-004: every resource reach is shard-explicit."""

    name = "resource-flow"
    codes = ("SHARD001", "SHARD002", "SHARD003", "SHARD004")
    description = ("poolable resources (pool/log/locks/catalog/stats) are "
                   "reached through declared captures, parameters or a "
                   "ShardContext — never ambiently through another "
                   "component or a module global")
    code_descriptions = {
        "SHARD001": "ambient reach of an engine singleton outside any "
                    "context (cross-component chain or foreign global)",
        "SHARD002": "one function mixes same-class resource instances from "
                    "two construction sites with no context parameter",
        "SHARD003": "constructor captures a resource into a field missing "
                    "from the class's _shard_scoped_ declaration",
        "SHARD004": "WAL write and page flush in one function fed by "
                    "resources with differing footprint labels",
    }

    def begin(self, program: Program) -> None:
        self._program = program

    def finish(self) -> Iterable[Finding]:
        analysis = ResourceFlowAnalysis(self._program)
        findings: list[Finding] = []
        findings.extend(self._shard001(analysis))
        findings.extend(self._shard002(analysis))
        findings.extend(self._shard003(analysis))
        findings.extend(self._shard004(analysis))
        return findings

    # -- SHARD001 ----------------------------------------------------------

    def _shard001(self, analysis: ResourceFlowAnalysis) -> Iterator[Finding]:
        for info in analysis.graph.iter_functions():
            if diagnostic_plane(info.path) or info.name in _CTOR_METHODS:
                continue
            reported: set[str] = set()
            for ref in analysis.references(info.fid):
                if ref.mode != AMBIENT or ref.kind not in SINGLETON_KINDS:
                    continue
                detail = f"{ref.kind}:{ref.chain}"
                if detail in reported:
                    continue
                reported.add(detail)
                line = getattr(ref.node, "lineno", info.line)
                yield info.module.finding(
                    "SHARD001", self.name, ref.node,
                    f"{info.qualname} reaches the engine {ref.kind} "
                    f"ambiently through '{ref.chain}' — pass the resource "
                    f"(or a ShardContext) in, or capture it at "
                    f"construction under _shard_scoped_",
                    detail=detail,
                    scope=info.qualname,
                    call_path=(
                        f"{info.path}:{line}: {info.qualname} reaches "
                        f"{ref.kind} via '{ref.chain}'",
                        f"{info.path}:{line}: hop '{ref.hop}' crosses a "
                        f"component boundary before any resource or "
                        f"context — the reach is ambient",
                    ))

    # -- SHARD002 ----------------------------------------------------------

    def _shard002(self, analysis: ResourceFlowAnalysis) -> Iterator[Finding]:
        for info in analysis.graph.iter_functions():
            if diagnostic_plane(info.path):
                continue
            if _param_names(info.node) & CONTEXT_NAMES:
                continue  # the context parameter names which shard is meant
            by_class: dict[str, dict[str, tuple[Instance, ast.AST]]] = {}
            for ref in analysis.references(info.fid):
                if ref.instance is None:
                    continue
                by_class.setdefault(ref.instance.cls, {}).setdefault(
                    ref.instance.key, (ref.instance, ref.node))
            for cls, instances in sorted(by_class.items()):
                if len(instances) < 2:
                    continue
                pairs = sorted(instances.values(),
                               key=lambda pair: pair[0].label)
                labels = "+".join(inst.label for inst, _ in pairs)
                kind = pairs[0][0].kind
                first_node = min((node for _, node in pairs),
                                 key=lambda n: getattr(n, "lineno", 0))
                yield info.module.finding(
                    "SHARD002", self.name, first_node,
                    f"{info.qualname} mixes {len(pairs)} distinct {cls} "
                    f"instances ({labels}) with no context parameter — "
                    f"it cannot say which shard's {kind} it means",
                    detail=f"{kind}:{labels}",
                    scope=info.qualname,
                    call_path=tuple(
                        f"{inst.path}:{inst.line}: instance '{inst.label}' "
                        f"({inst.cls}) constructed here"
                        for inst, _ in pairs))

    # -- SHARD003 ----------------------------------------------------------

    def _shard003(self, analysis: ResourceFlowAnalysis) -> Iterator[Finding]:
        for capture in analysis.captures():
            if diagnostic_plane(capture.module.relpath):
                continue
            declared = analysis.declared(capture.cls_name)
            if capture.field in declared:
                continue
            declared_text = ", ".join(sorted(declared)) if declared \
                else "(no declaration)"
            yield capture.module.finding(
                "SHARD003", self.name, capture.node,
                f"{capture.cls_name}.__init__ captures a {capture.kind} "
                f"into self.{capture.field} (from {capture.value_text!r}) "
                f"without declaring it in _shard_scoped_ — add the field "
                f"to the declaration or stop holding the resource",
                detail=f"{capture.cls_name}.{capture.field}",
                call_path=(
                    f"{capture.module.relpath}:{capture.node.lineno}: "
                    f"self.{capture.field} = {capture.value_text} captures "
                    f"a long-lived {capture.kind} handle",
                    f"{capture.module.relpath}:{capture.cls_line}: "
                    f"{capture.cls_name} declares _shard_scoped_ = "
                    f"{declared_text} — '{capture.field}' is not in it",
                ))

    # -- SHARD004 ----------------------------------------------------------

    def _shard004(self, analysis: ResourceFlowAnalysis) -> Iterator[Finding]:
        effects = self._program.effects()
        for info in analysis.graph.iter_functions():
            if diagnostic_plane(info.path):
                continue
            if not (effects.has(info.fid, fx.WRITES_WAL)
                    and effects.has(info.fid, fx.FLUSHES)):
                continue
            log_label = analysis.label(info.fid, "log")
            pool_label = analysis.label(info.fid, "pool")
            if log_label is None or pool_label is None or \
                    log_label == pool_label:
                continue
            yield info.module.finding(
                "SHARD004", self.name, info.node,
                f"{info.qualname} pairs a WAL write with a page flush but "
                f"its log footprint is {log_label} while its pool "
                f"footprint is {pool_label} — under sharding this couples "
                f"one shard's log with another's pages",
                detail=f"log={log_label},pool={pool_label}",
                scope=info.qualname,
                call_path=tuple(
                    [f"-- log footprint ({log_label}):"]
                    + analysis.render_flow(info.fid, "log")
                    + [f"-- pool footprint ({pool_label}):"]
                    + analysis.render_flow(info.fid, "pool")
                    + ["-- WAL write:"]
                    + effects.render_path(info.fid, fx.WRITES_WAL)
                    + ["-- page flush:"]
                    + effects.render_path(info.fid, fx.FLUSHES)))


def footprint_map(paths: Iterable[Path],
                  root: Path | None = None) -> dict[str, frozenset[str]]:
    """Parse ``paths`` and return the qualname -> kinds footprint map.

    Convenience entry point for the runtime cross-check
    (:func:`repro.analyze.sanitize.cross_check_resource_footprints`).
    """
    program = Program()
    root = root if root is not None else Path.cwd()
    for path in iter_python_files(paths):
        try:
            program.add(SourceModule(path, root))
        except (SyntaxError, UnicodeDecodeError, OSError):
            continue
    return ResourceFlowAnalysis(program).footprint_map()
