"""Fixpoint resource-effect summaries over the whole-program call graph.

For every function the engine computes the set of *resource effects* it may
transitively perform — the protocol-relevant actions the substrate cares
about:

* ``pins_page`` — may pin a buffer frame (``pool.fetch``/``pool.new_page``);
* ``unpins_page`` — may unpin one;
* ``returns_pin`` — hands a *still-pinned* frame to its caller (pins without
  unpinning and returns the result, or forwards another ``returns_pin``
  callee's result) — the effect that makes pin checking interprocedural:
  a call to such a function IS a pin at the call site;
* ``acquires_lock:<class>`` — may acquire a lock of a statically classified
  class (``row``, ``doc``, ``node``...); ``acquires_lock:?`` when the
  resource expression is not classifiable;
* ``writes_wal`` — may append to / checkpoint the write-ahead log;
* ``flushes_page`` — may force page images to the device;
* ``may_raise`` — contains a ``raise`` statement or calls something that
  does.  Only *proven* raisers count: an unresolved call contributes
  nothing, so every EXC witness path ends at a real ``raise``;
* ``may_block`` — may suspend the calling thread: ``time.sleep``, a
  ``wait()`` on any synchronization object, a blocking queue ``get``, a
  ``join`` on a thread-ish receiver, or a lock/latch ``acquire``.  The
  latch checker (LATCH001 in :mod:`repro.analyze.races`) uses this to
  prove a blocking call reached *through helpers* still happens while a
  latch is held.

The lattice is the powerset of effect tokens ordered by inclusion; transfer
is union over callees, so the fixpoint exists and the worklist terminates
(summaries only grow, the token universe is finite).

Every transitive effect carries a *witness*: either the primitive site
itself or the call site it was inherited through.  :meth:`EffectAnalysis.
witness_path` rebuilds the full call chain for ``--explain`` — the chain is
finite because a witness is recorded only the first time an effect enters a
summary, so following it strictly descends toward a primitive site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze.callgraph import CallGraph, CallSite, FunctionInfo
from repro.analyze.framework import call_name, receiver_text

PINS = "pins_page"
UNPINS = "unpins_page"
RETURNS_PIN = "returns_pin"
WRITES_WAL = "writes_wal"
FLUSHES = "flushes_page"
MAY_RAISE = "may_raise"
BLOCKS = "may_block"
ACQUIRES_PREFIX = "acquires_lock:"

_PIN_METHODS = {"fetch", "new_page"}
_ACQUIRE_METHODS = {"try_acquire": 1, "lock": 0, "try_lock": 0}
_WAL_METHODS = {"append", "checkpoint", "log", "flush"}
_FLUSH_METHODS = {"flush_page", "flush_all"}


def _receiver_tail(call: ast.Call) -> str:
    """Last dotted segment of the receiver, lowercased ('' for plain)."""
    receiver = receiver_text(call).lower()
    return receiver.rsplit(".", 1)[-1] if receiver else ""


def blocking_reason(call: ast.Call) -> str | None:
    """Why ``call`` may suspend the calling thread (None = non-blocking).

    Deliberately receiver-sensitive, mirroring the call-graph philosophy:
    ``str.join`` and ``dict.get`` must not read as thread joins or queue
    gets, so ``join``/``get`` only count on thread-ish/queue-ish receivers
    and ``acquire`` only on lock-ish ones.  ``sleep`` and ``wait`` count
    on any receiver — every ``wait()`` in this codebase (Event, Condition,
    request completion) is a real suspension point.
    """
    name = call_name(call)
    tail = _receiver_tail(call)
    if name == "sleep":
        return "sleep() suspends the thread"
    if name == "wait":
        return f"{tail or 'object'}.wait() blocks until signalled"
    if name == "join" and "thread" in tail:
        return f"{tail}.join() blocks on thread exit"
    if name == "get" and ("queue" in tail or tail.endswith("_q")):
        return f"{tail}.get() blocks on an empty queue"
    if name == "acquire" and ("lock" in tail or "latch" in tail
                              or "mutex" in tail):
        return f"{tail}.acquire() blocks on lock acquisition"
    if name == "lock":
        # The transaction manager's interactive acquire: backoff-waits for
        # a conflicting holder.  try_acquire / try_lock stay non-blocking
        # by contract (the scheduler retries), so they do not count.
        return "lock() may wait for a conflicting holder"
    return None


def acquires(lock_class: str) -> str:
    """Effect token for acquiring a lock of ``lock_class``."""
    return f"{ACQUIRES_PREFIX}{lock_class}"


def lock_class_of(effect: str) -> str | None:
    """Lock class of an ``acquires_lock:*`` token (None for other effects)."""
    if effect.startswith(ACQUIRES_PREFIX):
        return effect[len(ACQUIRES_PREFIX):]
    return None


def is_pool_receiver(call: ast.Call) -> bool:
    """Heuristic shared with the pin checker: pool-ish attribute receiver."""
    receiver = receiver_text(call).lower()
    if not receiver:
        return False
    last = receiver.rsplit(".", 1)[-1]
    return last == "pool" or last.endswith("pool")


def is_log_receiver(call: ast.Call) -> bool:
    """Log-ish attribute receiver (``self.log``, ``wal``, ``txn_log``...)."""
    receiver = receiver_text(call).lower()
    if not receiver:
        return False
    last = receiver.rsplit(".", 1)[-1]
    return last in ("log", "wal") or last.endswith("_log") or \
        last.endswith("_wal")


def classify_resource(node: ast.expr | None) -> str | None:
    """Static lock class of a resource expression, if derivable."""
    if node is None:
        return None
    if isinstance(node, ast.Tuple) and node.elts:
        first = node.elts[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name.endswith("_resource") and len(name) > len("_resource"):
            return name[:-len("_resource")]
    return None


def lock_resource_arg(call: ast.Call) -> ast.expr | None:
    """Resource expression of a lock-acquisition call, if present."""
    index = _ACQUIRE_METHODS.get(call_name(call))
    if index is None:
        return None
    if len(call.args) > index:
        return call.args[index]
    for keyword in call.keywords:
        if keyword.arg == "resource":
            return keyword.value
    return None


class Witness:
    """How one effect entered one function's summary."""

    def __init__(self, path: str, line: int, text: str,
                 via: CallSite | None = None) -> None:
        self.path = path
        self.line = line
        self.text = text  # primitive description, or the forwarding call
        self.via = via    # None => primitive site in this very function


class EffectAnalysis:
    """Per-function effect summaries at fixpoint, with witnesses."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        #: fid -> effect token -> first witness
        self._summaries: dict[str, dict[str, Witness]] = {}
        self._compute()

    # -- public API --------------------------------------------------------

    def summary(self, fid: str) -> frozenset[str]:
        """All effect tokens of ``fid`` (empty for unknown functions)."""
        return frozenset(self._summaries.get(fid, ()))

    def has(self, fid: str, effect: str) -> bool:
        return effect in self._summaries.get(fid, ())

    def lock_classes(self, fid: str) -> set[str]:
        """Classified lock classes ``fid`` may transitively acquire."""
        classes: set[str] = set()
        for effect in self._summaries.get(fid, ()):
            lock_class = lock_class_of(effect)
            if lock_class is not None and lock_class != "?":
                classes.add(lock_class)
        return classes

    def all_lock_classes(self) -> set[str]:
        """Every classified lock class any analyzed function may acquire."""
        classes: set[str] = set()
        for fid in self._summaries:
            classes |= self.lock_classes(fid)
        return classes

    def witness_path(self, fid: str, effect: str) -> list[tuple[str, int, str]]:
        """The call chain proving ``fid`` has ``effect``.

        Returns ``(path, line, description)`` triples from the function down
        to the primitive site.  Empty when the effect is absent.
        """
        steps: list[tuple[str, int, str]] = []
        current = fid
        guard = 0
        while True:
            witness = self._summaries.get(current, {}).get(effect)
            if witness is None:
                break
            info = self.graph.lookup(current)
            where = info.qualname if info is not None else current
            if witness.via is None:
                steps.append((witness.path, witness.line,
                              f"{where}: {witness.text}"))
                break
            steps.append((witness.path, witness.line,
                          f"{where} calls {witness.via.callee.qualname}() "
                          f"[{witness.text}]"))
            current = witness.via.callee.fid
            guard += 1
            if guard > len(self._summaries) + 1:  # pragma: no cover - guard
                break
        return steps

    def render_path(self, fid: str, effect: str) -> list[str]:
        """Witness path as display lines for ``--explain``."""
        return [f"{path}:{line}: {text}"
                for path, line, text in self.witness_path(fid, effect)]

    # -- computation -------------------------------------------------------

    def _compute(self) -> None:
        for info in self.graph.iter_functions():
            self._summaries[info.fid] = self._direct_effects(info)
        # Worklist fixpoint: every function is visited at least once; a
        # function whose summary grew re-enqueues its callers.  Summaries
        # only grow and the token universe is finite, so this terminates.
        pending = list(self._summaries)
        queued = set(pending)
        while pending:
            fid = pending.pop()
            queued.discard(fid)
            if self._propagate_into(fid):
                for site in self.graph.callers_of.get(fid, ()):
                    caller = site.caller.fid
                    if caller not in queued:
                        queued.add(caller)
                        pending.append(caller)

    def _propagate_into(self, fid: str) -> bool:
        """Fold callee summaries into ``fid``; True if anything was added."""
        summary = self._summaries.setdefault(fid, {})
        changed = False
        for site in self.graph.callees_of.get(fid, ()):
            callee_summary = self._summaries.get(site.callee.fid, {})
            for effect in callee_summary:
                if effect == RETURNS_PIN:
                    continue  # flow-dependent: handled below
                if effect not in summary:
                    summary[effect] = Witness(
                        site.caller.path, site.line, site.text, via=site)
                    changed = True
            if RETURNS_PIN in callee_summary and RETURNS_PIN not in summary \
                    and self._forwards_pin(site):
                summary[RETURNS_PIN] = Witness(
                    site.caller.path, site.line, site.text, via=site)
                changed = True
        return changed

    def _forwards_pin(self, site: CallSite) -> bool:
        """Does the caller hand ``site``'s pinned result to *its* caller?

        True when the call's result is returned (directly or through a
        name binding) and the caller never unpins — the ``new_page``
        handoff idiom, one level up.
        """
        function = site.caller.node
        if self._contains_unpin(function):
            return False
        stmt = self._statement_of(site.caller, site.call)
        if stmt is None:  # pragma: no cover - calls always sit in statements
            return False
        if isinstance(stmt, ast.Return):
            return True
        names = _assigned_names(stmt)
        if not names:
            return False
        for node in ast.walk(function):
            if isinstance(node, ast.Return) and node.value is not None:
                for ref in ast.walk(node.value):
                    if isinstance(ref, ast.Name) and ref.id in names:
                        return True
        return False

    def _direct_effects(self, info: FunctionInfo) -> dict[str, Witness]:
        effects: dict[str, Witness] = {}
        path = info.path
        pin_sites: list[ast.Call] = []
        has_unpin = False
        for node in self._own_nodes(info):
            if isinstance(node, ast.Raise):
                effects.setdefault(MAY_RAISE, Witness(
                    path, node.lineno, "raise"))
                continue
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in _PIN_METHODS and is_pool_receiver(node):
                effects.setdefault(PINS, Witness(
                    path, node.lineno,
                    f"{receiver_text(node)}.{name}() pins"))
                pin_sites.append(node)
            elif name == "unpin":
                has_unpin = True
                effects.setdefault(UNPINS, Witness(
                    path, node.lineno, f"{receiver_text(node)}.unpin()"))
            elif name in _ACQUIRE_METHODS:
                lock_class = classify_resource(lock_resource_arg(node)) or "?"
                effects.setdefault(acquires(lock_class), Witness(
                    path, node.lineno,
                    f"{name}() acquires {lock_class!r} lock"))
            elif name in _FLUSH_METHODS:
                effects.setdefault(FLUSHES, Witness(
                    path, node.lineno, f"{name}() flushes"))
            blocking = blocking_reason(node)
            if blocking is not None:
                effects.setdefault(BLOCKS, Witness(
                    path, node.lineno, blocking))
            if name in _WAL_METHODS and is_log_receiver(node):
                effects.setdefault(WRITES_WAL, Witness(
                    path, node.lineno,
                    f"{receiver_text(node)}.{name}() writes WAL"))
        if pin_sites and not has_unpin:
            for call in pin_sites:
                if self._pin_handed_off(info, call):
                    effects.setdefault(RETURNS_PIN, Witness(
                        path, call.lineno,
                        f"{receiver_text(call)}.{call_name(call)}() pin "
                        f"handed to caller"))
                    break
        return effects

    @staticmethod
    def _own_nodes(info: FunctionInfo) -> Iterator[ast.AST]:
        """Nodes of ``info``'s body, excluding nested function bodies."""
        for node in ast.walk(info.node):
            if info.module.enclosing_function(node) is info.node:
                yield node

    @staticmethod
    def _contains_unpin(function: ast.AST) -> bool:
        for node in ast.walk(function):
            if isinstance(node, ast.Call) and call_name(node) == "unpin":
                return True
        return False

    @staticmethod
    def _statement_of(info: FunctionInfo, node: ast.AST) -> ast.stmt | None:
        current: ast.AST | None = node
        while current is not None and not isinstance(current, ast.stmt):
            current = info.module.parent(current)
        return current

    def _pin_handed_off(self, info: FunctionInfo, call: ast.Call) -> bool:
        """The pinned result escapes through a return (caller owns it)."""
        stmt = self._statement_of(info, call)
        if stmt is None:  # pragma: no cover - calls always sit in statements
            return False
        if isinstance(stmt, ast.Return):
            return True
        names = _assigned_names(stmt)
        if not names:
            return False
        for node in ast.walk(info.node):
            if isinstance(node, ast.Return) and node.value is not None:
                for ref in ast.walk(node.value):
                    if isinstance(ref, ast.Name) and ref.id in names:
                        return True
        return False


def _assigned_names(stmt: ast.stmt) -> set[str]:
    """Names bound by an assignment statement (tuple targets included)."""
    names: set[str] = set()
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.add(node.id)
    return names
