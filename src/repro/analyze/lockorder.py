"""Lock-order checker: the static acquisition graph must be acyclic.

Deadlock freedom by ordering: if every code path acquires lock *classes* in
one global order, no waits-for cycle can form between classes.  The engine's
lock resources are class-tagged tuples — ``("row", table, rid)``,
``("doc", column, docid)``, ``("node", docid, node_id)`` — built by the
``*_resource`` helpers in ``repro.cc.document``, so the class of most
acquisition sites is statically visible.

The checker collects every function's *acquisition events* in source order:

* primitive sites (``try_acquire`` / ``try_lock`` / ``Transaction.lock``)
  whose resource expression classifies statically;
* calls to functions whose effect summary (:mod:`repro.analyze.effects`)
  says they transitively acquire a classified lock class — the
  interprocedural half: a helper that locks on your behalf orders your
  lock classes just as a direct acquisition would.

An edge *a → b* is added whenever one function acquires class ``a`` before
class ``b`` (under two-phase locking the first lock is still held at the
second site).  After all modules are visited:

* **LOCK001** — a cycle in the class graph: two code paths acquire the same
  classes in opposite orders, a potential deadlock even though each path is
  locally correct.
* **LOCK002** — a lock acquisition inside an ``except`` handler — directly,
  or through any callee that acquires (``--explain`` prints the chain):
  acquiring while unwinding inverts whatever order the happy path
  established and runs while the transaction may already be aborting.

Unclassifiable acquisitions (``acquires_lock:?``) contribute no edges — the
order graph only reasons about proven classes — but they *do* count for
LOCK002, where any acquisition in a handler is the hazard.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from typing import Iterator

from repro.analyze import effects as fx
from repro.analyze.callgraph import CallGraph, CallSite, FunctionInfo
from repro.analyze.findings import Finding
from repro.analyze.framework import Checker, Program, SourceModule, call_name

_ACQUIRE_METHODS = {"try_acquire": 1, "lock": 0, "try_lock": 0}


def classify_resource(node: ast.expr | None) -> str | None:
    """Static lock class of a resource expression, if derivable.

    ``("row", table, rid)`` → ``row``; ``row_resource(...)`` → ``row``;
    anything else (bare names, parameters) is unclassifiable.
    """
    if node is None:
        return None
    if isinstance(node, ast.Tuple) and node.elts:
        first = node.elts[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name.endswith("_resource") and len(name) > len("_resource"):
            return name[:-len("_resource")]
    return None


def _resource_arg(call: ast.Call) -> ast.expr | None:
    method = call_name(call)
    index = _ACQUIRE_METHODS.get(method)
    if index is None:
        return None
    if len(call.args) > index:
        return call.args[index]
    for keyword in call.keywords:
        if keyword.arg == "resource":
            return keyword.value
    return None


class _Event:
    """One lock-class acquisition a function performs, in source order."""

    def __init__(self, lock_class: str, call: ast.Call,
                 call_path: tuple[str, ...] = ()) -> None:
        self.lock_class = lock_class
        self.call = call
        self.line = call.lineno
        self.col = call.col_offset
        self.call_path = call_path  # empty for primitive sites


class LockOrderChecker(Checker):
    """LOCK001/LOCK002: cross-file lock-class ordering and handler locks."""

    name = "lock-order"
    codes = ("LOCK001", "LOCK002")
    description = ("static lock-acquisition graph (including acquisitions "
                   "via callees) must be acyclic; no lock acquisition "
                   "inside except handlers")
    code_descriptions = {
        "LOCK001": "two code paths acquire the same lock classes in "
                   "opposite orders (cycle in the class graph)",
        "LOCK002": "lock acquired inside an except handler, directly or "
                   "through a callee",
    }

    def __init__(self) -> None:
        self._program: Program | None = None
        #: class -> class -> list of (path, line, scope, call_path)
        self.edges: dict[str, dict[str,
                         list[tuple[str, int, str, tuple[str, ...]]]]] = \
            defaultdict(lambda: defaultdict(list))

    def begin(self, program: Program) -> None:
        self._program = program

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        """Primitive LOCK002 only — edges are built in :meth:`finish`."""
        for call in module.calls():
            if call_name(call) not in _ACQUIRE_METHODS:
                continue
            yield from self._check_handler_lock(module, call)

    def _check_handler_lock(self, module: SourceModule,
                            call: ast.Call) -> Iterator[Finding]:
        for ancestor in module.ancestors(call):
            if isinstance(ancestor, ast.ExceptHandler):
                yield module.finding(
                    "LOCK002", self.name, call,
                    f"lock acquisition ({call_name(call)}) inside an except "
                    f"handler: acquiring while unwinding subverts the lock "
                    f"order and may run mid-abort",
                    detail=call_name(call))
                return
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return

    # -- interprocedural pass ----------------------------------------------

    def finish(self) -> Iterator[Finding]:
        if self._program is None:  # pragma: no cover - driver always begins
            return
        graph = self._program.callgraph()
        summaries = self._program.effects()
        for info in graph.iter_functions():
            events = self._events_of(info, graph, summaries)
            yield from self._handler_locks_via_callees(info, graph, summaries)
            for i, first in enumerate(events):
                for second in events[i + 1:]:
                    if first.lock_class == second.lock_class:
                        continue
                    self.edges[first.lock_class][second.lock_class].append(
                        (info.path, second.line,
                         info.module.scope_of(second.call),
                         second.call_path))
        yield from self._report_cycles()

    def _events_of(self, info: FunctionInfo, cg: CallGraph,
                   summaries: fx.EffectAnalysis) -> list[_Event]:
        """Acquisition events of ``info`` in source order, deduplicated."""
        events: list[_Event] = []
        seen: set[tuple[int, str]] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            if info.module.enclosing_function(node) is not info.node:
                continue  # nested function: analyzed on its own
            if call_name(node) not in _ACQUIRE_METHODS:
                continue
            lock_class = classify_resource(_resource_arg(node))
            if lock_class is not None and (id(node), lock_class) not in seen:
                seen.add((id(node), lock_class))
                events.append(_Event(lock_class, node))
        for site in cg.callees_of.get(info.fid, []):
            if call_name(site.call) in _ACQUIRE_METHODS:
                continue  # primitive site: classified (or not) above
            for lock_class in sorted(summaries.lock_classes(site.callee.fid)):
                key = (id(site.call), lock_class)
                if key in seen:
                    continue
                seen.add(key)
                chain = tuple(
                    [f"{info.path}:{site.line}: {info.qualname} calls "
                     f"{site.text}()"]
                    + summaries.render_path(site.callee.fid,
                                            fx.acquires(lock_class)))
                events.append(_Event(lock_class, site.call, chain))
        events.sort(key=lambda e: (e.line, e.col))
        return events

    def _handler_locks_via_callees(self, info: FunctionInfo, cg: CallGraph,
                                   summaries: fx.EffectAnalysis
                                   ) -> Iterator[Finding]:
        """Interprocedural LOCK002: a handler calls something that locks."""
        reported: set[int] = set()
        for site in cg.callees_of.get(info.fid, []):
            if call_name(site.call) in _ACQUIRE_METHODS:
                continue  # primitive: check_module owns it
            if id(site.call) in reported:
                continue
            acquired = self._acquired_effects(summaries, site)
            if not acquired:
                continue
            if not self._inside_handler(info, site.call):
                continue
            reported.add(id(site.call))
            chain = tuple(
                [f"{info.path}:{site.line}: {info.qualname} calls "
                 f"{site.text}()"]
                + summaries.render_path(site.callee.fid, acquired[0]))
            classes = ", ".join(
                sorted(fx.lock_class_of(e) or "?" for e in acquired))
            yield info.module.finding(
                "LOCK002", self.name, site.call,
                f"{site.text}() acquires locks (class {classes}) and is "
                f"called inside an except handler: acquiring while "
                f"unwinding subverts the lock order and may run mid-abort",
                detail=f"{site.text}->{site.callee.qualname}",
                call_path=chain)

    @staticmethod
    def _acquired_effects(summaries: fx.EffectAnalysis,
                          site: CallSite) -> list[str]:
        return sorted(e for e in summaries.summary(site.callee.fid)
                      if e.startswith(fx.ACQUIRES_PREFIX))

    @staticmethod
    def _inside_handler(info: FunctionInfo, call: ast.Call) -> bool:
        for ancestor in info.module.ancestors(call):
            if isinstance(ancestor, ast.ExceptHandler):
                return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
        return False

    def _report_cycles(self) -> Iterator[Finding]:
        graph = {a: set(bs) for a, bs in self.edges.items()}
        for cycle in _find_cycles(graph):
            witnesses: list[tuple[str, int]] = []
            call_path: tuple[str, ...] = ()
            pairs = list(zip(cycle, cycle[1:] + cycle[:1], strict=True))
            for a, b in pairs:
                path, line, _scope, chain = self.edges[a][b][0]
                witnesses.append((path, line))
                if chain and not call_path:
                    call_path = chain  # first interprocedural edge witness
            order = " -> ".join(cycle + [cycle[0]])
            at = ", ".join(f"{p}:{line}" for p, line in witnesses)
            yield Finding(
                code="LOCK001", checker=self.name,
                path=witnesses[0][0], line=witnesses[0][1], column=0,
                message=(f"lock-order cycle {order}: opposite acquisition "
                         f"orders (witnesses: {at}) can deadlock"),
                detail="/".join(sorted(set(cycle))),
                related=tuple(witnesses),
                call_path=call_path)

    def witnessed_classes(self) -> set[str]:
        """Every lock class that appears in the static order graph."""
        classes: set[str] = set(self.edges)
        for targets in self.edges.values():
            classes.update(targets)
        return classes


def _find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Every distinct elementary cycle's node set, one witness path each."""
    cycles: list[list[str]] = []
    seen_sets: set[frozenset[str]] = set()
    visited: set[str] = set()

    def dfs(node: str, path: list[str], on_path: set[str]) -> None:
        visited.add(node)
        path.append(node)
        on_path.add(node)
        for succ in sorted(graph.get(node, ())):
            if succ in on_path:
                cycle = path[path.index(succ):]
                key = frozenset(cycle)
                if key not in seen_sets:
                    seen_sets.add(key)
                    cycles.append(list(cycle))
            elif succ not in visited:
                dfs(succ, path, on_path)
        path.pop()
        on_path.discard(node)

    for start in sorted(graph):
        if start not in visited:
            dfs(start, [], set())
    return cycles
