"""Lock-order checker: the static acquisition graph must be acyclic.

Deadlock freedom by ordering: if every code path acquires lock *classes* in
one global order, no waits-for cycle can form between classes.  The engine's
lock resources are class-tagged tuples — ``("row", table, rid)``,
``("doc", column, docid)``, ``("node", docid, node_id)`` — built by the
``*_resource`` helpers in ``repro.cc.document``, so the class of most
acquisition sites is statically visible.

The checker extracts every acquisition site (``try_acquire`` /
``try_lock`` / ``Transaction.lock``), classifies its resource, and adds an
edge *a → b* whenever one function acquires class ``a`` before class ``b``
(under two-phase locking the first lock is still held at the second site).
After all modules are visited:

* **LOCK001** — a cycle in the class graph: two code paths acquire the same
  classes in opposite orders, a potential deadlock even though each path is
  locally correct.
* **LOCK002** — a lock acquisition inside an ``except`` handler: acquiring
  while unwinding inverts whatever order the happy path established and
  runs while the transaction may already be aborting.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from typing import Iterator

from repro.analyze.findings import Finding
from repro.analyze.framework import Checker, SourceModule, call_name

_ACQUIRE_METHODS = {"try_acquire": 1, "lock": 0, "try_lock": 0}


def classify_resource(node: ast.expr | None) -> str | None:
    """Static lock class of a resource expression, if derivable.

    ``("row", table, rid)`` → ``row``; ``row_resource(...)`` → ``row``;
    anything else (bare names, parameters) is unclassifiable.
    """
    if node is None:
        return None
    if isinstance(node, ast.Tuple) and node.elts:
        first = node.elts[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name.endswith("_resource") and len(name) > len("_resource"):
            return name[:-len("_resource")]
    return None


def _resource_arg(call: ast.Call) -> ast.expr | None:
    method = call_name(call)
    index = _ACQUIRE_METHODS.get(method)
    if index is None:
        return None
    if len(call.args) > index:
        return call.args[index]
    for keyword in call.keywords:
        if keyword.arg == "resource":
            return keyword.value
    return None


class LockOrderChecker(Checker):
    """LOCK001/LOCK002: cross-file lock-class ordering and handler locks."""

    name = "lock-order"
    codes = ("LOCK001", "LOCK002")
    description = ("static lock-acquisition graph must be acyclic; no lock "
                   "acquisition inside except handlers")

    def __init__(self) -> None:
        #: class -> class -> list of (path, line, scope) witnesses
        self.edges: dict[str, dict[str, list[tuple[str, int, str]]]] = \
            defaultdict(lambda: defaultdict(list))

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for function in module.functions():
            sites: list[tuple[str, ast.Call]] = []
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                if call_name(node) not in _ACQUIRE_METHODS:
                    continue
                if module.enclosing_function(node) is not function:
                    continue  # nested function: analyzed on its own
                yield from self._check_handler_lock(module, node)
                lock_class = classify_resource(_resource_arg(node))
                if lock_class is not None:
                    sites.append((lock_class, node))
            sites.sort(key=lambda item: (item[1].lineno, item[1].col_offset))
            for i, (class_a, _call_a) in enumerate(sites):
                for class_b, call_b in sites[i + 1:]:
                    if class_a == class_b:
                        continue
                    self.edges[class_a][class_b].append(
                        (module.relpath, call_b.lineno,
                         module.scope_of(call_b)))

    def _check_handler_lock(self, module: SourceModule,
                            call: ast.Call) -> Iterator[Finding]:
        for ancestor in module.ancestors(call):
            if isinstance(ancestor, ast.ExceptHandler):
                yield module.finding(
                    "LOCK002", self.name, call,
                    f"lock acquisition ({call_name(call)}) inside an except "
                    f"handler: acquiring while unwinding subverts the lock "
                    f"order and may run mid-abort",
                    detail=call_name(call))
                return
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return

    def finish(self) -> Iterator[Finding]:
        graph = {a: set(bs) for a, bs in self.edges.items()}
        for cycle in _find_cycles(graph):
            witnesses: list[tuple[str, int]] = []
            pairs = list(zip(cycle, cycle[1:] + cycle[:1], strict=True))
            for a, b in pairs:
                path, line, _scope = self.edges[a][b][0]
                witnesses.append((path, line))
            order = " -> ".join(cycle + [cycle[0]])
            at = ", ".join(f"{p}:{line}" for p, line in witnesses)
            yield Finding(
                code="LOCK001", checker=self.name,
                path=witnesses[0][0], line=witnesses[0][1], column=0,
                message=(f"lock-order cycle {order}: opposite acquisition "
                         f"orders (witnesses: {at}) can deadlock"),
                detail="/".join(sorted(set(cycle))),
                related=tuple(witnesses))


def _find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Every distinct elementary cycle's node set, one witness path each."""
    cycles: list[list[str]] = []
    seen_sets: set[frozenset[str]] = set()
    visited: set[str] = set()

    def dfs(node: str, path: list[str], on_path: set[str]) -> None:
        visited.add(node)
        path.append(node)
        on_path.add(node)
        for succ in sorted(graph.get(node, ())):
            if succ in on_path:
                cycle = path[path.index(succ):]
                key = frozenset(cycle)
                if key not in seen_sets:
                    seen_sets.add(key)
                    cycles.append(list(cycle))
            elif succ not in visited:
                dfs(succ, path, on_path)
        path.pop()
        on_path.discard(node)

    for start in sorted(graph):
        if start not in visited:
            dfs(start, [], set())
    return cycles
