"""Findings: what a checker reports and how a finding is identified.

A finding pins an engine-invariant violation to a file and line.  Its
*fingerprint* deliberately excludes the line number: suppression baselines
must survive unrelated edits to the same file, so a finding is identified by
(checker code, file, enclosing scope, checker-specific detail) instead of by
position.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a violated invariant is for the engine."""

    ERROR = "error"      # protocol violation: can corrupt data or deadlock
    WARNING = "warning"  # risky pattern: correct today, fragile under change

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.value


@dataclass(frozen=True)
class Finding:
    """One invariant violation located in the analyzed tree.

    ``detail`` is the stable, position-independent token the checker chose
    (a metric name, a callee, a lock-class pair); together with ``code``,
    ``path`` and ``scope`` it forms the baseline fingerprint.
    """

    code: str            # e.g. "PIN001"
    checker: str         # e.g. "pin-leak"
    path: str            # path relative to the analysis root
    line: int
    column: int
    message: str
    severity: Severity = Severity.ERROR
    scope: str = ""      # dotted qualname of the enclosing class/function
    detail: str = ""     # checker-specific stable token
    related: tuple[tuple[str, int], ...] = field(default_factory=tuple)
    #: interprocedural witness: rendered ``path:line: step`` lines from the
    #: reported site down to the primitive call that proves the finding
    #: (empty for intraprocedural findings); shown by ``--explain``.
    call_path: tuple[str, ...] = field(default_factory=tuple)

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by the suppression baseline."""
        return f"{self.code}:{self.path}:{self.scope}:{self.detail}"

    def render(self) -> str:
        """One-line human-readable report."""
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.code} [{self.severity.value}] {self.message}")

    def render_call_path(self, indent: str = "    ") -> str:
        """Multi-line witnessing call path (``--explain``)."""
        return "\n".join(f"{indent}{step}" for step in self.call_path)

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly form (``--format json``)."""
        return {
            "code": self.code,
            "checker": self.checker,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "severity": self.severity.value,
            "scope": self.scope,
            "fingerprint": self.fingerprint,
            "related": [list(pair) for pair in self.related],
            "call_path": list(self.call_path),
        }
