"""Engine-aware static analysis and runtime invariant sanitizers.

The engine's whole design bet — native XML storage reusing relational
infrastructure — holds only while every component obeys the substrate's
protocols: pin/unpin pairing on the buffer pool, no raw-disk access around
it, one global lock-acquisition order, log-before-flush, and a sound metric
namespace.  This package machine-checks those contracts twice over:

* statically: ``python -m repro.analyze src/`` runs AST-based checkers
  (:mod:`~repro.analyze.pins`, :mod:`~repro.analyze.rawdisk`,
  :mod:`~repro.analyze.lockorder`, :mod:`~repro.analyze.waldiscipline`,
  :mod:`~repro.analyze.statshygiene`, :mod:`~repro.analyze.races`) against
  the tree, with a documented suppression baseline
  (:mod:`~repro.analyze.baseline`);
* dynamically: :mod:`~repro.analyze.sanitize` arms assertions inside the
  buffer pool, lock manager, WAL and transaction manager (zero pins and
  zero locks at every transaction boundary, LSN monotonicity, witnessed
  lock order), tripped as ``sanitize.*`` counters plus
  :class:`~repro.errors.SanitizerError`.

The concurrency layer extends both halves: :mod:`~repro.analyze.threads`
derives thread roots, thread-shared fields and each field's inferred
guarding latch from the call graph; :mod:`~repro.analyze.races` checks the
latch discipline (``RACE001`` unguarded shared access, ``RACE002``
check-then-act across a latch release, ``LATCH001`` latch held across a
blocking call); and the sanitizer's Eraser-style lockset machinery
(:class:`~repro.analyze.sanitize.TrackedLock`, ``shared_access``) witnesses
the same guards at runtime, cross-checked against the static inference via
``cross_check_field_guards``.
"""

from repro.analyze.baseline import Baseline, BaselineError, write_baseline
from repro.analyze.cli import all_checkers, main
from repro.analyze.findings import Finding, Severity
from repro.analyze.framework import (Checker, SourceModule, iter_python_files,
                                     run_checkers)

__all__ = [
    "Baseline",
    "BaselineError",
    "Checker",
    "Finding",
    "Severity",
    "SourceModule",
    "all_checkers",
    "iter_python_files",
    "main",
    "run_checkers",
    "write_baseline",
]
