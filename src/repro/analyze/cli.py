"""Command line driver: ``python -m repro.analyze [paths...]``.

Exit status: 0 — clean (every finding baselined or none); 2 — new findings;
1 — usage/baseline error.  Designed for CI: the ``analyze`` job runs
``python -m repro.analyze src`` and fails the build on any non-baselined
invariant violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analyze.baseline import (Baseline, BaselineError, prune_stale,
                                    write_baseline)
from repro.analyze.excsafety import ExceptionSafetyChecker
from repro.analyze.framework import Checker, run_checkers
from repro.analyze.lockorder import LockOrderChecker
from repro.analyze.pins import PinLeakChecker
from repro.analyze.progcache import cached_program
from repro.analyze.races import LatchBlockingChecker, SharedStateRaceChecker
from repro.analyze.rawdisk import RawDiskChecker
from repro.analyze.resources import ResourceFlowChecker
from repro.analyze.sarif import to_sarif
from repro.analyze.statshygiene import StatsHygieneChecker
from repro.analyze.txnscope import TxnScopeChecker
from repro.analyze.waldiscipline import WalDisciplineChecker

#: default baseline filename looked up next to the current directory.
DEFAULT_BASELINE = "analyze-baseline.txt"


def all_checkers() -> list[Checker]:
    """Fresh instances of every shipped checker (they carry per-run state)."""
    return [
        PinLeakChecker(),
        RawDiskChecker(),
        LockOrderChecker(),
        WalDisciplineChecker(),
        StatsHygieneChecker(),
        ExceptionSafetyChecker(),
        TxnScopeChecker(),
        SharedStateRaceChecker(),
        LatchBlockingChecker(),
        ResourceFlowChecker(),
    ]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Engine-aware static analysis: machine-checks the "
                    "buffer/lock/WAL/stats protocols every component of the "
                    "XML engine must obey.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"suppression baseline file (default: "
                             f"./{DEFAULT_BASELINE} when present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "(reasons must then be documented by hand)")
    parser.add_argument("--select", default=None,
                        help="comma-separated checker names or finding "
                             "codes to run (e.g. pin-leak,LOCK001)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    parser.add_argument("--no-cache", action="store_true",
                        help="parse and analyze from scratch, bypassing the "
                             "on-disk program cache")
    parser.add_argument("--explain", action="store_true",
                        help="print the witnessing call path under every "
                             "interprocedural finding")
    parser.add_argument("--list-checkers", action="store_true",
                        help="list shipped checkers (and each finding code "
                             "they emit) and exit")
    parser.add_argument("--prune-stale", action="store_true",
                        help="rewrite the baseline file dropping entries "
                             "that no longer match any finding")
    return parser


def _select(checkers: list[Checker], spec: str | None
            ) -> tuple[list[Checker], set[str] | None]:
    if spec is None:
        return checkers, None
    wanted = {token.strip() for token in spec.split(",") if token.strip()}
    selected: list[Checker] = []
    codes: set[str] = set()
    for checker in checkers:
        if checker.name in wanted:
            selected.append(checker)
            codes.update(checker.codes)
            continue
        hit = wanted & set(checker.codes)
        if hit:
            selected.append(checker)
            codes.update(hit)
    if not selected:
        raise SystemExit(f"--select matched no checker: {spec!r}")
    return selected, codes


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    checkers = all_checkers()
    if args.list_checkers:
        for checker in checkers:
            print(f"{checker.name:18s} {'/'.join(checker.codes):16s} "
                  f"{checker.description}")
            for code in checker.codes:
                about = checker.code_descriptions.get(code, "")
                if about:
                    print(f"  {code:16s} {about}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 1
    checkers, code_filter = _select(checkers, args.select)

    program, parse_errors, cache_info = cached_program(
        paths, root=Path.cwd(), enabled=not args.no_cache)
    findings = run_checkers(checkers, paths, root=Path.cwd(),
                            program=program)
    if code_filter is not None:
        findings = [f for f in findings if f.code in code_filter]

    baseline_path = args.baseline
    if baseline_path is None:
        candidate = Path.cwd() / DEFAULT_BASELINE
        baseline_path = candidate if candidate.exists() or \
            args.write_baseline else None

    if args.write_baseline:
        if baseline_path is None:  # pragma: no cover - defaulted above
            baseline_path = Path.cwd() / DEFAULT_BASELINE
        count = write_baseline(baseline_path, findings)
        print(f"wrote {count} entries to {baseline_path} "
              f"(document each reason before committing)")
        return 0

    baseline = Baseline()
    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (BaselineError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    new, suppressed = baseline.split(findings)
    stale = baseline.stale_entries()

    if args.format == "json":
        print(json.dumps({
            "findings": [f.as_dict() for f in new],
            "baselined": [f.as_dict() for f in suppressed],
            "stale_baseline_entries": [e.fingerprint for e in stale],
            "parse_errors": parse_errors,
            "cache": cache_info.as_dict(),
        }, indent=2))
    elif args.format == "sarif":
        justifications = {fingerprint: entry.reason
                          for fingerprint, entry in baseline.entries.items()}
        print(json.dumps(to_sarif(checkers, new, suppressed, parse_errors,
                                  justifications), indent=2))
    else:
        for error in parse_errors:
            print(f"parse error: {error}", file=sys.stderr)
        for finding in new:
            print(finding.render())
            if args.explain and finding.call_path:
                print(finding.render_call_path())
        if suppressed:
            print(f"{len(suppressed)} finding(s) suppressed by baseline "
                  f"{baseline_path}")
        for entry in stale:
            print(f"stale baseline entry (violation fixed — delete it, or "
                  f"run --prune-stale): {entry.fingerprint}  "
                  f"# {entry.reason}")
        if not new:
            print(f"repro.analyze: clean "
                  f"({len(checkers)} checkers, "
                  f"{len(suppressed)} baselined finding(s))")
        else:
            print(f"repro.analyze: {len(new)} new finding(s)")
    if args.prune_stale and stale and baseline_path is not None:
        dropped = prune_stale(baseline_path,
                              {entry.fingerprint for entry in stale})
        print(f"pruned {dropped} stale entr{'y' if dropped == 1 else 'ies'} "
              f"from {baseline_path}")
    return 2 if new else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
