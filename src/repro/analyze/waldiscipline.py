"""WAL-discipline checker: log before flush; never swallow engine errors.

Write-ahead logging only protects what it precedes: a buffer flush that is
not dominated by hardening the log can push a page image to disk whose
changes the log has not recorded yet — exactly the window a crash turns
into unrecoverable divergence.  In this engine the discipline is structural:
``TransactionManager.checkpoint`` runs ``on_checkpoint`` (the pool flush)
and then writes the CHECKPOINT record, and everything else flushes through
that path.

* **WAL001** — a flush site (outside the buffer pool itself) with no WAL
  append/checkpoint earlier in the same function.  A *flush site* is a
  ``flush_page``/``flush_all`` call **or a call to any function whose
  effect summary says it transitively flushes** without also writing the
  WAL itself — a helper that flushes on your behalf inherits your
  obligation to log first.  A call to a ``writes_wal`` callee earlier in
  the function dominates just as a direct append would.
* **WAL002** — a bare ``except:`` or blanket ``except Exception:`` whose
  handler neither re-raises nor names what it expects: it swallows
  ``repro.errors`` types (DeadlockError, ChecksumError, SanitizerError...)
  that upper layers rely on seeing.  Narrow the clause to the errors the
  call site actually anticipates.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze import effects as fx
from repro.analyze.callgraph import CallGraph, FunctionInfo
from repro.analyze.findings import Finding
from repro.analyze.framework import Checker, Program, SourceModule, call_name

_FLUSH_METHODS = {"flush_page", "flush_all"}
#: calls that harden the log (or are the log-hardening path itself).
#: ``flush`` counts only on a log receiver (``*.log.flush()``) — see
#: :meth:`WalDisciplineChecker._dominator_positions` — because ``flush``
#: on anything else (a file, a socket) does not harden the WAL.
_LOG_METHODS = {"append", "checkpoint", "log"}

#: the pool's own module owns the flush primitives.
_FLUSH_OWNERS = ("repro/rdb/buffer.py",)

_BLANKET = {"Exception", "BaseException"}


class WalDisciplineChecker(Checker):
    """WAL001/WAL002: log-before-flush and no swallowed engine errors."""

    name = "wal-discipline"
    codes = ("WAL001", "WAL002")
    description = ("flushes (direct or via flushing callees) must be "
                   "dominated by a WAL append; no bare/blanket except may "
                   "swallow engine errors")
    code_descriptions = {
        "WAL001": "page flush (direct or via a flushing callee) not "
                  "preceded by a WAL append/checkpoint",
        "WAL002": "bare/blanket except swallows engine error types without "
                  "re-raising",
    }

    def __init__(self) -> None:
        self._program: Program | None = None

    def begin(self, program: Program) -> None:
        self._program = program

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        """Per-module pass: WAL002 only — WAL001 runs in :meth:`finish`."""
        yield from self._check_swallows(module)

    # -- WAL001 (interprocedural) ------------------------------------------

    def finish(self) -> Iterator[Finding]:
        if self._program is None:  # pragma: no cover - driver always begins
            return
        graph = self._program.callgraph()
        summaries = self._program.effects()
        for info in graph.iter_functions():
            if info.path.endswith(_FLUSH_OWNERS):
                continue  # the pool's own module owns the primitives
            yield from self._check_function_flushes(info, graph, summaries)

    def _check_function_flushes(self, info: FunctionInfo, graph: CallGraph,
                                summaries: fx.EffectAnalysis
                                ) -> Iterator[Finding]:
        module = info.module
        dominators = self._dominator_positions(info, graph, summaries)
        reported: set[int] = set()
        for call in self._own_calls(info):
            if call_name(call) not in _FLUSH_METHODS:
                continue
            if self._dominated(dominators, call):
                continue
            reported.add(id(call))
            method = call_name(call)
            yield module.finding(
                "WAL001", self.name, call,
                f"{method}() is not dominated by a WAL append/checkpoint in "
                f"{info.name}(): a crash after this flush can leave "
                f"page images the log never recorded (route through "
                f"TransactionManager.checkpoint)", detail=method)
        for site in graph.callees_of.get(info.fid, []):
            if id(site.call) in reported:
                continue
            if call_name(site.call) in _FLUSH_METHODS:
                continue  # primitive site: handled above
            callee_effects = summaries.summary(site.callee.fid)
            if fx.FLUSHES not in callee_effects:
                continue
            if fx.WRITES_WAL in callee_effects:
                continue  # self-disciplined path (checkpoint); checked there
            if self._dominated(dominators, site.call):
                continue
            reported.add(id(site.call))
            chain = tuple(
                [f"{info.path}:{site.line}: {info.qualname} calls "
                 f"{site.text}()"]
                + summaries.render_path(site.callee.fid, fx.FLUSHES))
            yield module.finding(
                "WAL001", self.name, site.call,
                f"{site.text}() transitively flushes pages (via "
                f"{site.callee.qualname}()) with no WAL append/checkpoint "
                f"earlier in {info.name}(): a crash after the flush can "
                f"leave page images the log never recorded",
                detail=f"{site.text}->{site.callee.qualname}",
                call_path=chain)

    def _dominator_positions(self, info: FunctionInfo, graph: CallGraph,
                             summaries: fx.EffectAnalysis
                             ) -> list[tuple[int, int]]:
        """Positions of every call that hardens the log in ``info``."""
        positions: list[tuple[int, int]] = []
        for call in self._own_calls(info):
            name = call_name(call)
            if name in _LOG_METHODS or \
                    (name == "flush" and fx.is_log_receiver(call)):
                positions.append((call.lineno, call.col_offset))
        for site in graph.callees_of.get(info.fid, []):
            if summaries.has(site.callee.fid, fx.WRITES_WAL):
                positions.append((site.line, site.call.col_offset))
        return positions

    @staticmethod
    def _dominated(dominators: list[tuple[int, int]],
                   flush: ast.Call) -> bool:
        flush_pos = (flush.lineno, flush.col_offset)
        return any(pos < flush_pos for pos in dominators)

    @staticmethod
    def _own_calls(info: FunctionInfo) -> Iterator[ast.Call]:
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call) and \
                    info.module.enclosing_function(node) is info.node:
                yield node

    # -- WAL002 ------------------------------------------------------------

    def _check_swallows(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                kind = "bare except:"
            elif isinstance(node.type, ast.Name) and node.type.id in _BLANKET:
                kind = f"except {node.type.id}:"
            else:
                continue
            if self._reraises(node):
                continue
            yield module.finding(
                "WAL002", self.name, node,
                f"{kind} swallows engine errors (repro.errors types such as "
                f"DeadlockError/ChecksumError) — narrow it to the "
                f"exceptions this site anticipates",
                detail=kind)

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
        return False
