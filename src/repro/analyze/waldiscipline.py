"""WAL-discipline checker: log before flush; never swallow engine errors.

Write-ahead logging only protects what it precedes: a buffer flush that is
not dominated by hardening the log can push a page image to disk whose
changes the log has not recorded yet — exactly the window a crash turns
into unrecoverable divergence.  In this engine the discipline is structural:
``TransactionManager.checkpoint`` runs ``on_checkpoint`` (the pool flush)
and then writes the CHECKPOINT record, and everything else flushes through
that path.

* **WAL001** — a ``flush_page``/``flush_all`` call site (outside the buffer
  pool itself) with no WAL append/checkpoint earlier in the same function:
  the flush is not visibly dominated by hardening the log.
* **WAL002** — a bare ``except:`` or blanket ``except Exception:`` whose
  handler neither re-raises nor names what it expects: it swallows
  ``repro.errors`` types (DeadlockError, ChecksumError, SanitizerError...)
  that upper layers rely on seeing.  Narrow the clause to the errors the
  call site actually anticipates.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze.findings import Finding
from repro.analyze.framework import Checker, SourceModule, call_name

_FLUSH_METHODS = {"flush_page", "flush_all"}
#: calls that harden the log (or are the log-hardening path itself).
_LOG_METHODS = {"append", "checkpoint", "log"}

#: the pool's own module owns the flush primitives.
_FLUSH_OWNERS = ("repro/rdb/buffer.py",)

_BLANKET = {"Exception", "BaseException"}


class WalDisciplineChecker(Checker):
    """WAL001/WAL002: log-before-flush and no swallowed engine errors."""

    name = "wal-discipline"
    codes = ("WAL001", "WAL002")
    description = ("flushes must be dominated by a WAL append; no bare/"
                   "blanket except may swallow engine errors")

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if not module.relpath.endswith(_FLUSH_OWNERS):
            yield from self._check_flushes(module)
        yield from self._check_swallows(module)

    def _check_flushes(self, module: SourceModule) -> Iterator[Finding]:
        for call in module.calls():
            method = call_name(call)
            if method not in _FLUSH_METHODS:
                continue
            function = module.enclosing_function(call)
            if function is None:
                continue  # scripts/experiments flush at will
            if self._dominated_by_append(function, call):
                continue
            yield module.finding(
                "WAL001", self.name, call,
                f"{method}() is not dominated by a WAL append/checkpoint in "
                f"{function.name}(): a crash after this flush can leave "
                f"page images the log never recorded (route through "
                f"TransactionManager.checkpoint)", detail=method)

    @staticmethod
    def _dominated_by_append(function: ast.AST, flush: ast.Call) -> bool:
        flush_pos = (flush.lineno, flush.col_offset)
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) not in _LOG_METHODS:
                continue
            if (node.lineno, node.col_offset) < flush_pos:
                return True
        return False

    def _check_swallows(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                kind = "bare except:"
            elif isinstance(node.type, ast.Name) and node.type.id in _BLANKET:
                kind = f"except {node.type.id}:"
            else:
                continue
            if self._reraises(node):
                continue
            yield module.finding(
                "WAL002", self.name, node,
                f"{kind} swallows engine errors (repro.errors types such as "
                f"DeadlockError/ChecksumError) — narrow it to the "
                f"exceptions this site anticipates",
                detail=kind)

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
        return False
