"""Deterministic concurrent-workload simulator.

Concurrency experiments need reproducible interleavings, so instead of
threads the engine runs transaction *programs* (generators of actions) under
a seeded round-robin/random scheduler.  Lock requests that would block leave
the program waiting; a waits-for cycle aborts a victim (which may restart).
The scheduler reports committed/aborted counts, wait steps and makespan —
the measures experiments E9a/E9b compare across protocols.

Robustness knobs: ``wait_budget`` bounds how long (in simulated steps,
accumulated through a bounded exponential backoff) one program may stay
blocked on a lock before it is aborted as a *timeout* victim, and
``max_restarts`` bounds how often a victim — deadlock or timeout — is
restarted before it is given up on, so contended workloads terminate
instead of livelocking.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol

from repro.analyze import sanitize as _sanitize
from repro.core.stats import StatsRegistry, default_stats
from repro.errors import TransactionError
from repro.rdb.txn import AccountingLog, AccountingRecord


class LockBackend(Protocol):
    """What the scheduler needs from a lock protocol."""

    def try_acquire(self, txn_id: int, resource: object, mode) -> bool: ...

    def release_all(self, txn_id: int) -> None: ...

    def find_deadlock(self) -> list[int] | None: ...


#: Program actions.
@dataclass(frozen=True)
class Lock:
    """Request a lock; the program resumes when granted."""

    resource: object
    mode: object


@dataclass(frozen=True)
class Do:
    """Run a side effect (must not block)."""

    effect: Callable[[], None]


#: A program body: receives its txn id, yields actions, returns at commit.
ProgramBody = Callable[[int], Iterator[object]]


@dataclass
class ScheduleResult:
    committed: int = 0
    aborted: int = 0
    wait_steps: int = 0
    total_steps: int = 0
    commit_order: list[str] = field(default_factory=list)
    deadlock_aborts: int = 0
    timeout_aborts: int = 0
    restarts: int = 0
    #: programs that exhausted their restart budget and never committed
    failed: list[str] = field(default_factory=list)

    @property
    def makespan(self) -> int:
        return self.total_steps


class _Runner:
    def __init__(self, name: str, body: ProgramBody, txn_id: int,
                 restartable: bool) -> None:
        self.name = name
        self.body = body
        self.txn_id = txn_id
        self.restartable = restartable
        self.iterator = body(txn_id)
        self.pending: object | None = None
        self.done = False
        self.committed = False
        self.restarts = 0
        self.waited = 0     # simulated steps spent blocked on current lock
        self.backoff = 0    # next cooldown length (0 = no backoff yet)
        self.cooldown = 0   # steps to skip before retrying the lock
        #: Accounting sink; survives restarts so victim attempts fold into
        #: the one record the program finally emits.
        self.sink: Counter[str] = Counter()
        self.victim_txns: list[int] = []


class Scheduler:
    """Runs programs to completion under a lock backend.

    ``wait_budget`` (simulated steps; ``None`` disables timeouts) bounds
    blocked waiting per lock request; waiting accrues through a bounded
    exponential backoff starting at ``backoff_initial`` steps and doubling
    up to ``backoff_cap``.  ``max_restarts`` (``None`` = unlimited) bounds
    how often one program is restarted after being chosen as a deadlock or
    timeout victim.
    """

    #: Declared resource captures (SHARD003): the scheduler drives one
    #: lock backend and charges one stats sink for its whole run.
    _shard_scoped_ = ("locks", "stats")

    def __init__(self, locks: LockBackend, seed: int = 0,
                 max_steps: int = 100_000,
                 wait_budget: int | None = None,
                 backoff_initial: int = 1,
                 backoff_cap: int = 16,
                 max_restarts: int | None = None,
                 stats: StatsRegistry | None = None,
                 accounting: AccountingLog | None = None) -> None:
        self.locks = locks
        self.rng = random.Random(seed)
        self.max_steps = max_steps
        self.wait_budget = wait_budget
        self.backoff_initial = max(1, backoff_initial)
        self.backoff_cap = max(1, backoff_cap)
        self.max_restarts = max_restarts
        self.stats = stats if stats is not None else \
            default_stats(getattr(locks, "stats", None))
        #: Accounting-trace ring: one record per finished program.  Pass a
        #: :class:`TransactionManager`'s log to merge scheduler programs
        #: into the same accounting stream as interactive transactions.
        self.accounting = accounting if accounting is not None \
            else AccountingLog()
        self._next_txn = 1000  # distinct from interactive txns

    def run(self, programs: list[tuple[str, ProgramBody]],
            restartable: bool = True,
            round_robin: bool = False) -> ScheduleResult:
        """Execute all programs; returns aggregate statistics."""
        runners = []
        for name, body in programs:
            self._next_txn += 1
            runners.append(_Runner(name, body, self._next_txn, restartable))
        result = ScheduleResult()
        active = list(runners)
        cursor = 0
        while active:
            result.total_steps += 1
            if result.total_steps > self.max_steps:
                raise TransactionError(
                    "scheduler exceeded max steps (livelock?)")
            runner = self._choose(active, cursor, round_robin)
            cursor += 1
            # One simulated step passes for every program backing off —
            # whether or not anything else was runnable this step.
            for waiting in active:
                if waiting is not runner and waiting.cooldown > 0:
                    waiting.cooldown -= 1
            if runner is None:
                continue
            with self.stats.charge(runner.sink):
                self._step(runner, result)
            if runner.done:
                self._emit(runner)
                active.remove(runner)
                continue
            if self.wait_budget is not None and \
                    runner.waited >= self.wait_budget:
                self._abort(runner, result, reason="timeout")
                if runner.done:
                    self._emit(runner)
                    active.remove(runner)
                continue
            # Deadlock handling after blocked steps.  The scan is charged
            # to the runner whose blocked step triggered it.
            with self.stats.charge(runner.sink):
                cycle = self.locks.find_deadlock()
            if cycle:
                victim = self._pick_victim(cycle, runners)
                self._abort(victim, result, reason="deadlock")
                if victim.done:
                    self._emit(victim)
                    active.remove(victim)
        return result

    def _emit(self, runner: _Runner) -> None:
        """Record the finished program's accounting (one record, with all
        victim attempts folded in)."""
        self.accounting.emit(AccountingRecord(
            txn_id=runner.txn_id,
            isolation="-",  # scheduler programs manage their own locks
            outcome="committed" if runner.committed else "aborted",
            retries=runner.restarts,
            victim_attempts=tuple(runner.victim_txns),
            counters=dict(runner.sink)))
        self.stats.add("obs.accounting_records")

    def _choose(self, active: list[_Runner], cursor: int,
                round_robin: bool) -> _Runner | None:
        ready = [runner for runner in active if runner.cooldown == 0]
        if not ready:
            return None
        if round_robin:
            return ready[cursor % len(ready)]
        return self.rng.choice(ready)

    def _step(self, runner: _Runner, result: ScheduleResult) -> None:
        action = runner.pending
        if action is None:
            try:
                action = next(runner.iterator)
            except StopIteration:
                self.locks.release_all(runner.txn_id)
                if _sanitize.enabled():
                    # The backend may not be a sanitize-wired LockManager
                    # (PrefixLockTable, protocol adapters), and Do effects
                    # may have locked through a different manager: drop the
                    # witness state for this txn id explicitly or it leaks.
                    _sanitize.on_locks_released(runner.txn_id)
                runner.done = True
                runner.committed = True
                result.committed += 1
                result.commit_order.append(runner.name)
                return
        if isinstance(action, Lock):
            if self.locks.try_acquire(runner.txn_id, action.resource,
                                      action.mode):
                runner.pending = None
                runner.waited = 0
                runner.backoff = 0
            else:
                runner.pending = action
                result.wait_steps += 1
                if self.wait_budget is not None:
                    # Exponential backoff: skip this runner for a while and
                    # charge the skipped steps against its wait budget.
                    runner.backoff = min(
                        runner.backoff * 2 or self.backoff_initial,
                        self.backoff_cap)
                    runner.cooldown = runner.backoff
                    runner.waited += 1 + runner.backoff
        elif isinstance(action, Do):
            action.effect()
            runner.pending = None
        else:
            raise TransactionError(f"unknown scheduler action {action!r}")

    def _pick_victim(self, cycle: list[int],
                     runners: list[_Runner]) -> _Runner:
        by_txn = {runner.txn_id: runner for runner in runners}
        # Youngest (largest txn id) dies — deterministic.
        victim_txn = max(t for t in cycle if t in by_txn)
        return by_txn[victim_txn]

    def _abort(self, runner: _Runner, result: ScheduleResult,
               reason: str) -> None:
        """Abort ``runner`` and restart it if its budget allows.

        A non-restartable victim (or one out of restarts) is marked done
        immediately; the caller removes it from the active set in the same
        iteration.
        """
        with self.stats.charge(runner.sink):
            self.locks.release_all(runner.txn_id)
            if _sanitize.enabled():
                # Victims abandon their txn id (a restart gets a fresh one),
                # so the sanitizer's per-txn lock-class witness must be
                # dropped here — backends that bypass the wired LockManager
                # never notify it, and the stale entry would accumulate
                # forever and poison inversion checks for reused ids.
                _sanitize.on_locks_released(runner.txn_id)
            runner.iterator.close()
            result.aborted += 1
            if reason == "deadlock":
                result.deadlock_aborts += 1
                self.stats.add("txn.deadlock_aborts")
            else:
                result.timeout_aborts += 1
                self.stats.add("txn.timeout_aborts")
            out_of_restarts = self.max_restarts is not None and \
                runner.restarts >= self.max_restarts
            if runner.restartable and not out_of_restarts:
                runner.restarts += 1
                result.restarts += 1
                self.stats.add("txn.retries")
        if runner.restartable and not out_of_restarts:
            runner.victim_txns.append(runner.txn_id)
            self._next_txn += 1
            runner.txn_id = self._next_txn
            runner.iterator = runner.body(runner.txn_id)
            runner.pending = None
            runner.waited = 0
            runner.backoff = 0
            runner.cooldown = 0
        else:
            runner.done = True
            result.failed.append(runner.name)
