"""Deterministic concurrent-workload simulator.

Concurrency experiments need reproducible interleavings, so instead of
threads the engine runs transaction *programs* (generators of actions) under
a seeded round-robin/random scheduler.  Lock requests that would block leave
the program waiting; a waits-for cycle aborts a victim (which may restart).
The scheduler reports committed/aborted counts, wait steps and makespan —
the measures experiments E9a/E9b compare across protocols.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol

from repro.errors import TransactionError


class LockBackend(Protocol):
    """What the scheduler needs from a lock protocol."""

    def try_acquire(self, txn_id: int, resource: object, mode) -> bool: ...

    def release_all(self, txn_id: int) -> None: ...

    def find_deadlock(self) -> list[int] | None: ...


#: Program actions.
@dataclass(frozen=True)
class Lock:
    """Request a lock; the program resumes when granted."""

    resource: object
    mode: object


@dataclass(frozen=True)
class Do:
    """Run a side effect (must not block)."""

    effect: Callable[[], None]


#: A program body: receives its txn id, yields actions, returns at commit.
ProgramBody = Callable[[int], Iterator[object]]


@dataclass
class ScheduleResult:
    committed: int = 0
    aborted: int = 0
    wait_steps: int = 0
    total_steps: int = 0
    commit_order: list[str] = field(default_factory=list)

    @property
    def makespan(self) -> int:
        return self.total_steps


class _Runner:
    def __init__(self, name: str, body: ProgramBody, txn_id: int,
                 restartable: bool) -> None:
        self.name = name
        self.body = body
        self.txn_id = txn_id
        self.restartable = restartable
        self.iterator = body(txn_id)
        self.pending: object | None = None
        self.done = False


class Scheduler:
    """Runs programs to completion under a lock backend."""

    def __init__(self, locks: LockBackend, seed: int = 0,
                 max_steps: int = 100_000) -> None:
        self.locks = locks
        self.rng = random.Random(seed)
        self.max_steps = max_steps
        self._next_txn = 1000  # distinct from interactive txns

    def run(self, programs: list[tuple[str, ProgramBody]],
            restartable: bool = True,
            round_robin: bool = False) -> ScheduleResult:
        """Execute all programs; returns aggregate statistics."""
        runners = []
        for name, body in programs:
            self._next_txn += 1
            runners.append(_Runner(name, body, self._next_txn, restartable))
        result = ScheduleResult()
        active = list(runners)
        cursor = 0
        while active:
            result.total_steps += 1
            if result.total_steps > self.max_steps:
                raise TransactionError(
                    "scheduler exceeded max steps (livelock?)")
            if round_robin:
                runner = active[cursor % len(active)]
                cursor += 1
            else:
                runner = self.rng.choice(active)
            self._step(runner, result)
            if runner.done:
                active.remove(runner)
                continue
            # Deadlock handling after blocked steps.
            cycle = self.locks.find_deadlock()
            if cycle:
                victim = self._pick_victim(cycle, runners)
                self._abort(victim, result)
                if not victim.done:
                    pass
                if victim in active and victim.done:
                    active.remove(victim)
        return result

    def _step(self, runner: _Runner, result: ScheduleResult) -> None:
        action = runner.pending
        if action is None:
            try:
                action = next(runner.iterator)
            except StopIteration:
                self.locks.release_all(runner.txn_id)
                runner.done = True
                result.committed += 1
                result.commit_order.append(runner.name)
                return
        if isinstance(action, Lock):
            if self.locks.try_acquire(runner.txn_id, action.resource,
                                      action.mode):
                runner.pending = None
            else:
                runner.pending = action
                result.wait_steps += 1
        elif isinstance(action, Do):
            action.effect()
            runner.pending = None
        else:
            raise TransactionError(f"unknown scheduler action {action!r}")

    def _pick_victim(self, cycle: list[int],
                     runners: list[_Runner]) -> _Runner:
        by_txn = {runner.txn_id: runner for runner in runners}
        # Youngest (largest txn id) dies — deterministic.
        victim_txn = max(t for t in cycle if t in by_txn)
        return by_txn[victim_txn]

    def _abort(self, runner: _Runner, result: ScheduleResult) -> None:
        self.locks.release_all(runner.txn_id)
        runner.iterator.close()
        result.aborted += 1
        if runner.restartable:
            self._next_txn += 1
            runner.txn_id = self._next_txn
            runner.iterator = runner.body(runner.txn_id)
            runner.pending = None
        else:
            runner.done = True
