"""Document-level multiversioning (§5.1).

"Alternatively, multiversioning can be applied to avoid locking by readers,
which is more efficient for mostly read workload.  To support multiversioning
at document level, one scheme is to keep most up-to-date data for XPath value
indexes, but keep versions for XML data and the NodeID index ...  with
versioning, the entries will also include a version number, i.e.
(DocID, ver#, NodeID, RID), with ver# in descending order.  This will
guarantee a reader's deferred access to be successful."

The versioned NodeID index keys are ``DocID(8) || ~ver(4) || NodeID`` — the
complemented version makes newer versions sort first, exactly the paper's
descending arrangement.  A snapshot reader resolves its visible version once,
then probes within that version's contiguous key range; old versions are
garbage-collected beyond a retention bound.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import DocumentNotFoundError
from repro.rdb.btree import BTree
from repro.rdb.buffer import BufferPool
from repro.rdb.tablespace import Rid, TableSpace
from repro.xdm.events import SaxEvent, assign_node_ids
from repro.xdm.names import NameTable
from repro.xdm.parser import parse as parse_xml
from repro.xmlstore import format as fmt
from repro.xmlstore.packing import pack_document
from repro.xmlstore.traversal import StoredDocument

_MAX_VER = (1 << 32) - 1


def version_key(docid: int, version: int, node_id: bytes) -> bytes:
    """Key with ver# descending: newer versions sort before older ones."""
    return (docid.to_bytes(8, "big")
            + (_MAX_VER - version).to_bytes(4, "big")
            + node_id)


def split_version_key(key: bytes) -> tuple[int, int, bytes]:
    docid = int.from_bytes(key[:8], "big")
    version = _MAX_VER - int.from_bytes(key[8:12], "big")
    return docid, version, key[12:]


class _SnapshotNodeIndex:
    """NodeID-index facade bound to one visible version."""

    def __init__(self, store: "VersionedXmlStore", docid: int,
                 version: int) -> None:
        self._store = store
        self._docid = docid
        self._version = version

    def probe(self, docid: int, node_id: bytes) -> Rid | None:
        return self._store._probe_version(docid, self._version, node_id)


class _SnapshotView:
    """Duck-typed XmlStore view for :class:`StoredDocument`."""

    def __init__(self, store: "VersionedXmlStore", docid: int,
                 version: int) -> None:
        self.names = store.names
        self.node_index = _SnapshotNodeIndex(store, docid, version)
        self._store = store

    def read_record(self, rid: Rid) -> bytes:
        return self._store.space.read(rid)


class VersionedXmlStore:
    """XML storage with document-level version history."""

    #: Declared resource capture (SHARD003): version storage lives in the
    #: pool the store was constructed over.
    _shard_scoped_ = ("pool",)

    def __init__(self, pool: BufferPool, names: NameTable,
                 record_limit: int = 1024,
                 retained_versions: int = 4) -> None:
        self.pool = pool
        self.names = names
        self.record_limit = record_limit
        self.retained_versions = retained_versions
        self.space = TableSpace(pool, name="vxmlts")
        self.index = BTree(pool, name="vnix", unique=True)
        #: committed version history per document (ascending).
        self._versions: dict[int, list[int]] = {}
        self._next_version = 1
        #: rids per (docid, version) for garbage collection.
        self._version_rids: dict[tuple[int, int], list[Rid]] = {}

    # -- writes -------------------------------------------------------------

    def commit_version_text(self, docid: int, text: str) -> int:
        stream = parse_xml(text)
        return self.commit_version_events(docid, stream.events())

    def commit_version_events(self, docid: int,
                              events: Iterable[SaxEvent]) -> int:
        """Store a new committed version of ``docid``; returns its ver#."""
        version = self._next_version
        self._next_version += 1
        records, _nodes = pack_document(docid, assign_node_ids(events),
                                        self.names, self.record_limit)
        rids = []
        for record in records:
            rid = self.space.insert(record)
            rids.append(rid)
            for _low, high in fmt.record_intervals(record):
                self.index.insert(version_key(docid, version, high),
                                  rid.to_bytes())
        self._versions.setdefault(docid, []).append(version)
        self._version_rids[(docid, version)] = rids
        self._garbage_collect(docid)
        return version

    def _garbage_collect(self, docid: int) -> None:
        versions = self._versions[docid]
        while len(versions) > self.retained_versions:
            old = versions.pop(0)
            for rid in self._version_rids.pop((docid, old), []):
                record = self.space.read(rid)
                for _low, high in fmt.record_intervals(record):
                    self.index.delete(version_key(docid, old, high),
                                      rid.to_bytes())
                self.space.delete(rid)

    # -- snapshot reads ------------------------------------------------------------

    @property
    def latest_version(self) -> int:
        return self._next_version - 1

    def visible_version(self, docid: int, snapshot: int) -> int:
        """Largest committed version of ``docid`` that is ≤ ``snapshot``."""
        versions = self._versions.get(docid)
        if not versions:
            raise DocumentNotFoundError(f"no versions of DocID {docid}")
        visible = [v for v in versions if v <= snapshot]
        if not visible:
            raise DocumentNotFoundError(
                f"DocID {docid} has no version at snapshot {snapshot} "
                f"(oldest retained is {versions[0]})")
        return visible[-1]

    def _probe_version(self, docid: int, version: int,
                       node_id: bytes) -> Rid | None:
        entry = self.index.seek_ge(version_key(docid, version, node_id))
        if entry is None:
            return None
        key, rid_bytes = entry
        found_docid, found_version, _upper = split_version_key(key)
        if (found_docid, found_version) != (docid, version):
            return None
        return Rid.from_bytes(rid_bytes)

    def document_at(self, docid: int, snapshot: int) -> StoredDocument:
        """Read-only view of the document as of ``snapshot``.

        Never blocks — "multiversioning can be applied to avoid locking by
        readers".
        """
        version = self.visible_version(docid, snapshot)
        view = _SnapshotView(self, docid, version)
        return StoredDocument(view, docid)  # type: ignore[arg-type]

    def document_latest(self, docid: int) -> StoredDocument:
        return self.document_at(docid, self.latest_version)

    def version_count(self, docid: int) -> int:
        return len(self._versions.get(docid, []))
