"""Subdocument concurrency: node-ID multiple-granularity locking (§5.2).

"We believe a multiple granularity locking is needed given the hierarchical
nature of XML data.  Since we use prefix-encoded node IDs, locking using node
IDs can support the protocol efficiently because ancestor-descendant
relationship can be checked by testing if one is a prefix of the other."

:class:`PrefixLockTable` implements exactly that: a lock on node ``n``
implicitly covers ``n``'s whole subtree; two locks conflict iff their node
IDs stand in a prefix (ancestor-descendant or equal) relationship and their
modes are incompatible.  Locking the empty ID locks the whole document, so
document-level locking is the degenerate case — experiment E9b compares the
two granularities on disjoint-subtree write workloads.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.stats import StatsRegistry, default_stats
from repro.rdb.locks import LockMode, mode_compatible, mode_lub
from repro.xdm.nodeid import is_ancestor_or_self


@dataclass(frozen=True)
class NodeLock:
    docid: int
    node_id: bytes
    mode: LockMode


def subtree_overlaps(a: bytes, b: bytes) -> bool:
    """Do the subtrees rooted at ``a`` and ``b`` share any node?

    True iff one ID is a prefix of the other — the paper's prefix test.
    """
    return is_ancestor_or_self(a, b) or is_ancestor_or_self(b, a)


class PrefixLockTable:
    """Subtree locks with prefix-test conflict detection.

    Implements the scheduler's LockBackend protocol; resources are
    ``(docid, node_id)`` pairs.
    """

    #: Declared resource capture (SHARD003): the lock table's stats
    #: sink may be supplied by its owner.
    _shard_scoped_ = ("stats",)

    def __init__(self, stats: StatsRegistry | None = None) -> None:
        self.stats = default_stats(stats)
        self._granted: dict[int, dict[tuple[int, bytes], LockMode]] = \
            defaultdict(dict)  # txn -> {(docid, node): mode}
        self._waits_for: dict[int, set[int]] = defaultdict(set)
        self.prefix_tests = 0

    def try_acquire(self, txn_id: int, resource: object,
                    mode: LockMode) -> bool:
        docid, node_id = resource  # type: ignore[misc]
        held = self._granted[txn_id].get((docid, node_id))
        effective = mode if held is None else mode_lub(held, mode)
        blockers = []
        for other, locks in self._granted.items():
            if other == txn_id:
                continue
            for (other_doc, other_node), other_mode in locks.items():
                if other_doc != docid:
                    continue
                self.prefix_tests += 1
                if not subtree_overlaps(node_id, other_node):
                    continue
                if not mode_compatible(effective, other_mode):
                    blockers.append(other)
        if blockers:
            self.stats.add("lock.waits")
            self._waits_for[txn_id].update(blockers)
            return False
        self._granted[txn_id][(docid, node_id)] = effective
        self._waits_for.pop(txn_id, None)
        self.stats.add("lock.acquired")
        return True

    def holds(self, txn_id: int, docid: int, node_id: bytes) -> bool:
        return (docid, node_id) in self._granted.get(txn_id, {})

    def covers(self, txn_id: int, docid: int, node_id: bytes,
               mode: LockMode) -> bool:
        """Does some lock of ``txn_id`` cover ``node_id`` at least in mode?"""
        for (held_doc, held_node), held_mode in \
                self._granted.get(txn_id, {}).items():
            if held_doc == docid and is_ancestor_or_self(held_node, node_id) \
                    and mode_lub(held_mode, mode) == held_mode:
                return True
        return False

    def release_all(self, txn_id: int) -> None:
        self._granted.pop(txn_id, None)
        self._waits_for.pop(txn_id, None)
        for edges in self._waits_for.values():
            edges.discard(txn_id)

    def find_deadlock(self) -> list[int] | None:
        graph = {t: set(e) for t, e in self._waits_for.items()}
        visited: set[int] = set()
        for start in graph:
            if start in visited:
                continue
            path: list[int] = []
            on_path: set[int] = set()

            def dfs(node: int) -> list[int] | None:
                visited.add(node)
                path.append(node)
                on_path.add(node)
                for succ in graph.get(node, ()):  # noqa: B023
                    if succ in on_path:
                        return path[path.index(succ):]
                    if succ not in visited:
                        found = dfs(succ)
                        if found is not None:
                            return found
                path.pop()
                on_path.discard(node)
                return None

            cycle = dfs(start)
            if cycle is not None:
                self.stats.add("lock.deadlocks")
                return cycle
        return None


class DocumentGranularityAdapter:
    """Same interface, but every lock is escalated to the whole document —
    the document-level baseline E9b compares against."""

    def __init__(self, table: PrefixLockTable) -> None:
        self.table = table

    def try_acquire(self, txn_id: int, resource: object,
                    mode: LockMode) -> bool:
        docid, _node_id = resource  # type: ignore[misc]
        return self.table.try_acquire(txn_id, (docid, b""), mode)

    def release_all(self, txn_id: int) -> None:
        self.table.release_all(txn_id)

    def find_deadlock(self) -> list[int] | None:
        return self.table.find_deadlock()
