"""Document-level concurrency (§5.1).

"In lock-based document level concurrency, if we follow the access sequence
from a base table row to the XML column data, the lock on the base table can
cover the XML data.  However, if we allow direct access to the XML data from
value indexes or from an uncommitted reader that does not lock the base table
rows, a DocID locking scheme is required.  ...  Care must be taken also to
prevent reading a partially inserted document by using a lock."

This module provides the resource naming and the protocol helpers the
scheduler programs use: row locks cover documents on the base-row access
path; DocID locks protect direct (index-driven or deferred) access.
"""

from __future__ import annotations

from repro.rdb.locks import LockManager, LockMode
from repro.rdb.tablespace import Rid


def row_resource(table: str, rid: Rid) -> tuple:
    """Lock resource for a base-table row."""
    return ("row", table, rid)


def doc_resource(column: str, docid: int) -> tuple:
    """Lock resource for a document (DocID lock)."""
    return ("doc", column, docid)


class DocumentLockProtocol:
    """Lock-based document-level concurrency over the shared lock manager."""

    #: Declared resource capture (SHARD003): the protocol acquires every
    #: lock through the one manager it was constructed over.
    _shard_scoped_ = ("locks",)

    def __init__(self, locks: LockManager, column: str = "doc") -> None:
        self.locks = locks
        self.column = column

    # Non-blocking primitives for scheduler programs ------------------------

    def try_read_via_row(self, txn_id: int, table: str, rid: Rid) -> bool:
        """Base-row access path: the row lock covers the XML data."""
        return self.locks.try_acquire(txn_id, row_resource(table, rid),
                                      LockMode.S)

    def try_read_direct(self, txn_id: int, docid: int) -> bool:
        """Direct access (from a value index / deferred fetch): DocID lock."""
        return self.locks.try_acquire(txn_id, doc_resource(self.column, docid),
                                      LockMode.S)

    def try_write(self, txn_id: int, table: str, rid: Rid,
                  docid: int) -> bool:
        """Writers take both the row lock and the DocID lock exclusively, so
        neither access path can observe a partially updated document."""
        if not self.locks.try_acquire(txn_id, row_resource(table, rid),
                                      LockMode.X):
            return False
        return self.locks.try_acquire(txn_id, doc_resource(self.column, docid),
                                      LockMode.X)

    def try_insert_guard(self, txn_id: int, docid: int) -> bool:
        """Held across a multi-record insert: prevents readers from seeing a
        partially inserted document (§5.1)."""
        return self.locks.try_acquire(txn_id, doc_resource(self.column, docid),
                                      LockMode.X)

    def release(self, txn_id: int) -> None:
        self.locks.release_all(txn_id)
